# Convenience entry points; everything also runs as plain pytest/python.
# PYTHONPATH=src keeps the repo usable without an editable install.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs-check bench obs-report report chaos check

test:
	$(PYTHON) -m pytest tests/

# Validate that every metric documented in docs/OBSERVABILITY.md and every
# fault point in docs/ROBUSTNESS.md is registered by code, and vice versa.
docs-check:
	$(PYTHON) -m pytest -m docs_check tests/obs/test_docs_catalog.py \
		tests/faults/test_docs_catalog.py

bench:
	$(PYTHON) -m repro.cli bench

obs-report:
	$(PYTHON) -m repro.cli obs report --network university --issue ospf

report:
	$(PYTHON) -m repro.cli report -o report.md

# Fixed-seed chaos smoke campaign (push atomicity invariant) + the tier-1
# suite. Same seed, same report — see docs/ROBUSTNESS.md.
chaos:
	$(PYTHON) -m repro.cli chaos --seed 7 --campaign smoke
	$(PYTHON) -m pytest -x -q tests/

# The default pre-merge gate.
check: docs-check chaos
