# Convenience entry points; everything also runs as plain pytest/python.
# PYTHONPATH=src keeps the repo usable without an editable install.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs-check bench obs-report report

test:
	$(PYTHON) -m pytest tests/

# Validate that every metric documented in docs/OBSERVABILITY.md is
# registered by code, and vice versa (kinds and units included).
docs-check:
	$(PYTHON) -m pytest -m docs_check tests/obs/test_docs_catalog.py

bench:
	$(PYTHON) -m repro.cli bench

obs-report:
	$(PYTHON) -m repro.cli obs report --network university --issue ospf

report:
	$(PYTHON) -m repro.cli report -o report.md
