# Convenience entry points; everything also runs as plain pytest/python.
# PYTHONPATH=src keeps the repo usable without an editable install.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test docs-check bench bench-check bench-scale obs-report report \
	chaos chaos-matrix semdiff-lint stress stress-tenants check

test:
	$(PYTHON) -m pytest tests/

# Validate that every metric documented in docs/OBSERVABILITY.md and every
# fault point in docs/ROBUSTNESS.md is registered by code (both catalog
# tests import the whole package, so nothing escapes), and vice versa —
# plus docs/SCALING.md against the generator/shard/benchmark constants.
docs-check:
	$(PYTHON) -m pytest -m docs_check tests/obs/test_docs_catalog.py \
		tests/faults/test_docs_catalog.py \
		tests/experiments/test_docs_scaling.py

bench:
	$(PYTHON) -m repro.cli bench

# Perf regression gate: a short benchmark pass whose speedup/overhead
# ratios must stay within 20% of the committed BENCH_*.json reports
# (dataplane, rollout, and scale suites).
bench-check:
	$(PYTHON) -m repro.cli bench --check

# Mega-network smoke: generate + shard-compile + verify a small scenario
# end to end. The committed BENCH_scale.json comes from the full run
# (`bench --scale 500`); this target only proves the pipeline works here,
# so its throwaway report goes to /tmp — never into the repo, and never
# read by `bench --check`.
bench-scale:
	$(PYTHON) -m repro.cli bench --scale 120 --shape hub-spoke --repeats 2 \
		-o /tmp/BENCH_scale_smoke.json

obs-report:
	$(PYTHON) -m repro.cli obs report --network university --issue ospf

report:
	$(PYTHON) -m repro.cli report -o report.md

# Fixed-seed chaos campaigns (push atomicity invariant: the smoke mix, the
# staged-rollout canary scenarios, the quorum-approvals/replicated-audit
# scenarios, and the adversarial-technician attacks) + the tier-1 suite.
# Same seed, same report — see docs/ROBUSTNESS.md.
chaos:
	$(PYTHON) -m repro.cli chaos --seed 7 --campaign smoke
	$(PYTHON) -m repro.cli chaos --seed 7 --campaign canary
	$(PYTHON) -m repro.cli chaos --seed 7 --campaign approvals
	$(PYTHON) -m repro.cli chaos --seed 7 --campaign adversarial
	$(PYTHON) -m repro.cli chaos --seed 7 --campaign tenants
	$(PYTHON) -m pytest -x -q tests/

# Assert the semantic-diff section taxonomy is total and in lockstep with
# the risk classifier: every diff kind maps to exactly one section, and
# the section set and the risk weight table are the same set.
semdiff-lint:
	$(PYTHON) -m pytest -x -q tests/config/test_semdiff.py

# Every registered campaign across 5 consecutive seeds — the deep chaos
# sweep. Deliberately NOT part of `check` (the single-seed smoke above
# stays the pre-merge gate); run it before robustness-sensitive releases.
chaos-matrix:
	$(PYTHON) -m repro.cli chaos --matrix --seed 7 --seeds 5

# Seeded, bounded-size concurrent-session stress benchmark: 8 threaded
# sessions (fix / disjoint-section maintenance / duplicate-fix roles)
# against one production; exits non-zero unless every session ends
# imported or deterministically rejected/rebased with the journal and
# audit invariants intact (docs/ARCHITECTURE.md "Concurrency model").
stress:
	$(PYTHON) -m repro.cli bench --concurrent 8 --seed 7 -o BENCH_concurrent.json

# Multi-tenant front-door stress: 24 sessions over 3 org-isolated
# deployments, front door vs direct, plus a deterministic flood probe;
# exits non-zero unless every session imports with zero cross-tenant
# violations and the isolation-overhead gate (<= 1.3x) holds
# (docs/ARCHITECTURE.md "Tenancy & front door").
stress-tenants:
	$(PYTHON) -m repro.cli bench --tenants 24 --orgs 3 --seed 7 \
		-o BENCH_tenants.json

# The default pre-merge gate.
check: docs-check chaos stress stress-tenants bench-scale bench-check
