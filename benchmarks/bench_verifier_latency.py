"""X1 — §4.3 text claim: continuous verification is too slow.

Paper: "verifying the policy is time-consuming (e.g., 25 seconds to check
175 constraints) and can significantly slow down a technician's work" —
the argument for *deferred* verification (verify once on the twin's output)
over *continuous* verification (after every technician action).

Two measurements:

* simulated verification latency vs constraint count (linear; calibrated so
  175 constraints ≈ 25 s, the paper's figure);
* the continuous-vs-deferred total verification cost over each standard
  issue's fix session (continuous pays per *state-changing* action).
"""

from conftest import print_table

from repro.experiments.latency import (
    PAPER_X1,
    continuous_vs_deferred,
    verification_latency_curve,
)
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network


def test_verification_latency_scaling(benchmark, enterprise,
                                      enterprise_policies):
    curve = verification_latency_curve()
    rows = [
        (count, f"{latency:.1f}s",
         f"(paper: {PAPER_X1['latency_s']:.0f}s)"
         if count == PAPER_X1["constraints"] else "")
        for count, latency in curve
    ]
    print_table(
        "X1a: simulated verification latency vs constraint count",
        ("constraints", "latency", "note"),
        rows,
    )
    assert dict(curve)[175] == 25.0
    # Linearity.
    assert dict(curve)[350] == 2 * dict(curve)[175]

    verifier = PolicyVerifier(enterprise_policies)
    benchmark(lambda: verifier.verify_network(enterprise))


def test_continuous_vs_deferred(benchmark, enterprise_policies):
    rows = continuous_vs_deferred(policies=enterprise_policies)
    print_table(
        "X1b: continuous vs deferred verification cost per fix session",
        ("issue", "config actions", "continuous", "deferred", "ratio"),
        [
            (row.issue_id, row.config_actions,
             f"{row.continuous_s:.0f}s", f"{row.deferred_s:.0f}s",
             f"{row.ratio:.0f}x")
            for row in rows
        ],
    )
    # Continuous always costs at least as much; strictly more when the fix
    # needs more than one state-changing action.
    assert all(row.ratio >= 1 for row in rows)
    assert any(row.ratio > 1 for row in rows)

    # Time one real (not simulated) verification pass — the kernel whose
    # per-constraint cost the paper's 25 s figure describes.
    verifier = PolicyVerifier(enterprise_policies)
    benchmark(lambda: verifier.verify_network(build_enterprise_network()))
