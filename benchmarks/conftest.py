"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (table or figure):
it prints the reproduced rows/series next to the paper's reported values
and uses pytest-benchmark to time the underlying computation. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import interface_down_issues, standard_issues
from repro.scenarios.university import build_university_network


@pytest.fixture(scope="session")
def enterprise():
    return build_enterprise_network()


@pytest.fixture(scope="session")
def university():
    return build_university_network()


@pytest.fixture(scope="session")
def enterprise_policies(enterprise):
    return mine_policies(enterprise)


@pytest.fixture(scope="session")
def university_policies(university):
    return mine_policies(university)


@pytest.fixture(scope="session")
def enterprise_issues():
    return standard_issues("enterprise")


@pytest.fixture(scope="session")
def university_issues():
    return standard_issues("university")


@pytest.fixture(scope="session")
def enterprise_ifdown(enterprise):
    return interface_down_issues(enterprise)


@pytest.fixture(scope="session")
def university_ifdown(university):
    return interface_down_issues(university)


def print_table(title, headers, rows):
    """Aligned text table, printed between blank lines for readability."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n== {title}")
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
