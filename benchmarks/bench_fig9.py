"""Figure 9 — feasibility and attack surface, university network.

Paper: Heimdall reduces the attack surface by up to 40% on the university
network versus the baselines, with feasibility close to fully-open access.
Same workload and metric as Figure 8, on the larger redundant campus
topology (where Neighbor scoping misses even more root causes).
"""

from bench_fig8 import assert_shape, report

from repro.attack.surface import evaluate_approaches
from repro.experiments.fig89 import figure89, heimdall_approaches


def test_figure9_university(benchmark, university, university_policies,
                            university_ifdown):
    results = figure89(
        "university", network=university, policies=university_policies,
        issues=university_ifdown,
    )
    by_name = {r.approach: r for r in results}
    reduction = (
        by_name["All"].attack_surface_pct
        - by_name["Heimdall"].attack_surface_pct
    )
    report(
        f"Figure 9: university ({len(university_ifdown)} interface-down issues)",
        results,
        f"Heimdall reduces surface by {reduction:.0f} points (paper: up to 40%)",
    )
    assert_shape(results)

    subset = university_ifdown[:3]
    benchmark(
        lambda: evaluate_approaches(
            university, subset, university_policies,
            heimdall_approaches(university_policies),
        )
    )
