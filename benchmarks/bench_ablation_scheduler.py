"""A2 — ablation: ordered change scheduling vs naive per-device push.

Paper §4.3: "updating routers in the wrong order can result in inconsistent
behavior". Workload: renumber a router-to-router link (two interface
addresses) on a non-redundant corridor of the enterprise network — the
change set the paper's scheduler discussion is about. The ordered scheduler
applies both ends of the link in one category batch; the naive baseline
pushes device-by-device and strands the link in mismatched subnets in
between.
"""

from conftest import print_table

from repro.core.enforcer.scheduler import ChangeScheduler
from repro.experiments.ablations import _renumbering_changes, scheduler_ablation


def test_scheduler_ablation(benchmark, enterprise_policies):
    rows = scheduler_ablation(policies=enterprise_policies)
    print_table(
        "A2: ordered scheduling vs naive per-device push (link renumbering)",
        ("strategy", "batches", "intermediate states checked",
         "transient violations"),
        [
            (row.strategy, row.batches, row.checked_states,
             row.transient_violations)
            for row in rows
        ],
    )
    by_name = {row.strategy: row for row in rows}
    assert by_name["ordered (Heimdall)"].transient_violations == 0
    assert by_name["naive per-device"].transient_violations > 0

    def kernel():
        production, changes = _renumbering_changes()
        return ChangeScheduler().push(production, changes)

    benchmark(kernel)
