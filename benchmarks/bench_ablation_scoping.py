"""A1 — ablation: twin scoping strategies (DESIGN.md).

Sweeps the four scoping strategies (all / neighbor / path / heimdall) over
the interface-down issues and reports exposure (devices cloned into the
twin), feasibility (root cause in scope), and the attack surface under a
task-generated Privilege_msp. Shows *why* the near-shortest-path ellipse is
the right middle ground: ``path`` alone misses detour root causes, ``all``
clones everything.
"""

from conftest import print_table

from repro.experiments.ablations import scoping_ablation


def test_scoping_ablation(benchmark, enterprise, enterprise_policies,
                          enterprise_ifdown):
    rows = scoping_ablation(
        network=enterprise, policies=enterprise_policies,
        issues=enterprise_ifdown,
    )
    print_table(
        "A1: twin scoping ablation (enterprise, same Privilege_msp pipeline)",
        ("strategy", "mean devices exposed", "feasibility", "attack surface",
         "twin fidelity"),
        [
            (row.strategy,
             f"{row.mean_exposed:.1f}/{row.total_devices}",
             f"{row.feasibility_pct:.1f}%",
             f"{row.attack_surface_pct:.1f}%",
             f"{row.fidelity_pct:.1f}%")
            for row in rows
        ],
    )

    by_name = {row.strategy: row for row in rows}
    # heimdall >= path in feasibility (it is a superset scope) ...
    assert by_name["heimdall"].feasibility_pct >= by_name["path"].feasibility_pct
    # ... and strictly smaller exposure than all.
    assert by_name["heimdall"].mean_exposed < by_name["all"].mean_exposed
    # Fidelity (paper challenge 2): the full clone is perfect by definition;
    # Heimdall's ellipse keeps what the technician observes faithful.
    assert by_name["all"].fidelity_pct == 100.0
    assert by_name["heimdall"].fidelity_pct >= by_name["neighbor"].fidelity_pct

    subset = enterprise_ifdown[:5]
    benchmark(
        lambda: scoping_ablation(
            network=enterprise, policies=enterprise_policies, issues=subset,
            with_fidelity=False,
        )
    )
