"""Figure 7 — time to solve three real issues (vlan, ospf, isp).

Paper: on the enterprise network, Heimdall adds 28 s of latency overhead on
average — 15 s for the simple issue (ISP reconfiguration) and 42 s for the
complex one (VLAN troubleshooting) — and "the most time is spent performing
operations to resolve the issue".

Reproduced here on the simulated clock (calibrated cost model; see
DESIGN.md). We report the same decomposition: the three shared steps
(connect / perform operations / save changes) and Heimdall's three extra
steps (generate privilege / twin setup / verify + schedule).
"""

from conftest import print_table

from repro.experiments.fig7 import FIG7_STEPS, PAPER_FIG7, figure7
from repro.msp.workflows import HeimdallWorkflow
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues


def test_figure7_enterprise(benchmark, enterprise_policies):
    result = figure7("enterprise", policies=enterprise_policies)
    rows = [
        (row.issue_id, row.complexity,
         f"{row.current_s:.1f}s", f"{row.heimdall_s:.1f}s",
         f"+{row.overhead_s:.1f}s")
        for row in result.rows
    ]
    rows.append((
        "average", "", "", "",
        f"+{result.average_overhead_s:.1f}s "
        f"(paper: +{PAPER_FIG7['average_overhead_s']:.0f}s)",
    ))
    print_table(
        "Figure 7: time to solve three real issues (enterprise)",
        ("issue", "complexity", "current", "heimdall", "overhead"),
        rows,
    )

    vlan = next(row for row in result.rows if row.issue_id == "vlan")
    breakdown_rows = [
        (step,
         f"{vlan.current_breakdown.get(step, 0.0):.1f}s",
         f"{vlan.heimdall_breakdown.get(step, 0.0):.1f}s")
        for step in FIG7_STEPS
        if vlan.current_breakdown.get(step) or vlan.heimdall_breakdown.get(step)
    ]
    print_table(
        "Figure 7 (detail): step breakdown for the vlan issue",
        ("step", "current", "heimdall"),
        breakdown_rows,
    )

    # Shape checks.
    assert all(row.resolved for row in result.rows)
    assert all(0 < row.overhead_s < 120 for row in result.rows)
    # Operations dominate the shared steps of the current workflow.
    assert vlan.current_breakdown["perform operations"] == max(
        vlan.current_breakdown.values()
    )
    # The average overhead lands in the paper's neighbourhood (tens of s).
    assert 10 < result.average_overhead_s < 60

    def kernel():
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["isp"]
        issue.inject(production)
        return HeimdallWorkflow(policies=enterprise_policies).resolve(
            production, issue
        )

    benchmark(kernel)
