"""Perf suite: cold vs cached vs incremental compile-and-verify.

Times the three tiers of the compile pipeline introduced with the snapshot
cache (cold full compile, fingerprint cache hit, incremental rebuild
against a baseline) and the enforcer's full ``verify`` in its cold and
incremental configurations on both scenario networks. Run with::

    pytest benchmarks/bench_incremental.py --benchmark-only -s
"""

import pytest
from conftest import print_table

from repro.control.builder import build_dataplane
from repro.control.cache import (
    clear_dataplane_cache,
    dataplane_cache,
    snapshot_fingerprint,
)
from repro.core.enforcer.verifier import ChangeVerifier
from repro.experiments.bench_dataplane import run_benchmarks, ticket_workload
from repro.scenarios.issues import standard_issues


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()


def test_compile_cold(benchmark, university):
    benchmark(lambda: build_dataplane(university, use_cache=False))


def test_compile_cached(benchmark, university):
    build_dataplane(university)
    benchmark(lambda: build_dataplane(university))


def test_compile_incremental(benchmark, university):
    baseline = build_dataplane(university)
    issue = standard_issues("university")["ospf"]
    broken = university.copy()
    issue.inject(broken)
    broken_fp = snapshot_fingerprint(broken)[0]

    def run():
        dataplane_cache().discard(broken_fp)
        build_dataplane(
            broken, baseline=baseline,
            changed_devices={issue.root_cause_device},
        )

    benchmark(run)


def test_verify_cold(benchmark, university, university_policies):
    issue = standard_issues("university")["ospf"]
    production, changes = ticket_workload(university, issue)
    verifier = ChangeVerifier(university_policies, incremental=False)
    benchmark(lambda: verifier.verify(production, changes))


def test_verify_incremental(benchmark, university, university_policies):
    issue = standard_issues("university")["ospf"]
    production, changes = ticket_workload(university, issue)
    verifier = ChangeVerifier(university_policies)
    candidate_fp = snapshot_fingerprint(
        verifier.simulate(production, changes)
    )[0]
    verifier.verify(production, changes)  # steady state: production warm

    def run():
        dataplane_cache().discard(candidate_fp)
        verifier.verify(production, changes)

    benchmark(run)


def test_full_report():
    """One-shot report table (the same numbers ``run_bench.py`` persists)."""
    report = run_benchmarks(repeats=3)
    rows = []
    for name, network_rows in report["networks"].items():
        for issue_id, verify in network_rows["verify"].items():
            rows.append(
                (name, issue_id, f"{verify['cold_ms']:.1f}ms",
                 f"{verify['incremental_ms']:.1f}ms",
                 f"{verify['speedup']:.1f}x")
            )
    print_table(
        "Verifier.verify: cold vs incremental",
        ("network", "issue", "cold", "incremental", "speedup"),
        rows,
    )
    gate = report["acceptance"]
    assert gate["university_single_device_verify_speedup"] >= gate["target"]
