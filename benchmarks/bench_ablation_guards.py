"""A3 — ablation: policy-derived guard rules (the translator's contribution).

Heimdall's Privilege_msp is task-profile grants *plus* deny rules derived
from the network policies (§4.1's "framework for translating network
policies into our DSL"). This ablation runs the Figure-8 sweep with and
without the guard rules: the surface gap is what the translator buys, at
zero feasibility cost (guards never cover the root cause's restorative
action).
"""

from conftest import print_table

from repro.experiments.ablations import guard_rules_ablation


def test_guard_rules_ablation(benchmark, enterprise, enterprise_policies,
                              enterprise_ifdown):
    rows = guard_rules_ablation(
        network=enterprise, policies=enterprise_policies,
        issues=enterprise_ifdown,
    )
    print_table(
        "A3: Privilege_msp guard rules on/off (enterprise, heimdall scoping)",
        ("variant", "feasibility", "attack surface"),
        [
            (row.variant, f"{row.feasibility_pct:.1f}%",
             f"{row.attack_surface_pct:.1f}%")
            for row in rows
        ],
    )

    by_name = {row.variant: row for row in rows}
    with_guards = by_name["profile + guards"]
    without = by_name["profile only"]
    # Guards cut the surface substantially without losing feasibility.
    assert with_guards.attack_surface_pct < without.attack_surface_pct
    assert with_guards.feasibility_pct == without.feasibility_pct

    subset = enterprise_ifdown[:5]
    benchmark(
        lambda: guard_rules_ablation(
            network=enterprise, policies=enterprise_policies, issues=subset
        )
    )
