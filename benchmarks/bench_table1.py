"""Table 1 — evaluation networks.

Paper (Table 1):

    Network     #routers #hosts #links #policies lines-of-configs
    Enterprise  9        9      22     21        1394
    University  13       17     92     175       2146

The topology counts are matched exactly; policy counts and config lines
come from our miner/serializer, so only their *ordering and magnitude* are
comparable (see EXPERIMENTS.md for the granularity discussion).
"""

from conftest import print_table

from repro.experiments.table1 import table1
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network


def test_table1(benchmark, enterprise, university):
    rows = table1({"enterprise": enterprise, "university": university})
    display = [
        [row.network]
        + [f"{measured} (paper {paper})" for _, measured, paper in row.cells()]
        for row in rows
    ]
    print_table(
        "Table 1: evaluation networks",
        ("network", "#routers", "#hosts", "#links", "#policies", "config lines"),
        display,
    )

    by_name = {row.network: row for row in rows}
    # Topology shape is matched exactly.
    for name in ("enterprise", "university"):
        for label, measured, paper in by_name[name].cells()[:3]:
            assert measured == paper, (name, label)
    # Policy and config-line orderings are preserved.
    assert by_name["university"].policies > by_name["enterprise"].policies
    assert by_name["university"].config_lines > by_name["enterprise"].config_lines

    # Time the full pipeline that produces a Table 1 row.
    benchmark(lambda: mine_policies(build_enterprise_network()))
