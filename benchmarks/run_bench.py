#!/usr/bin/env python
"""Run the data-plane perf suite and write ``BENCH_dataplane.json``.

Equivalent to ``python -m repro.cli bench``; kept as a standalone script so
the perf baseline can be regenerated without remembering CLI flags::

    PYTHONPATH=src python benchmarks/run_bench.py [-o BENCH_dataplane.json]
"""

import argparse
import sys

from repro.experiments.bench_dataplane import (
    DEFAULT_REPEATS,
    NETWORKS,
    run_benchmarks,
    write_report,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--network", action="append", choices=sorted(NETWORKS),
        help="benchmark only this scenario (repeatable; default: all)",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("-o", "--output", default="BENCH_dataplane.json")
    args = parser.parse_args(argv)

    report = run_benchmarks(networks=args.network, repeats=args.repeats)
    write_report(report, args.output)

    for name, rows in report["networks"].items():
        compile_ms = rows["compile"]
        print(
            f"{name}: compile cold {compile_ms['cold_ms']}ms / cached "
            f"{compile_ms['cached_ms']}ms / incremental "
            f"{compile_ms['incremental_ms']}ms"
        )
        for issue_id, verify in rows["verify"].items():
            print(
                f"  verify[{issue_id}]: cold {verify['cold_ms']}ms -> "
                f"incremental {verify['incremental_ms']}ms "
                f"({verify['speedup']}x)"
            )
    if "acceptance" in report:
        gate = report["acceptance"]
        print(
            f"acceptance: university verify speedup "
            f"{gate['university_single_device_verify_speedup']}x "
            f"(target {gate['target']}x)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
