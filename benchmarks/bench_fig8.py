"""Figure 8 — feasibility and attack surface, enterprise network.

Paper: compared to All (full access) and Neighbor (affected nodes +
neighbours), Heimdall reduces the attack surface by up to 39% on the
enterprise network while achieving feasibility close to fully-open — "a
small attack surface with only a minor feasibility decrease".

Workload: bring down each cabled interface whose loss breaks a host pair
("we create an issue by bringing down each interface"), then per approach
check root-cause accessibility (feasibility) and compute the weighted
attack-surface formula.
"""

from conftest import print_table

from repro.experiments.fig89 import figure89, heimdall_approaches
from repro.attack.surface import evaluate_approaches


def report(title, results, paper_note):
    rows = [
        (r.approach, f"{r.feasibility_pct:.1f}%", f"{r.attack_surface_pct:.1f}%")
        for r in results
    ]
    rows.append(("", "", paper_note))
    print_table(title, ("approach", "feasibility", "attack surface"), rows)


def assert_shape(results):
    by_name = {r.approach: r for r in results}
    assert by_name["All"].feasibility_pct == 100.0
    # Heimdall: feasibility close to All, surface well below All.
    assert by_name["Heimdall"].feasibility_pct >= 90.0
    assert by_name["Heimdall"].attack_surface_pct < (
        by_name["All"].attack_surface_pct - 20.0
    )
    # Neighbor trades feasibility away.
    assert by_name["Neighbor"].feasibility_pct < (
        by_name["Heimdall"].feasibility_pct
    )


def test_figure8_enterprise(benchmark, enterprise, enterprise_policies,
                            enterprise_ifdown):
    results = figure89(
        "enterprise", network=enterprise, policies=enterprise_policies,
        issues=enterprise_ifdown,
    )
    by_name = {r.approach: r for r in results}
    reduction = (
        by_name["All"].attack_surface_pct
        - by_name["Heimdall"].attack_surface_pct
    )
    report(
        f"Figure 8: enterprise ({len(enterprise_ifdown)} interface-down issues)",
        results,
        f"Heimdall reduces surface by {reduction:.0f} points (paper: up to 39%)",
    )
    assert_shape(results)

    subset = enterprise_ifdown[:5]
    benchmark(
        lambda: evaluate_approaches(
            enterprise, subset, enterprise_policies,
            heimdall_approaches(enterprise_policies),
        )
    )
