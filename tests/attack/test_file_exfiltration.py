"""File-exfiltration containment (the APT10 Figure-2 file-stealing half)."""

import pytest

from repro.attack.adversary import file_exfiltration
from repro.core.heimdall import Heimdall
from repro.msp.rmm import RmmServer
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.files import (
    SENSITIVE_MARKER,
    default_host_files,
    sensitive_paths,
)
from repro.scenarios.issues import standard_issues


class _RmmAccess:
    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.execute(device, command)


class _TwinAccess:
    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.console(device).execute(command)


class TestHostFilesystems:
    def test_every_host_has_boilerplate(self):
        network = build_enterprise_network()
        files = default_host_files(network)
        for host in network.hosts():
            assert "/etc/hostname" in files[host]
            assert files[host]["/etc/hostname"] == host

    def test_sensitive_files_on_crown_jewel_hosts(self):
        network = build_enterprise_network()
        targets = sensitive_paths(network)
        assert ("db1", "/data/customers.db") in targets
        assert all(network.topology.has_device(h) for h, _p in targets)

    def test_console_file_commands(self):
        network = build_enterprise_network()
        server = RmmServer(network)
        server.add_credential("t", "p")
        session = server.authenticate("t", "p")
        listing = session.execute("db1", "ls")
        assert listing.ok
        assert "/data/customers.db" in listing.output
        content = session.execute("db1", "cat /data/customers.db")
        assert SENSITIVE_MARKER in content.output
        assert content.action == "file.read"

    def test_cat_missing_file_fails(self):
        network = build_enterprise_network()
        server = RmmServer(network)
        server.add_credential("t", "p")
        session = server.authenticate("t", "p")
        result = session.execute("db1", "cat /no/such/file")
        assert not result.ok

    def test_routers_have_no_file_commands(self):
        network = build_enterprise_network()
        server = RmmServer(network)
        server.add_credential("t", "p")
        session = server.authenticate("t", "p")
        assert not session.execute("gw", "ls").ok


class TestFileExfiltration:
    def test_succeeds_against_rmm(self):
        network = build_enterprise_network()
        server = RmmServer(network)
        server.add_credential("apt10", "phished")
        session = server.authenticate("apt10", "phished")
        report = file_exfiltration(
            _RmmAccess(session), sensitive_paths(network)
        )
        assert not report.contained
        assert report.succeeded == report.attempted
        assert ("db1", "/data/customers.db") in report.loot

    def test_contained_by_heimdall(self):
        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue)
        report = file_exfiltration(
            _TwinAccess(session), sensitive_paths(production)
        )
        assert report.contained
        assert report.loot == []
        layers = {layer for _host, layer in report.blocked_by}
        # Out-of-scope hosts: twin scoping. In-scope hosts: the monitor
        # (no profile grants file.read) — and even if it did, twin hosts
        # have empty filesystems.
        assert layers <= {
            "twin-scoping", "reference-monitor", "empty-emulation-filesystem",
        }

    def test_twin_hosts_have_empty_filesystems(self):
        healthy = build_enterprise_network()
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        heimdall = Heimdall(production, policies=mine_policies(healthy))
        session = heimdall.open_ticket(issue)
        for host in session.twin.scope & set(production.hosts()):
            assert session.twin.emnet.node(host).files == {}
