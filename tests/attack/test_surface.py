"""Attack-surface metric tests (the Figure 8/9 machinery)."""

import pytest

from repro.attack.commands import allowed_command_count, available_command_count
from repro.attack.surface import evaluate_approaches, evaluate_exposure
from repro.control.builder import build_dataplane
from repro.core.privilege.ast import PrivilegeSpec
from repro.core.privilege.generator import (
    generate_privilege_spec,
    profile_for_issue,
)
from repro.core.privilege.translator import policy_guard_rules
from repro.core.twin.scoping import scope_all, scope_heimdall, scope_neighbor
from repro.net.topology import DeviceKind
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import interface_down_issues

from tests.fixtures import square_network


class TestCommandCounts:
    def test_available_by_kind(self):
        assert available_command_count(DeviceKind.ROUTER) > (
            available_command_count(DeviceKind.HOST)
        )

    def test_allowed_equals_available_without_spec(self):
        assert allowed_command_count(DeviceKind.ROUTER, "r1") == (
            available_command_count(DeviceKind.ROUTER)
        )

    def test_deny_all_allows_only_mode_transitions(self):
        count = allowed_command_count(
            DeviceKind.ROUTER, "r1", PrivilegeSpec.deny_all(),
            interfaces=("Gi0/0",),
        )
        # configure terminal / exit / end style commands remain.
        assert 0 < count < available_command_count(DeviceKind.ROUTER)

    def test_interface_scoped_rules_counted(self):
        spec = PrivilegeSpec()
        spec.add_rule("allow", "config.interface.admin", "r1:Gi0/0")
        with_iface = allowed_command_count(
            DeviceKind.ROUTER, "r1", spec, interfaces=("Gi0/0",)
        )
        without = allowed_command_count(DeviceKind.ROUTER, "r1", spec)
        assert with_iface > without


@pytest.fixture(scope="module")
def square_setup():
    network = square_network()
    policies = mine_policies(network)
    issues = interface_down_issues(network)
    return network, policies, issues


class TestExposureMetric:
    def test_surface_bounded_0_100(self, square_setup):
        network, policies, issues = square_setup
        for issue in issues:
            broken = network.copy()
            issue.inject(broken)
            result = evaluate_exposure(
                broken, issue, scope_all(broken, issue), policies
            )
            assert 0.0 <= result.attack_surface <= 100.0

    def test_all_exposure_maximises_command_ratio(self, square_setup):
        network, policies, issues = square_setup
        issue = issues[0]
        broken = network.copy()
        issue.inject(broken)
        result = evaluate_exposure(
            broken, issue, scope_all(broken, issue), policies
        )
        assert result.command_ratio == pytest.approx(1.0)

    def test_empty_exposure_is_zero_surface_and_infeasible(self, square_setup):
        network, policies, issues = square_setup
        issue = issues[0]
        broken = network.copy()
        issue.inject(broken)
        result = evaluate_exposure(broken, issue, set(), policies)
        assert result.attack_surface == 0.0
        assert not result.feasible

    def test_monotone_in_exposure(self, square_setup):
        network, policies, issues = square_setup
        issue = issues[0]
        broken = network.copy()
        issue.inject(broken)
        small = evaluate_exposure(
            broken, issue, {issue.root_cause_device}, policies
        )
        large = evaluate_exposure(
            broken, issue, scope_all(broken, issue), policies
        )
        assert small.attack_surface <= large.attack_surface

    def test_privilege_spec_reduces_surface(self, square_setup):
        network, policies, issues = square_setup
        issue = issues[0]
        broken = network.copy()
        issue.inject(broken)
        scope = scope_heimdall(broken, issue)
        open_spec = evaluate_exposure(broken, issue, scope, policies)
        tight = generate_privilege_spec(scope, profile_for_issue(issue))
        restricted = evaluate_exposure(
            broken, issue, scope, policies, privilege_spec=tight
        )
        assert restricted.attack_surface < open_spec.attack_surface

    def test_isolation_policy_violable_only_at_blocker(self, square_setup):
        network, policies, issues = square_setup
        issue = issues[0]
        broken = network.copy()
        issue.inject(broken)
        dataplane = build_dataplane(broken)
        with_blocker = evaluate_exposure(
            broken, issue, {"r3"}, policies, dataplane=dataplane
        )
        without_blocker = evaluate_exposure(
            broken, issue, {"r1"}, policies, dataplane=dataplane
        )
        isolation_ids = {p.policy_id for p in policies if p.kind == "isolation"}
        assert isolation_ids & with_blocker.violable_policies
        assert not isolation_ids & without_blocker.violable_policies


class TestApproachSweep:
    def test_enterprise_shape(self):
        """The headline Figure 8 shape, asserted as invariants."""
        network = build_enterprise_network()
        policies = mine_policies(network)
        issues = interface_down_issues(network)[:8]  # subset: keep tests fast

        def all_fn(broken, issue, dp):
            return scope_all(broken, issue, dp), None

        def nbr_fn(broken, issue, dp):
            return scope_neighbor(broken, issue, dp), None

        def hd_fn(broken, issue, dp):
            scope = scope_heimdall(broken, issue, dp)
            guards = policy_guard_rules(policies, dp)
            spec = generate_privilege_spec(
                scope, profile_for_issue(issue), extra_rules=guards
            )
            return scope, spec

        results = {
            r.approach: r
            for r in evaluate_approaches(
                network, issues, policies,
                {"All": all_fn, "Neighbor": nbr_fn, "Heimdall": hd_fn},
            )
        }
        assert results["All"].feasibility_pct == 100.0
        assert results["Heimdall"].feasibility_pct >= (
            results["Neighbor"].feasibility_pct
        )
        assert results["Heimdall"].attack_surface_pct < (
            results["All"].attack_surface_pct
        )
        # "best of both worlds": Heimdall at or below Neighbor's surface.
        assert results["Heimdall"].attack_surface_pct <= (
            results["Neighbor"].attack_surface_pct + 5.0
        )
