"""Adversary containment tests: the motivating incidents, replayed."""

import pytest

from repro.attack.adversary import (
    MaliciousFixScript,
    careless_command,
    exfiltration_attempt,
    malicious_fix,
    production_secrets,
)
from repro.core.heimdall import Heimdall
from repro.msp.rmm import RmmServer
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import SENSITIVE_DEVICES, build_enterprise_network
from repro.scenarios.issues import standard_issues


class _RmmAccess:
    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.execute(device, command)


class _TwinAccess:
    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.console(device).execute(command)


def heimdall_session(issue_id, profile=None):
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    issue = standard_issues("enterprise")[issue_id]
    issue.inject(production)
    heimdall = Heimdall(production, policies=policies)
    return production, issue, heimdall, heimdall.open_ticket(issue, profile)


class TestExfiltration:
    """Figure 2: APT10-style credential harvesting."""

    def test_succeeds_against_rmm_baseline(self):
        production = build_enterprise_network()
        server = RmmServer(production)
        server.add_credential("apt10", "phished")
        session = server.authenticate("apt10", "phished")
        report = exfiltration_attempt(
            _RmmAccess(session),
            SENSITIVE_DEVICES,
            production_secrets(production),
        )
        assert not report.contained
        assert report.succeeded == len(SENSITIVE_DEVICES)
        assert report.loot  # credentials obtained

    def test_contained_by_heimdall_twin(self):
        production, issue, heimdall, session = heimdall_session("vlan")
        report = exfiltration_attempt(
            _TwinAccess(session),
            SENSITIVE_DEVICES + ("gw", "isp"),
            production_secrets(production),
        )
        assert report.contained
        assert report.loot == []
        # Every attempt was blocked by scoping, the monitor, or sanitisation.
        assert len(report.blocked_by) == report.attempted

    def test_in_scope_device_yields_no_secrets(self):
        # The ospf twin includes dist1 (a sensitive device) — its console
        # works, but sanitisation removed the credentials.
        production, issue, heimdall, session = heimdall_session("ospf")
        assert "dist1" in session.twin.scope
        report = exfiltration_attempt(
            _TwinAccess(session), ("dist1",), production_secrets(production)
        )
        assert report.contained
        assert ("dist1", "sanitisation") in report.blocked_by


class TestMaliciousFix:
    """Figure 6: a legitimate fix smuggling an extra ACL change."""

    def _script(self):
        return MaliciousFixScript(
            device="dist1",
            legitimate_commands=(
                "configure terminal",
                "router ospf 1",
                "network 10.0.5.0 0.0.0.3 area 0",
                "network 10.0.7.0 0.0.0.3 area 0",
                "network 10.0.8.0 0.0.0.3 area 0",
                "exit",
            ),
            malicious_commands=(
                "ip access-list extended DB_PROTECT",
                "permit tcp 10.5.10.0 0.0.0.255 host 10.7.1.100 eq 5432",
                "end",
            ),
        )

    def test_succeeds_against_rmm_baseline(self):
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        server = RmmServer(production)
        server.add_credential("rogue", "pw")
        session = server.authenticate("rogue", "pw")
        malicious_fix(_RmmAccess(session), self._script())
        # Ticket fixed AND the database is now open to the staff VLAN.
        assert issue.is_resolved(production)
        acl = production.config("dist1").acl("DB_PROTECT")
        assert any("10.5.10.0" in e.to_text() for e in acl.entries)

    def test_contained_by_heimdall(self):
        production, issue, heimdall, session = heimdall_session(
            "ospf", profile="connectivity"
        )
        results = malicious_fix(_TwinAccess(session), self._script())
        outcome = session.submit()
        acl = production.config("dist1").acl("DB_PROTECT")
        smuggled = any("10.5.10.0" in e.to_text() for e in acl.entries)
        assert not smuggled
        # Containment is by monitor (denied command) or enforcer (rejected
        # import) — one of them must have fired.
        monitor_denied = any(not r.ok for r in results)
        assert monitor_denied or not outcome.approved


class TestCarelessCommand:
    """Figure 3: sudo rm -rf, networking edition."""

    COMMANDS = ("configure terminal", "interface Gi0/1", "shutdown", "end")

    def test_causes_outage_on_rmm_baseline(self):
        production = build_enterprise_network()
        policies = mine_policies(production)
        server = RmmServer(production)
        server.add_credential("tired-tech", "pw")
        session = server.authenticate("tired-tech", "pw")
        careless_command(_RmmAccess(session), "gw", self.COMMANDS)
        from repro.policy.verification import PolicyVerifier

        report = PolicyVerifier(policies).verify_network(production)
        assert not report.holds  # the outage is real

    def test_contained_by_heimdall(self):
        production, issue, heimdall, session = heimdall_session("isp")
        results = careless_command(
            _TwinAccess(session), "gw", self.COMMANDS
        )
        outcome = session.submit()
        assert not production.config("gw").interface("Gi0/1").shutdown
        monitor_denied = any(not r.ok for r in results)
        assert monitor_denied or not outcome.approved
