"""Technician shell tests: driven non-interactively via cmdloop over StringIO."""

import io

import pytest

from repro.core.heimdall import Heimdall
from repro.msp.rmm import RmmServer
from repro.msp.shell import TechnicianShell
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues

from tests.fixtures import square_network


class _RmmAccess:
    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.execute(device, command)


class _TwinAccess:
    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.console(device).execute(command)


def run_shell(access, devices, script):
    stdin = io.StringIO("\n".join(script) + "\n")
    stdout = io.StringIO()
    shell = TechnicianShell(access, devices, stdin=stdin, stdout=stdout)
    shell.cmdloop()
    return shell, stdout.getvalue()


@pytest.fixture
def rmm_access():
    server = RmmServer(square_network())
    server.add_credential("t", "p")
    session = server.authenticate("t", "p")
    return _RmmAccess(session), session.devices()


class TestShellBasics:
    def test_connect_and_run(self, rmm_access):
        access, devices = rmm_access
        shell, output = run_shell(access, devices, [
            "connect r1", "show ip route", "quit",
        ])
        assert "connected to r1" in output
        assert "10.2.2.0/24" in output
        assert shell.history == [("r1", "show ip route", True)]

    def test_unknown_device(self, rmm_access):
        access, devices = rmm_access
        _, output = run_shell(access, devices, ["connect mainframe", "quit"])
        assert "unknown device" in output

    def test_command_without_connection(self, rmm_access):
        access, devices = rmm_access
        _, output = run_shell(access, devices, ["show ip route", "quit"])
        assert "not connected" in output

    def test_devices_listing_marks_current(self, rmm_access):
        access, devices = rmm_access
        _, output = run_shell(access, devices, [
            "connect r2", "devices", "quit",
        ])
        assert " * r2" in output

    def test_config_session_spans_lines(self, rmm_access):
        access, devices = rmm_access
        shell, output = run_shell(access, devices, [
            "connect r1",
            "configure terminal",
            "interface Gi0/2",
            "shutdown",
            "end",
            "quit",
        ])
        assert all(ok for _dev, _cmd, ok in shell.history)

    def test_history_and_eof(self, rmm_access):
        access, devices = rmm_access
        _, output = run_shell(access, devices, [
            "connect r1", "show ip route", "history",
        ])  # no quit: EOF ends the loop
        assert "r1: show ip route [ok]" in output


class TestShellOverTwin:
    def test_denied_command_shown_not_executed(self):
        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue)

        shell, output = run_shell(
            _TwinAccess(session), session.twin.scope, [
                "connect sw2",
                "configure terminal",
                "hostname evil",
                "end",
                "quit",
            ],
        )
        assert "Privilege_msp" in output
        assert ("sw2", "hostname evil", False) in shell.history
        assert production.config("sw2").hostname == "sw2"

    def test_out_of_scope_device_not_listed(self):
        healthy = build_enterprise_network()
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)
        heimdall = Heimdall(production, policies=mine_policies(healthy))
        session = heimdall.open_ticket(issue)
        _, output = run_shell(
            _TwinAccess(session), session.twin.scope, ["devices", "quit"]
        )
        assert "isp" not in output
        assert "sw2" in output
