import pytest

from repro.msp.ticketing import TicketState, TicketSystem
from repro.scenarios.issues import standard_issues
from repro.util.errors import ReproError


@pytest.fixture
def system():
    return TicketSystem()


@pytest.fixture
def issue():
    return standard_issues("enterprise")["ospf"]


class TestLifecycle:
    def test_open_assign_resolve_close(self, system, issue):
        ticket = system.open(issue)
        assert ticket.state is TicketState.OPEN
        system.assign(ticket.ticket_id, "tech-1")
        assert ticket.assignee == "tech-1"
        system.resolve(ticket.ticket_id, note="fixed OSPF networks")
        system.close(ticket.ticket_id)
        assert ticket.state is TicketState.CLOSED
        assert ticket.notes == [("tech-1", "fixed OSPF networks")]

    def test_ids_sequential(self, system, issue):
        assert system.open(issue).ticket_id == "TICKET-0001"
        assert system.open(issue).ticket_id == "TICKET-0002"

    def test_illegal_transition_rejected(self, system, issue):
        ticket = system.open(issue)
        with pytest.raises(ReproError):
            system.resolve(ticket.ticket_id)  # not yet assigned

    def test_closed_is_terminal(self, system, issue):
        ticket = system.open(issue)
        system.close(ticket.ticket_id)
        with pytest.raises(ReproError):
            system.reopen(ticket.ticket_id)

    def test_reopen_from_resolved(self, system, issue):
        ticket = system.open(issue)
        system.assign(ticket.ticket_id, "t")
        system.resolve(ticket.ticket_id)
        system.reopen(ticket.ticket_id)
        assert ticket.state is TicketState.IN_PROGRESS

    def test_unknown_ticket(self, system):
        with pytest.raises(ReproError):
            system.get("TICKET-9999")

    def test_filter_by_state(self, system, issue):
        a = system.open(issue)
        system.open(issue)
        system.assign(a.ticket_id, "t")
        assert len(system.tickets(TicketState.OPEN)) == 1
        assert len(system.tickets()) == 2

    def test_description_comes_from_issue(self, system, issue):
        assert system.open(issue).description == issue.description
