"""Workflow tests: the Figure 7 measurement machinery."""

import pytest

from repro.msp.technician import ScriptedTechnician
from repro.msp.workflows import CurrentWorkflow, HeimdallWorkflow
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues


@pytest.fixture(scope="module")
def policies():
    return mine_policies(build_enterprise_network())


def broken(issue_id):
    production = build_enterprise_network()
    issue = standard_issues("enterprise")[issue_id]
    issue.inject(production)
    return production, issue


class TestCurrentWorkflow:
    @pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
    def test_resolves_every_issue(self, issue_id):
        production, issue = broken(issue_id)
        result = CurrentWorkflow().resolve(production, issue)
        assert result.resolved
        assert result.denied_commands == 0

    def test_breakdown_steps(self):
        production, issue = broken("isp")
        result = CurrentWorkflow().resolve(production, issue)
        assert set(result.breakdown) == {
            "connect", "perform operations", "save changes"
        }

    def test_duration_is_sum_of_steps(self):
        production, issue = broken("ospf")
        result = CurrentWorkflow().resolve(production, issue)
        assert result.duration_s == pytest.approx(sum(result.breakdown.values()))


class TestHeimdallWorkflow:
    @pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
    def test_resolves_every_issue(self, issue_id, policies):
        production, issue = broken(issue_id)
        result = HeimdallWorkflow(policies=policies).resolve(production, issue)
        assert result.resolved
        assert result.denied_commands == 0
        assert result.detail.approved

    def test_has_extra_steps(self, policies):
        production, issue = broken("isp")
        result = HeimdallWorkflow(policies=policies).resolve(production, issue)
        for step in ("generate privilege", "twin setup", "verify changes",
                     "schedule + commit"):
            assert step in result.breakdown

    @pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
    def test_overhead_positive_but_bounded(self, issue_id, policies):
        production_c, issue = broken(issue_id)
        current = CurrentWorkflow().resolve(production_c, issue)
        production_h, issue = broken(issue_id)
        heimdall = HeimdallWorkflow(policies=policies).resolve(
            production_h, issue
        )
        overhead = heimdall.duration_s - current.duration_s
        # The paper reports overheads of 15-42 s; the calibrated model
        # should stay in the same ballpark (single-digit minutes at most).
        assert 0 < overhead < 120

    def test_same_commands_both_workflows(self, policies):
        production_c, issue = broken("vlan")
        tech_c = ScriptedTechnician("a")
        CurrentWorkflow().resolve(production_c, issue, technician=tech_c)
        production_h, issue = broken("vlan")
        tech_h = ScriptedTechnician("b")
        HeimdallWorkflow(policies=policies).resolve(
            production_h, issue, technician=tech_h
        )
        assert tech_c.command_count == tech_h.command_count

    def test_perform_operations_comparable_across_workflows(self, policies):
        # The level playing field: identical scripts => identical operate
        # time; only Heimdall's extra steps differ.
        production_c, issue = broken("ospf")
        current = CurrentWorkflow().resolve(production_c, issue)
        production_h, issue = broken("ospf")
        heimdall = HeimdallWorkflow(policies=policies).resolve(
            production_h, issue
        )
        assert current.step_seconds("perform operations") == pytest.approx(
            heimdall.step_seconds("perform operations")
        )
