from repro.emulation.network import EmulatedNetwork
from repro.msp.technician import ScriptedTechnician
from repro.scenarios.issues import FixStep

from tests.fixtures import square_network


class _DirectAccess:
    """Raw console access for exercising the technician in isolation."""

    def __init__(self, network):
        self._emnet = EmulatedNetwork.attached(network)
        self._consoles = {}

    def execute(self, device, command):
        if device not in self._consoles:
            self._consoles[device] = self._emnet.console(device)
        return self._consoles[device].execute(command)


class TestScriptedTechnician:
    def test_replays_script_in_order(self):
        network = square_network()
        tech = ScriptedTechnician("t1")
        script = [
            FixStep("r1", ("show ip route", "configure terminal",
                           "interface Gi0/2", "shutdown", "end")),
            FixStep("r2", ("show ip route",)),
        ]
        tech.work_on(_DirectAccess(network), script)
        assert tech.command_count == 6
        assert tech.denied_count == 0
        assert network.config("r1").interface("Gi0/2").shutdown

    def test_denied_count_tracks_failures(self):
        network = square_network()
        tech = ScriptedTechnician()
        script = [FixStep("r1", ("show vlan", "show ip route"))]
        tech.work_on(_DirectAccess(network), script)
        assert tech.command_count == 2
        assert tech.denied_count == 1  # routers have no "show vlan"

    def test_results_accumulate_across_scripts(self):
        network = square_network()
        tech = ScriptedTechnician()
        access = _DirectAccess(network)
        tech.work_on(access, [FixStep("r1", ("show ip route",))])
        tech.work_on(access, [FixStep("r2", ("show ip route",))])
        assert tech.command_count == 2


class TestMonitoredConsoleScript:
    def test_run_script_returns_all_results(self):
        from repro.core.privilege.ast import PrivilegeSpec
        from repro.core.twin.monitor import MonitoredConsole, ReferenceMonitor

        emnet = EmulatedNetwork(square_network())
        monitor = ReferenceMonitor(PrivilegeSpec.allow_all())
        console = MonitoredConsole(monitor, emnet.console("r1"))
        results = console.run_script(
            ["show ip route", "configure terminal", "interface Gi0/0", "end"]
        )
        assert len(results) == 4
        assert all(r.ok for r in results)
        assert monitor.stats.commands == 4
        assert monitor.stats.allowed == 4

    def test_monitor_decisions_recorded(self):
        from repro.core.privilege.ast import PrivilegeSpec
        from repro.core.twin.monitor import MonitoredConsole, ReferenceMonitor

        spec = PrivilegeSpec()  # deny by default
        spec.add_rule("allow", "view.*", "*")
        emnet = EmulatedNetwork(square_network())
        monitor = ReferenceMonitor(spec)
        console = MonitoredConsole(monitor, emnet.console("r1"))
        console.run_script(["show ip route", "ping 10.0.12.2"])
        assert monitor.stats.allowed == 1
        assert monitor.stats.denied == 1
        assert [d.allowed for d in monitor.decisions] == [True, False]
