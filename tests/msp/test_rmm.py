import pytest

from repro.msp.rmm import RmmServer
from repro.util.errors import ReproError

from tests.fixtures import square_network


@pytest.fixture
def server():
    server = RmmServer(square_network())
    server.add_credential("tech-1", "hunter2")
    return server


class TestAuthentication:
    def test_valid_login(self, server):
        session = server.authenticate("tech-1", "hunter2")
        assert session.username == "tech-1"

    def test_wrong_password_rejected_and_recorded(self, server):
        with pytest.raises(ReproError):
            server.authenticate("tech-1", "wrong")
        assert server.failed_logins == ["tech-1"]

    def test_unknown_user_rejected(self, server):
        with pytest.raises(ReproError):
            server.authenticate("ghost", "x")

    def test_phished_credentials_grant_full_access(self, server):
        # The paper's threat model in one test: credentials are sufficient.
        session = server.authenticate("tech-1", "hunter2")
        assert set(session.devices()) == {
            "r1", "r2", "r3", "r4", "h1", "h2", "h3", "h4"
        }


class TestRootAccess:
    def test_agents_on_every_device(self, server):
        assert len(server.agents) == 8
        assert all(agent.root for agent in server.agents.values())

    def test_commands_mutate_production_directly(self, server):
        session = server.authenticate("tech-1", "hunter2")
        for command in ("configure terminal", "interface Gi0/0",
                        "shutdown", "end"):
            result = session.execute("r1", command)
            assert result.ok
        assert server.production.config("r1").interface("Gi0/0").shutdown

    def test_secrets_fully_readable(self, server):
        session = server.authenticate("tech-1", "hunter2")
        output = session.execute("r1", "show running-config").output
        assert "secret-r1" in output  # nothing is sanitised: root is root

    def test_console_state_persists_within_session(self, server):
        session = server.authenticate("tech-1", "hunter2")
        session.execute("r1", "configure terminal")
        result = session.execute("r1", "interface Gi0/0")
        assert result.ok

    def test_unknown_device_rejected(self, server):
        session = server.authenticate("tech-1", "hunter2")
        with pytest.raises(ReproError):
            session.console("mainframe")

    def test_command_counter(self, server):
        session = server.authenticate("tech-1", "hunter2")
        session.execute("r1", "show ip route")
        session.execute("r2", "show ip route")
        assert session.commands_run == 2
