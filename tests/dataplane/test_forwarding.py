import ipaddress

from repro.config.acl import Acl, AclEntry
from repro.config.model import StaticRoute
from repro.control.builder import build_dataplane
from repro.dataplane.forwarding import Disposition, trace_flow
from repro.net.flow import Flow

from tests.fixtures import square_network, switched_lan


def flow(src, dst, proto="icmp", dport=None):
    return Flow.make(src, dst, proto, dst_port=dport)


class TestDelivery:
    def test_host_to_host_across_ring(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("10.1.1.100", "10.2.2.100"))
        assert trace.disposition is Disposition.DELIVERED
        assert trace.path() == ["h1", "r1", "r2", "h2"]

    def test_start_device_inferred_from_source_ip(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("10.2.2.100", "10.1.1.100"))
        assert trace.path()[0] == "h2"

    def test_unknown_source_is_source_down(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("198.51.100.1", "10.1.1.100"))
        assert trace.disposition is Disposition.SOURCE_DOWN

    def test_same_lan_delivery_is_direct(self):
        dataplane = build_dataplane(switched_lan())
        trace = trace_flow(dataplane, flow("192.168.10.11", "192.168.10.12"))
        assert trace.disposition is Disposition.DELIVERED
        assert trace.path() == ["hA", "hB"]

    def test_delivery_to_router_address(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("10.1.1.100", "10.0.23.1"))
        assert trace.disposition is Disposition.DELIVERED
        assert trace.last_device == "r2"


class TestAclEnforcement:
    def test_egress_acl_denies_sensitive_lan(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("10.2.2.100", "10.3.3.100"))
        assert trace.disposition is Disposition.DENIED_OUT
        assert trace.last_device == "r3"
        assert "PROTECT_H3" in trace.hops[-1].note

    def test_other_sources_still_permitted(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("10.1.1.100", "10.3.3.100"))
        assert trace.disposition is Disposition.DELIVERED

    def test_ingress_acl(self):
        network = square_network()
        network.config("r1").add_acl(
            Acl(
                name="NO_ICMP",
                entries=[
                    AclEntry.parse("deny icmp any any"),
                    AclEntry.parse("permit ip any any"),
                ],
            )
        )
        network.config("r1").interface("Gi0/2").access_group_in = "NO_ICMP"
        dataplane = build_dataplane(network)
        trace = trace_flow(dataplane, flow("10.1.1.100", "10.2.2.100"))
        assert trace.disposition is Disposition.DENIED_IN
        assert trace.last_device == "r1"

    def test_reference_to_missing_acl_permits(self):
        network = square_network()
        network.config("r1").interface("Gi0/2").access_group_in = "GHOST"
        dataplane = build_dataplane(network)
        trace = trace_flow(dataplane, flow("10.1.1.100", "10.2.2.100"))
        assert trace.disposition is Disposition.DELIVERED


class TestFailures:
    def test_shutdown_lan_interface_is_arp_failure(self):
        network = square_network()
        network.config("h2").interface("eth0").shutdown = True
        dataplane = build_dataplane(network)
        trace = trace_flow(
            dataplane, flow("10.1.1.100", "10.2.2.100"), start_device="h1"
        )
        assert trace.disposition is Disposition.ARP_FAILURE
        assert trace.last_device == "r2"

    def test_no_route(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(
            dataplane, flow("10.1.1.100", "203.0.113.7"), start_device="h1"
        )
        # Hosts have a default to r1, but r1 has no route for this prefix.
        assert trace.disposition is Disposition.NO_ROUTE
        assert trace.last_device == "r1"

    def test_forwarding_loop_detected(self):
        network = square_network()
        for name in ("r1", "r2", "r3", "r4"):
            network.config(name).ospf = None
        # r1 and r2 point default routes at each other.
        network.config("r1").static_routes.append(
            StaticRoute(
                prefix=ipaddress.IPv4Network("0.0.0.0/0"),
                next_hop=ipaddress.IPv4Address("10.0.12.2"),
            )
        )
        network.config("r2").static_routes.append(
            StaticRoute(
                prefix=ipaddress.IPv4Network("0.0.0.0/0"),
                next_hop=ipaddress.IPv4Address("10.0.12.1"),
            )
        )
        dataplane = build_dataplane(network)
        trace = trace_flow(
            dataplane, flow("10.1.1.100", "10.3.3.100"), start_device="h1"
        )
        assert trace.disposition is Disposition.LOOP

    def test_vlan_misconfig_breaks_lan_delivery(self):
        network = switched_lan()
        network.config("sw2").interface("Fa0/2").access_vlan = 20
        dataplane = build_dataplane(network)
        trace = trace_flow(
            dataplane, flow("192.168.10.11", "192.168.10.12"), start_device="hA"
        )
        assert trace.disposition is Disposition.ARP_FAILURE

    def test_trace_str(self):
        dataplane = build_dataplane(square_network())
        trace = trace_flow(dataplane, flow("10.1.1.100", "10.2.2.100"))
        assert "h1 -> r1 -> r2 -> h2" in str(trace)
