"""Differential reachability tests (the enforcer's impact analysis)."""

import pytest

from repro.config.diffing import diff_networks
from repro.control.builder import build_dataplane
from repro.core.enforcer.verifier import ChangeVerifier
from repro.dataplane.differential import diff_reachability
from repro.net.flow import Flow
from repro.policy.mining import mine_policies

from tests.fixtures import square_network


@pytest.fixture
def base_dataplane():
    return build_dataplane(square_network())


class TestDiffReachability:
    def test_identical_snapshots_have_no_deltas(self, base_dataplane):
        other = build_dataplane(square_network())
        diff = diff_reachability(base_dataplane, other)
        assert diff.deltas == []
        assert diff.probed == 12
        assert diff.unchanged == 12

    def test_interface_down_breaks_flows(self, base_dataplane):
        broken = square_network()
        broken.config("r2").interface("Gi0/2").shutdown = True
        diff = diff_reachability(base_dataplane, build_dataplane(broken))
        assert diff.newly_broken
        assert not diff.newly_delivered
        # Every delivered flow to/from h2 breaks (h2->h3 was already
        # ACL-denied, so it changes failure mode rather than breaking anew).
        assert len(diff.newly_broken) == 5
        assert len(diff.deltas) == 6

    def test_acl_removal_newly_delivers(self, base_dataplane):
        opened = square_network()
        opened.config("r3").interface("Gi0/2").access_group_out = None
        diff = diff_reachability(base_dataplane, build_dataplane(opened))
        assert len(diff.newly_delivered) == 1
        (delta,) = diff.newly_delivered
        assert str(delta.flow.src_ip) == "10.2.2.100"
        assert str(delta.flow.dst_ip) == "10.3.3.100"

    def test_cost_change_reroutes_without_fate_change(self, base_dataplane):
        steered = square_network()
        steered.config("r1").interface("Gi0/0").ospf_cost = 100
        diff = diff_reachability(base_dataplane, build_dataplane(steered))
        assert diff.rerouted
        assert not diff.newly_broken
        assert all(d.after_disposition == "delivered" for d in diff.rerouted)

    def test_custom_probe_flows(self, base_dataplane):
        flow = Flow.make("10.1.1.100", "10.2.2.100", "icmp")
        diff = diff_reachability(
            base_dataplane, build_dataplane(square_network()),
            probe_flows=[("h1", flow)],
        )
        assert diff.probed == 1

    def test_summary(self, base_dataplane):
        broken = square_network()
        broken.config("r2").interface("Gi0/2").shutdown = True
        diff = diff_reachability(base_dataplane, build_dataplane(broken))
        assert "newly broken" in diff.summary()


class TestVerifierImpactIntegration:
    def test_decision_carries_impact(self):
        production = square_network()
        modified = production.copy()
        modified.config("r3").interface("Gi0/2").access_group_out = None
        changes = diff_networks(production.configs, modified.configs)
        decision = ChangeVerifier(mine_policies(production)).verify(
            production, changes
        )
        assert decision.impact is not None
        assert decision.impact.newly_delivered
        # The impact analysis agrees with the policy verdict.
        assert not decision.approved

    def test_benign_change_has_empty_impact(self):
        production = square_network()
        modified = production.copy()
        modified.config("r1").interface("Gi0/0").description = "relabelled"
        changes = diff_networks(production.configs, modified.configs)
        decision = ChangeVerifier(mine_policies(production)).verify(
            production, changes
        )
        assert decision.approved
        assert decision.impact.deltas == []
