"""Property-based tests over the data plane's core invariants."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.builder import build_dataplane
from repro.control.routes import Route
from repro.dataplane.fib import Fib
from repro.dataplane.forwarding import Disposition, trace_flow
from repro.net.flow import Flow

from tests.fixtures import square_network, switched_lan

ipv4 = st.integers(min_value=0, max_value=2**32 - 1).map(ipaddress.IPv4Address)


@st.composite
def fib_routes(draw):
    """A set of routes with unique prefixes."""
    prefixes = draw(
        st.sets(
            st.tuples(ipv4, st.integers(min_value=0, max_value=32)).map(
                lambda t: ipaddress.IPv4Network(t, strict=False)
            ),
            min_size=1,
            max_size=24,
        )
    )
    return [
        Route(prefix=p, protocol="static", out_interface="Gi0/0",
              next_hop=draw(ipv4))
        for p in prefixes
    ]


class TestFibProperties:
    @given(fib_routes(), ipv4)
    @settings(max_examples=200, deadline=None)
    def test_lpm_matches_reference_implementation(self, routes, dst):
        fib = Fib(routes)
        # Reference: filter containing prefixes, take max prefixlen.
        containing = [r for r in routes if dst in r.prefix]
        expected = (
            max(containing, key=lambda r: r.prefix.prefixlen)
            if containing
            else None
        )
        actual = fib.lookup(dst)
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.prefix.prefixlen == expected.prefix.prefixlen
            assert dst in actual.prefix

    @given(fib_routes())
    @settings(max_examples=50, deadline=None)
    def test_routes_sorted_most_specific_first(self, routes):
        fib = Fib(routes)
        lengths = [r.prefix.prefixlen for r in fib.routes()]
        assert lengths == sorted(lengths, reverse=True)

    @given(fib_routes())
    @settings(max_examples=50, deadline=None)
    def test_route_for_prefix_finds_each_installed_route(self, routes):
        fib = Fib(routes)
        for route in routes:
            assert fib.route_for_prefix(route.prefix) == route


def _all_host_flows(network, protocol="icmp"):
    hosts = network.hosts()
    flows = []
    for src in hosts:
        for dst in hosts:
            if src != dst:
                flows.append(
                    (src, Flow(
                        src_ip=network.host_address(src),
                        dst_ip=network.host_address(dst),
                        protocol=protocol,
                    ))
                )
    return flows


@pytest.fixture(scope="module", params=["square", "switched"])
def any_network(request):
    return square_network() if request.param == "square" else switched_lan()


class TestForwardingInvariants:
    def test_every_trace_terminates_with_disposition(self, any_network):
        dataplane = build_dataplane(any_network)
        for start, flow in _all_host_flows(any_network):
            trace = trace_flow(dataplane, flow, start_device=start)
            assert trace.disposition is not None
            assert len(trace.hops) <= 64

    def test_delivered_means_destination_owns_ip(self, any_network):
        dataplane = build_dataplane(any_network)
        for start, flow in _all_host_flows(any_network):
            trace = trace_flow(dataplane, flow, start_device=start)
            if trace.disposition is Disposition.DELIVERED:
                final = trace.last_device
                assert any_network.config(final).owns_address(flow.dst_ip)

    def test_path_starts_at_source(self, any_network):
        dataplane = build_dataplane(any_network)
        for start, flow in _all_host_flows(any_network):
            trace = trace_flow(dataplane, flow, start_device=start)
            assert trace.path()[0] == start

    def test_no_device_repeats_on_path(self, any_network):
        dataplane = build_dataplane(any_network)
        for start, flow in _all_host_flows(any_network):
            trace = trace_flow(dataplane, flow, start_device=start)
            if trace.disposition is not Disposition.LOOP:
                path = trace.path()
                assert len(path) == len(set(path))

    def test_acl_free_network_has_symmetric_reachability(self):
        # Strip the single ACL from the square network: with symmetric
        # routing and no filters, reachability must be symmetric.
        network = square_network()
        network.config("r3").interface("Gi0/2").access_group_out = None
        dataplane = build_dataplane(network)
        hosts = network.hosts()
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                forward = trace_flow(
                    dataplane,
                    Flow(src_ip=network.host_address(src),
                         dst_ip=network.host_address(dst), protocol="icmp"),
                    start_device=src,
                ).success
                backward = trace_flow(
                    dataplane,
                    Flow(src_ip=network.host_address(dst),
                         dst_ip=network.host_address(src), protocol="icmp"),
                    start_device=dst,
                ).success
                assert forward == backward

    def test_single_interface_shutdown_never_crashes_forwarding(self):
        network = square_network()
        for device in network.routers():
            for iface_name in list(network.config(device).interfaces):
                broken = network.copy()
                broken.config(device).interface(iface_name).shutdown = True
                dataplane = build_dataplane(broken)
                for start, flow in _all_host_flows(broken):
                    trace = trace_flow(dataplane, flow, start_device=start)
                    assert trace.disposition is not None


class TestSegmentInvariants:
    def test_segments_partition_live_endpoints(self, any_network):
        from repro.control.l2 import compute_segments

        segments = compute_segments(any_network)
        seen = set()
        for segment in segments:
            assert not (segment.endpoints & seen)
            seen |= segment.endpoints
        # Every live routed endpoint appears in exactly one segment.
        for device in any_network.topology.devices():
            config = any_network.config(device.name)
            for iface in config.interfaces.values():
                if iface.is_routed and not iface.shutdown and (
                    device.name not in any_network.switches()
                ):
                    assert (device.name, iface.name) in seen

    def test_same_segment_is_symmetric(self, any_network):
        from repro.control.l2 import compute_segments

        segments = compute_segments(any_network)
        endpoints = [
            (device, iface)
            for segment in segments
            for device, iface in segment.endpoints
        ]
        for a in endpoints:
            for b in endpoints:
                assert segments.same_segment(a, b) == segments.same_segment(b, a)
