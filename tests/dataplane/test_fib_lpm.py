"""The bucketed LPM fast path against a reference linear scan."""

import ipaddress

import pytest

from repro import obs
from repro.control.builder import build_dataplane
from repro.control.routes import Route
from repro.dataplane.fib import Fib
from tests.fixtures import square_network


def _linear_lookup(fib, dst_ip):
    """Reference semantics: first match over the (-prefixlen, str(prefix))
    sorted route list — exactly what the pre-bucketed Fib implemented."""
    for route in fib.routes():
        if dst_ip in route.prefix:
            return route
    return None


def _route(prefix, protocol="static", out_interface="Gi0/0", next_hop=None,
           metric=0):
    return Route(
        prefix=ipaddress.ip_network(prefix), protocol=protocol,
        out_interface=out_interface,
        next_hop=ipaddress.ip_address(next_hop) if next_hop else None,
        metric=metric,
    )


class TestBucketedLookup:
    def test_longest_prefix_wins(self):
        fib = Fib([
            _route("0.0.0.0/0", next_hop="10.0.0.1"),
            _route("10.0.0.0/8", next_hop="10.0.0.2"),
            _route("10.1.0.0/16", next_hop="10.0.0.3"),
            _route("10.1.2.0/24", next_hop="10.0.0.4"),
        ])
        dst = ipaddress.ip_address("10.1.2.9")
        assert fib.lookup(dst).prefix == ipaddress.ip_network("10.1.2.0/24")
        dst = ipaddress.ip_address("10.1.9.9")
        assert fib.lookup(dst).prefix == ipaddress.ip_network("10.1.0.0/16")
        dst = ipaddress.ip_address("10.9.9.9")
        assert fib.lookup(dst).prefix == ipaddress.ip_network("10.0.0.0/8")
        dst = ipaddress.ip_address("192.168.1.1")
        assert fib.lookup(dst).prefix == ipaddress.ip_network("0.0.0.0/0")

    def test_no_match_returns_none(self):
        fib = Fib([_route("10.0.0.0/24")])
        assert fib.lookup(ipaddress.ip_address("192.168.0.1")) is None

    def test_empty_fib(self):
        fib = Fib([])
        assert fib.lookup(ipaddress.ip_address("10.0.0.1")) is None
        assert len(fib) == 0
        assert list(fib) == []

    def test_tie_break_matches_sorted_order(self):
        # Duplicate prefixes: the route list keeps both, but lookup must
        # return the one that sorts first, as the linear scan did.
        first = _route("10.0.0.0/24", next_hop="10.0.0.1")
        second = _route("10.0.0.0/24", next_hop="10.0.0.2", metric=5)
        fib = Fib([second, first])
        dst = ipaddress.ip_address("10.0.0.7")
        assert fib.lookup(dst) == _linear_lookup(fib, dst)

    def test_matches_linear_scan_on_synthetic_table(self):
        routes = [_route("0.0.0.0/0", next_hop="10.255.255.254")]
        for octet2 in range(4):
            routes.append(_route(f"10.{octet2}.0.0/16", next_hop="10.0.0.1"))
            for octet3 in range(4):
                routes.append(
                    _route(f"10.{octet2}.{octet3}.0/24", next_hop="10.0.0.2")
                )
        fib = Fib(routes)
        probes = [
            "10.0.0.1", "10.1.2.3", "10.3.3.200", "10.9.0.1",
            "172.16.0.1", "10.2.255.255", "10.255.0.1",
        ]
        for probe in probes:
            dst = ipaddress.ip_address(probe)
            assert fib.lookup(dst) == _linear_lookup(fib, dst), probe

    def test_matches_linear_scan_on_compiled_network(self):
        network = square_network()
        plane = build_dataplane(network, use_cache=False)
        hosts = network.hosts()
        for device in network.configs:
            fib = plane.fib(device)
            for host in hosts:
                dst = network.host_address(host)
                assert fib.lookup(dst) == _linear_lookup(fib, dst), (
                    f"{device} -> {host}"
                )


class TestEdgeSemantics:
    def test_duplicate_prefix_first_route_wins(self):
        # Both routes stay installed, but every lookup resolves to the one
        # sorting first on (-prefixlen, str(prefix)) — the sorted-list order
        # the pre-bucketed linear scan established.
        route_a = _route("10.0.0.0/24", next_hop="10.0.0.1")
        route_b = _route("10.0.0.0/24", next_hop="10.0.0.2", metric=5)
        dst = ipaddress.ip_address("10.0.0.7")
        for ordering in ((route_a, route_b), (route_b, route_a)):
            fib = Fib(ordering)
            assert len(fib) == 2
            looked_up = fib.lookup(dst)
            assert looked_up == fib.routes()[0]
            assert looked_up == _linear_lookup(fib, dst)
            # Equal sort keys: the stable sort preserves install order, so
            # whichever duplicate was installed first is the winner.
            assert looked_up == ordering[0]

    def test_default_route_matches_everything(self):
        fib = Fib([_route("0.0.0.0/0", next_hop="10.0.0.1")])
        for probe in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
            route = fib.lookup(ipaddress.ip_address(probe))
            assert route is not None
            assert route.prefix == ipaddress.ip_network("0.0.0.0/0")

    def test_default_route_loses_to_any_longer_match(self):
        fib = Fib([
            _route("0.0.0.0/0", next_hop="10.0.0.1"),
            _route("192.168.0.0/16", next_hop="10.0.0.2"),
        ])
        hit = fib.lookup(ipaddress.ip_address("192.168.3.4"))
        assert hit.prefix == ipaddress.ip_network("192.168.0.0/16")

    def test_miss_counter_increments_only_on_true_misses(self):
        fib = Fib([
            _route("0.0.0.0/0", next_hop="10.0.0.1"),
            _route("10.0.0.0/24", next_hop="10.0.0.2"),
        ])
        empty = Fib([_route("10.0.0.0/24")])
        obs.reset()
        obs.enable()
        try:
            fib.lookup(ipaddress.ip_address("10.0.0.9"))    # specific hit
            fib.lookup(ipaddress.ip_address("172.16.0.1"))  # default hit
            empty.lookup(ipaddress.ip_address("172.16.0.1"))  # true miss
        finally:
            obs.disable()
            registry = obs.registry()
            lookups = registry.get("fib.lookups").value
            misses = registry.get("fib.lookup.misses").value
            obs.reset()
        assert lookups == 3
        assert misses == 1

    def test_counters_idle_while_disabled(self):
        fib = Fib([])
        obs.reset()
        fib.lookup(ipaddress.ip_address("10.0.0.1"))
        assert obs.registry().get("fib.lookup.misses").value == 0


class TestRouteForPrefix:
    def test_exact_prefix_lookup(self):
        target = _route("10.1.0.0/16", next_hop="10.0.0.3")
        fib = Fib([_route("10.0.0.0/8"), target, _route("10.1.2.0/24")])
        found = fib.route_for_prefix(ipaddress.ip_network("10.1.0.0/16"))
        assert found == target

    def test_missing_prefix_is_none(self):
        fib = Fib([_route("10.0.0.0/8")])
        assert fib.route_for_prefix(ipaddress.ip_network("10.1.0.0/16")) is None

    def test_routes_iteration_order_is_stable(self):
        routes = [
            _route("10.1.2.0/24"), _route("0.0.0.0/0"), _route("10.0.0.0/8"),
        ]
        fib = Fib(routes)
        prefixlens = [route.prefix.prefixlen for route in fib.routes()]
        assert prefixlens == sorted(prefixlens, reverse=True)
