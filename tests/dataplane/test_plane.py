import ipaddress

import pytest

from repro.control.builder import build_dataplane
from repro.util.errors import TopologyError

from tests.fixtures import square_network, switched_lan


@pytest.fixture
def dataplane():
    return build_dataplane(square_network())


class TestFibAccess:
    def test_fib_per_device(self, dataplane):
        assert len(dataplane.fib("r1")) > 0
        assert len(dataplane.fib("h1")) == 2  # connected + default

    def test_unknown_device(self, dataplane):
        with pytest.raises(TopologyError):
            dataplane.fib("ghost")


class TestResolveNextHop:
    def test_resolves_peer_router(self, dataplane):
        endpoint = dataplane.resolve_next_hop(
            "r1", "Gi0/0", ipaddress.IPv4Address("10.0.12.2")
        )
        assert endpoint == ("r2", "Gi0/0")

    def test_resolves_attached_host(self, dataplane):
        endpoint = dataplane.resolve_next_hop(
            "r1", "Gi0/2", ipaddress.IPv4Address("10.1.1.100")
        )
        assert endpoint == ("h1", "eth0")

    def test_unowned_target_is_none(self, dataplane):
        assert dataplane.resolve_next_hop(
            "r1", "Gi0/0", ipaddress.IPv4Address("10.0.12.99")
        ) is None

    def test_down_interface_segment_is_none(self):
        network = square_network()
        network.config("r1").interface("Gi0/0").shutdown = True
        dataplane = build_dataplane(network)
        assert dataplane.resolve_next_hop(
            "r1", "Gi0/0", ipaddress.IPv4Address("10.0.12.2")
        ) is None

    def test_down_target_is_none(self):
        network = square_network()
        network.config("r2").interface("Gi0/0").shutdown = True
        dataplane = build_dataplane(network)
        assert dataplane.resolve_next_hop(
            "r1", "Gi0/0", ipaddress.IPv4Address("10.0.12.2")
        ) is None

    def test_resolution_across_switched_segment(self):
        dataplane = build_dataplane(switched_lan())
        endpoint = dataplane.resolve_next_hop(
            "r1", "Gi0/0", ipaddress.IPv4Address("192.168.10.12")
        )
        assert endpoint == ("hB", "eth0")


class TestReachabilityAnalyzer:
    def test_trace_cache_returns_same_object(self, dataplane):
        from repro.dataplane.reachability import ReachabilityAnalyzer, host_flow

        analyzer = ReachabilityAnalyzer(dataplane)
        flow = host_flow(dataplane.network, "h1", "h2")
        assert analyzer.trace(flow) is analyzer.trace(flow)

    def test_matrix_excludes_self_pairs(self, dataplane):
        from repro.dataplane.reachability import ReachabilityAnalyzer

        matrix = ReachabilityAnalyzer(dataplane).reachability_matrix()
        assert all(src != dst for src, dst in matrix)
        assert len(matrix) == 12  # 4 hosts, ordered pairs

    def test_forwarding_path(self, dataplane):
        from repro.dataplane.reachability import ReachabilityAnalyzer, host_flow

        analyzer = ReachabilityAnalyzer(dataplane)
        path = analyzer.forwarding_path(
            host_flow(dataplane.network, "h1", "h2"), start_device="h1"
        )
        assert path == ["h1", "r1", "r2", "h2"]
