import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Observability on, with clean state before and after."""
    obs.reset()
    obs.enable()
    yield obs
    obs.disable()
    obs.reset()


@pytest.fixture
def obs_disabled():
    """Observability explicitly off, with clean state before and after."""
    obs.disable()
    obs.reset()
    yield obs
    obs.reset()
