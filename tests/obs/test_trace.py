"""Span-tree construction: nesting, threads, determinism, disabled no-ops."""

import io
import threading

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Span


class TestNesting:
    def test_with_blocks_nest(self, obs_enabled):
        with obs.span("outer") as outer:
            with obs.span("middle") as middle:
                with obs.span("inner") as inner:
                    pass
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert [s.name for s in outer.walk()] == ["outer", "middle", "inner"]

    def test_children_share_trace_id(self, obs_enabled):
        with obs.span("root") as root:
            with obs.span("child") as child:
                pass
        assert child.trace_id == root.trace_id
        assert root.parent_id == ""

    def test_siblings_attach_in_order(self, obs_enabled):
        with obs.span("root") as root:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [c.name for c in root.children] == ["first", "second"]

    def test_separate_roots_are_separate_traces(self, obs_enabled):
        with obs.span("a") as a:
            pass
        with obs.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert [s.name for s in obs.tracer().traces()] == ["a", "b"]

    def test_explicit_parent_wins_over_stack(self, obs_enabled):
        root = obs.start_span("session")
        with obs.span("active"):
            with obs.span("adopted", parent=root) as adopted:
                pass
        assert adopted.parent_id == root.span_id
        root.finish()

    def test_start_span_does_not_activate(self, obs_enabled):
        root = obs.start_span("session")
        assert obs.current_span() is None
        with obs.span("stray") as stray:
            pass
        # With no active stack and no explicit parent, a new root is made.
        assert stray.trace_id != root.trace_id
        root.finish()

    def test_null_span_parent_falls_back_to_current(self, obs_enabled):
        # A NULL_SPAN handle captured while disabled must not poison
        # parenting after enable: it reads as "no explicit parent".
        with obs.span("root") as root:
            with obs.span("child", parent=NULL_SPAN) as child:
                pass
        assert child.parent_id == root.span_id


class TestThreads:
    def test_worker_attaches_via_explicit_parent(self, obs_enabled):
        with obs.span("verify") as vspan:
            seen = []

            def work(index):
                with obs.span("policy", parent=vspan, index=index) as s:
                    seen.append(s)

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert len(vspan.children) == 8
        assert all(s.parent_id == vspan.span_id for s in seen)
        assert len({s.span_id for s in seen}) == 8  # ids never collide

    def test_thread_stacks_are_independent(self, obs_enabled):
        # A span activated on the main thread is invisible to workers.
        results = []

        def work():
            results.append(obs.current_span())

        with obs.span("main-only"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert results == [None]


class TestDeterminism:
    def test_ids_are_sequential_counters(self, obs_enabled):
        with obs.span("a") as a:
            with obs.span("b") as b:
                pass
        assert a.trace_id == "T-0001"
        assert a.span_id == "S-000001"
        assert b.span_id == "S-000002"

    def test_reset_restarts_allocation(self, obs_enabled):
        with obs.span("first") as first:
            pass
        obs.tracer().reset()
        with obs.span("again") as again:
            pass
        assert (first.trace_id, first.span_id) == (again.trace_id,
                                                   again.span_id)
        assert obs.tracer().find_trace(again.trace_id) is again


class TestLifecycle:
    def test_duration_none_until_finished(self, obs_enabled):
        span = obs.start_span("open")
        assert span.duration_s is None
        span.finish()
        assert span.duration_s >= 0.0

    def test_finish_is_idempotent(self, obs_enabled):
        span = obs.start_span("once")
        span.finish()
        ended = span.ended_s
        span.finish()
        assert span.ended_s == ended

    def test_exit_finishes_even_on_exception(self, obs_enabled):
        with pytest.raises(ValueError):
            with obs.span("boom") as span:
                raise ValueError("x")
        assert span.duration_s is not None
        assert obs.current_span() is None

    def test_set_and_attrs_in_to_dict(self, obs_enabled):
        with obs.span("s", device="r1") as span:
            span.set(action="allow")
        d = span.to_dict()
        assert d["attrs"] == {"device": "r1", "action": "allow"}
        assert d["duration_ms"] >= 0.0
        assert d["children"] == []

    def test_traced_decorator(self, obs_enabled):
        @obs.traced("decorated", kind="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (root,) = obs.tracer().traces()
        assert root.name == "decorated"
        assert root.attrs == {"kind": "test"}


class TestQueries:
    def test_find_and_span_ids(self, obs_enabled):
        with obs.span("root") as root:
            with obs.span("target"):
                pass
        assert root.find("target").name == "target"
        assert root.find("missing") is None
        assert root.span_ids() == {s.span_id for s in root.walk()}

    def test_current_ids(self, obs_enabled):
        assert obs.current_ids() == ("", "")
        with obs.span("active") as span:
            assert obs.current_ids() == (span.trace_id, span.span_id)
        assert obs.current_ids() == ("", "")


class TestDisabled:
    def test_span_returns_null_span(self, obs_disabled):
        assert obs.span("anything") is NULL_SPAN
        assert obs.start_span("anything") is NULL_SPAN
        assert not isinstance(obs.span("x"), Span)

    def test_null_span_is_inert(self, obs_disabled):
        with obs.span("nothing", k=1) as span:
            span.set(more=2)
            span.finish()
        assert span.attrs == {}
        assert span.to_dict() == {}
        assert span.find("nothing") is None
        assert list(span.walk()) == []
        assert span.span_ids() == set()

    def test_nothing_is_recorded(self, obs_disabled):
        with obs.span("a"):
            with obs.span("b"):
                pass
        assert obs.tracer().traces() == []
        assert obs.current_ids() == ("", "")

    def test_render_report_handles_empty_state(self, obs_disabled):
        out = io.StringIO()
        obs.render_report(out)
        assert "traces: 0" in out.getvalue()
