"""Metrics instruments: bucket edges, thread-safety, registry semantics."""

import threading

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_MS_BUCKETS, Counter, Histogram
from repro.util.errors import ReproError


class TestCounter:
    def test_inc(self, obs_enabled):
        c = obs.counter("test.counter")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_disabled_inc_is_noop(self, obs_disabled):
        c = obs.counter("test.counter.off")
        c.inc(100)
        assert c.value == 0

    def test_threaded_increments_are_exact(self, obs_enabled):
        c = obs.counter("test.counter.threads")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_snapshot(self, obs_enabled):
        c = obs.counter("test.counter.snap", unit="events")
        c.inc(3)
        assert c.snapshot() == {"kind": "counter", "unit": "events",
                                "value": 3}


class TestGauge:
    def test_set_keeps_last_value(self, obs_enabled):
        g = obs.gauge("test.gauge")
        g.set(4)
        g.set(2)
        assert g.value == 2

    def test_disabled_set_is_noop(self, obs_disabled):
        g = obs.gauge("test.gauge.off")
        g.set(7)
        assert g.value == 0


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_bucket(self, obs_enabled):
        h = obs.histogram("test.hist.edges", buckets=(1.0, 5.0, 10.0))
        h.observe(1.0)   # == first edge: inclusive upper bound
        h.observe(5.0)   # == second edge
        h.observe(5.1)   # just above: next bucket
        assert h.bucket_counts() == [1, 1, 1, 0]

    def test_below_first_edge(self, obs_enabled):
        h = obs.histogram("test.hist.low", buckets=(1.0, 5.0))
        h.observe(0.0)
        h.observe(0.999)
        assert h.bucket_counts() == [2, 0, 0]

    def test_overflow_bucket(self, obs_enabled):
        h = obs.histogram("test.hist.over", buckets=(1.0, 5.0))
        h.observe(5.001)
        h.observe(1e9)
        assert h.bucket_counts() == [0, 0, 2]

    def test_unsorted_buckets_are_sorted(self, obs_enabled):
        h = obs.histogram("test.hist.sort", buckets=(10.0, 1.0, 5.0))
        assert h.edges == (1.0, 5.0, 10.0)

    def test_empty_buckets_rejected(self, obs_enabled):
        with pytest.raises(ReproError):
            Histogram("test.hist.empty", buckets=())

    def test_stats(self, obs_enabled):
        h = obs.histogram("test.hist.stats", buckets=(10.0,))
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 12.0
        assert snap["min"] == 2.0
        assert snap["max"] == 6.0
        assert snap["mean"] == 4.0

    def test_snapshot_bucket_shape(self, obs_enabled):
        h = obs.histogram("test.hist.shape", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(99.0)
        snap = h.snapshot()
        assert snap["buckets"] == [
            {"le": 1.0, "count": 1},
            {"le": 5.0, "count": 0},
            {"le": "inf", "count": 1},
        ]

    def test_disabled_observe_is_noop(self, obs_disabled):
        h = obs.histogram("test.hist.off")
        h.observe(1.0)
        assert h.count == 0
        assert h.snapshot()["mean"] is None

    def test_threaded_observes_are_exact(self, obs_enabled):
        h = obs.histogram("test.hist.threads", buckets=(0.5,))

        def work():
            for _ in range(500):
                h.observe(1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000
        assert h.bucket_counts() == [0, 4000]

    def test_default_buckets_cover_sub_ms_to_seconds(self):
        assert DEFAULT_MS_BUCKETS[0] <= 0.1
        assert DEFAULT_MS_BUCKETS[-1] >= 5000.0
        assert list(DEFAULT_MS_BUCKETS) == sorted(DEFAULT_MS_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self, obs_enabled):
        a = obs.counter("test.reg.same")
        b = obs.counter("test.reg.same")
        assert a is b

    def test_kind_mismatch_raises(self, obs_enabled):
        obs.counter("test.reg.kind")
        with pytest.raises(ReproError):
            obs.gauge("test.reg.kind")

    def test_get_and_names(self, obs_enabled):
        c = obs.counter("test.reg.get")
        assert obs.registry().get("test.reg.get") is c
        assert obs.registry().get("test.reg.absent") is None
        assert "test.reg.get" in obs.registry().names()

    def test_reset_zeroes_but_keeps_registrations(self, obs_enabled):
        c = obs.counter("test.reg.reset")
        c.inc(9)
        obs.registry().reset()
        assert c.value == 0
        assert obs.registry().get("test.reg.reset") is c

    def test_snapshot_is_json_ready(self, obs_enabled):
        import json

        obs.counter("test.reg.json").inc()
        json.dumps(obs.registry().snapshot())  # must not raise

    def test_instruments_sorted_by_name(self, obs_enabled):
        names = [inst.name for inst in obs.registry().instruments()]
        assert names == sorted(names)


class TestPipelineInstruments:
    """The instrumented modules register their metrics at import time."""

    def test_core_pipeline_metrics_registered(self):
        import repro.control.builder  # noqa: F401
        import repro.control.cache  # noqa: F401
        import repro.core.enforcer.scheduler  # noqa: F401
        import repro.core.enforcer.verifier  # noqa: F401
        import repro.core.twin.monitor  # noqa: F401
        import repro.dataplane.fib  # noqa: F401
        import repro.policy.verification  # noqa: F401

        names = set(obs.registry().names())
        expected = {
            "dataplane.cache.hits", "dataplane.cache.misses",
            "dataplane.build.cold", "dataplane.build.incremental",
            "dataplane.build.ms", "fib.lookups", "policy.checks",
            "policy.verify.ms", "monitor.commands", "monitor.allowed",
            "monitor.denied", "enforcer.verifications",
            "enforcer.changes.committed",
        }
        assert expected <= names

    def test_registered_instruments_carry_unit_and_help(self):
        for inst in obs.registry().instruments():
            if inst.name.startswith("test."):
                continue  # ad-hoc instruments from this test module
            assert inst.unit, inst.name
            assert inst.help, inst.name

    def test_counter_class_kind_matches_registry(self):
        assert Counter.kind == "counter"
        assert obs.counter("test.kindcheck").kind == "counter"
