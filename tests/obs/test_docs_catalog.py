"""docs/OBSERVABILITY.md's metrics catalog must match the live registry.

Instruments register at import time under their final names, so importing
**every** ``repro`` module (a :mod:`pkgutil` walk — no hand-maintained
list to forget to extend) and diffing against the parsed markdown table is
a complete consistency check — no workload needed. Run via
``make docs-check`` or ``pytest -m docs_check``.
"""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro
from repro.obs import registry

# Import the whole package for the registration side effect: any module
# anywhere in repro that registers an instrument is covered automatically.
for _info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
    if _info.name.rsplit(".", 1)[-1] == "__main__":
        continue
    importlib.import_module(_info.name)

DOCS = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"

# One catalog row: | `metric.name` | kind | unit | description |
ROW = re.compile(
    r"^\|\s*`(?P<name>[a-z0-9_.]+)`\s*"
    r"\|\s*(?P<kind>counter|gauge|histogram)\s*"
    r"\|\s*(?P<unit>[^|]+?)\s*"
    r"\|\s*(?P<desc>[^|]+?)\s*\|$",
    re.MULTILINE,
)


def documented_metrics():
    text = DOCS.read_text()
    return {
        m.group("name"): (m.group("kind"), m.group("unit"))
        for m in ROW.finditer(text)
    }


def registered_metrics():
    # Other test modules register ad-hoc `test.*` instruments in the
    # process-wide registry; the catalog covers the pipeline's only.
    return {
        inst.name: (inst.kind, inst.unit)
        for inst in registry().instruments()
        if not inst.name.startswith("test.")
    }


@pytest.mark.docs_check
class TestDocsCatalog:
    def test_catalog_parses(self):
        docs = documented_metrics()
        assert len(docs) >= 20, "catalog table missing or unparseable"

    def test_every_registered_metric_is_documented(self):
        missing = set(registered_metrics()) - set(documented_metrics())
        assert not missing, f"undocumented metrics: {sorted(missing)}"

    def test_every_documented_metric_is_registered(self):
        stale = set(documented_metrics()) - set(registered_metrics())
        assert not stale, f"documented but unregistered: {sorted(stale)}"

    def test_kinds_and_units_match(self):
        docs = documented_metrics()
        live = registered_metrics()
        for name in sorted(set(docs) & set(live)):
            assert docs[name] == live[name], (
                f"{name}: docs say {docs[name]}, code says {live[name]}"
            )

    def test_every_instrumented_span_is_documented(self):
        # The span-conventions table documents every span name the
        # instrumented source emits.
        text = DOCS.read_text()
        documented = set(re.findall(r"`([a-z]+(?:\.[a-z]+)+)`", text))
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        emitted = set()
        call = re.compile(
            r"(?:obs_trace\.|tracer\.|obs\.)?(?:span|start_span|traced)\(\s*"
            r"[\"']([a-z.]+)[\"']"
        )
        for path in src.rglob("*.py"):
            emitted.update(call.findall(path.read_text()))
        missing = emitted - documented
        assert not missing, f"undocumented spans: {sorted(missing)}"
