"""Risk classification for pending change sets (repro.core.enforcer.risk)."""

import pytest

from repro import faults, obs
from repro.config.diffing import ConfigChange
from repro.core.enforcer.risk import (
    DEFAULT_WEIGHTS,
    RiskClassifier,
    RiskConfig,
)
from repro.util import rand

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


MGMT = ConfigChange("r1", "hostname", old="r1", new="core-r1")
CREDENTIAL = ConfigChange("r2", "vty_password", old="vty-pass", new="other")
ACL = ConfigChange(
    "r3", "acl.entry_added", path="PROTECT_H3",
    new="permit ip 10.1.1.0 0.0.0.255 any",
)
ROUTING = ConfigChange(
    "r1", "interface.ospf_cost", path="Gi0/0", old=None, new=10
)


def assess(changes, **config_kwargs):
    classifier = RiskClassifier(
        config=RiskConfig(**config_kwargs) if config_kwargs else None
    )
    return classifier.assess(square_network(), changes)


class TestSectionScoring:
    def test_empty_change_set_scores_zero(self):
        assessment = assess([])
        assert assessment.score == 0.0
        assert not assessment.high
        assert assessment.cone == ()

    def test_mgmt_change_stays_low_risk(self):
        assessment = assess([MGMT])
        assert not assessment.high
        # 0.5 scalar-section weight x at most (1 + 1.0 cone fraction) < 3.0.
        assert assessment.score < RiskConfig().threshold

    def test_acl_change_is_high_risk_by_default(self):
        assessment = assess([ACL])
        assert assessment.section_score == DEFAULT_WEIGHTS["acl"]
        assert assessment.high  # 3.0 x (1 + cone) >= the 3.0 threshold

    def test_sections_rank_by_policy_proximity(self):
        # ACL > routing > credential, per the classifier's rationale.
        acl = assess([ACL], cone_weight=0.0)
        routing = assess([ROUTING], cone_weight=0.0)
        credential = assess([CREDENTIAL], cone_weight=0.0)
        assert acl.score > routing.score > credential.score

    def test_counts_accumulate_per_category(self):
        one = assess([CREDENTIAL], cone_weight=0.0)
        two = assess(
            [CREDENTIAL,
             ConfigChange("r3", "snmp_community", old="private", new="x")],
            cone_weight=0.0,
        )
        assert two.section_score == pytest.approx(2 * one.section_score)

    def test_weight_overrides_apply(self):
        assessment = assess([MGMT], weights={"scalar": 50.0}, cone_weight=0.0)
        assert assessment.section_score == 50.0
        assert assessment.high


class TestConeSignal:
    def test_routing_change_has_a_nonempty_cone(self):
        assessment = assess([ROUTING])
        assert assessment.cone  # an OSPF cost change influences the ring
        assert 0.0 < assessment.cone_fraction <= 1.0
        assert assessment.score > assessment.section_score

    def test_cone_weight_zero_disables_the_signal(self):
        assessment = assess([ROUTING], cone_weight=0.0)
        assert assessment.cone == ()
        assert assessment.cone_fraction == 0.0
        assert assessment.score == assessment.section_score

    def test_cone_amplifies_rather_than_replaces(self):
        flat = assess([ROUTING], cone_weight=0.0)
        amplified = assess([ROUTING], cone_weight=1.0)
        assert amplified.score >= flat.score
        assert amplified.score <= flat.score * 2.0  # fraction is <= 1


class TestVerdict:
    def test_threshold_is_inclusive(self):
        assessment = assess([ROUTING], threshold=0.0)
        assert assessment.high
        relaxed = assess([ROUTING], threshold=1e9)
        assert not relaxed.high

    def test_summary_names_the_level(self):
        assert "risk HIGH" in assess([ACL]).summary()
        assert "risk low" in assess([MGMT]).summary()
        assert "threshold" in assess([MGMT]).summary()

    def test_reasons_list_contributions(self):
        assessment = assess([ACL, MGMT])
        text = " ".join(assessment.reasons)
        assert "acl change" in text
        assert "scalar change" in text

    def test_assessment_is_deterministic(self):
        first = assess([ROUTING, ACL])
        second = assess([ROUTING, ACL])
        assert first == second
