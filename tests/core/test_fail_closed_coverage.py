"""Edge-of-the-envelope fail-closed coverage for pre-existing surfaces.

Three boundaries the earlier suites walk up to but never stand on:
replicated-audit reads at *exactly* the quorum count, approval grants
used at *exactly* their expiry instant, and the approval gate's
guarantee that it refuses before a single journal byte exists.
"""

from dataclasses import replace

import pytest

from repro import faults, obs
from repro.config.apply import apply_changes
from repro.config.diffing import diff_networks
from repro.config.serializer import serialize_config
from repro.core.approvals import ApprovalConfig, ApprovalCoordinator
from repro.core.enforcer.audit import ReplicatedAuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.risk import RiskAssessment
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import ApprovalRequiredError, AuditQuorumError

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def forge(replica):
    """Rewrite the replica's newest record without its key."""
    newest = replica.records[-1]
    replica.records[-1] = replace(newest, outcome="forged")


def five_replica_trail():
    trail = ReplicatedAuditTrail(
        SimulatedEnclave(), clock=SimulatedClock(), replicas=5, quorum=3,
    )
    for index in range(2):
        trail.record(
            actor="S-0001", device="r1", command=f"command-{index}",
            action="monitor.execute", resource="device:r1", allowed=True,
            outcome="ok",
        )
    return trail


class TestReadsAtExactlyQuorum:
    def test_exactly_quorum_agreeing_still_serves(self):
        # 5 replicas, quorum 3, two forged: the agreeing set is exactly
        # the quorum — degraded, but reads keep serving.
        trail = five_replica_trail()
        forge(trail.replicas[0])
        forge(trail.replicas[1])
        verdict = trail.cross_check()
        assert verdict.status == "degraded"
        assert verdict.agreeing == 3 == trail.quorum
        assert len(trail.records) == 2
        assert len(trail.query(actor="S-0001")) == 2
        assert trail.export()

    def test_one_below_quorum_fails_every_read_closed(self):
        trail = five_replica_trail()
        for index in range(3):
            forge(trail.replicas[index])
        verdict = trail.cross_check()
        assert verdict.status == "lost"
        assert verdict.agreeing == 2 < trail.quorum
        with pytest.raises(AuditQuorumError):
            trail.records
        with pytest.raises(AuditQuorumError):
            trail.query(actor="S-0001")
        with pytest.raises(AuditQuorumError):
            trail.export()


HIGH_RISK = RiskAssessment(
    score=5.0, threshold=3.0, section_score=5.0,
    cone=("r1", "r3"), cone_fraction=0.5, reasons=(),
)


def _square_changes():
    production = square_network()
    modified = production.copy()
    modified.config("r1").interface("Gi0/0").description = "first"
    modified.config("r3").acls["PROTECT_H3"].entries.reverse()
    changes = diff_networks(production.configs, modified.configs)
    expected = production.copy()
    apply_changes(expected.configs, changes)
    return production, changes, _serialized(expected)


def _serialized(network):
    return {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }


def _grant(clock, changes, ttl_s=3600.0):
    coord = ApprovalCoordinator(ApprovalConfig(grant_ttl_s=ttl_s), clock=clock)
    request = coord.require("S-0001", changes, HIGH_RISK)
    coord.collect(request)
    assert request.granted
    return request


class TestGrantAtExpiryInstant:
    def test_push_exactly_at_expiry_fails_closed(self):
        # now == expires_at must already deny: the boundary belongs to
        # the refusal side, never the grant side.
        production, changes, _ = _square_changes()
        before = _serialized(production)
        clock = SimulatedClock()
        request = _grant(clock, changes, ttl_s=900.0)
        clock.advance(request.expires_at - clock.now)
        assert clock.now == request.expires_at
        scheduler = ChangeScheduler()
        with pytest.raises(ApprovalRequiredError, match="expired"):
            scheduler.push(
                production, changes, risk=HIGH_RISK, approval=request,
                clock=clock,
            )
        assert _serialized(production) == before
        assert scheduler.last_journal is None  # refused pre-journal

    def test_push_one_tick_before_expiry_commits(self):
        production, changes, expected = _square_changes()
        clock = SimulatedClock()
        request = _grant(clock, changes, ttl_s=900.0)
        clock.advance(request.expires_at - clock.now - 0.001)
        report = ChangeScheduler().push(
            production, changes, risk=HIGH_RISK, approval=request,
            clock=clock,
        )
        assert report.status == "committed"
        assert _serialized(production) == expected


class TestRefusalPrecedesTheJournal:
    def test_missing_approval_leaves_no_journal_bytes(self):
        production, changes, _ = _square_changes()
        before = _serialized(production)
        scheduler = ChangeScheduler()
        with pytest.raises(ApprovalRequiredError, match="no quorum approval"):
            scheduler.push(production, changes, risk=HIGH_RISK)
        assert scheduler.last_journal is None
        assert _serialized(production) == before

    def test_stale_grant_leaves_no_journal_bytes(self):
        production, changes, _ = _square_changes()
        clock = SimulatedClock()
        request = _grant(clock, changes, ttl_s=10.0)
        clock.advance(3600.0)  # parked overnight
        scheduler = ChangeScheduler()
        with pytest.raises(ApprovalRequiredError, match="expired"):
            scheduler.push(
                production, changes, risk=HIGH_RISK, approval=request,
                clock=clock,
            )
        assert scheduler.last_journal is None
