"""Staged canary rollouts: plans, probes, breakers, quarantine, resume."""

import ipaddress

import pytest

from repro import faults, obs
from repro.config.apply import apply_changes
from repro.config.diffing import diff_networks
from repro.config.model import StaticRoute
from repro.config.serializer import serialize_config
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.rollout import (
    CircuitBreaker,
    HealthProbe,
    RolloutConfig,
    RolloutPlan,
)
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.faults.registry import Rule
from repro.util import rand
from repro.util.errors import PushCrashed

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def _serialized(network):
    return {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }


def _changes(mutate):
    production = square_network()
    modified = production.copy()
    mutate(modified)
    return production, diff_networks(production.configs, modified.configs)


def _three_devices(net):
    """Same-category changes on three devices -> three per-device waves."""
    net.config("r1").interface("Gi0/0").description = "wave-a"
    net.config("r2").interface("Gi0/0").description = "wave-b"
    net.config("r3").interface("Gi0/0").description = "wave-c"


def _two_categories_one_device(net):
    """An interface change and a static route on r1 -> one wave, two
    batches (the next hop is r2's live p2p address, so probes stay
    healthy)."""
    net.config("r1").interface("Gi0/0").description = "first"
    net.config("r1").static_routes.append(StaticRoute(
        prefix=ipaddress.ip_network("10.99.0.0/16"),
        next_hop=ipaddress.ip_address("10.0.12.2"),
    ))


def _expected_after(production, changes):
    expected = production.copy()
    apply_changes(expected.configs, changes)
    return _serialized(expected)


def _marker_kinds(journal):
    return [entry.kind for entry in journal.entries]


class TestRolloutPlan:
    def _batches(self, mutate):
        production, changes = _changes(mutate)
        return ChangeScheduler().schedule(changes)

    def test_flat_batches_is_a_permutation(self):
        batches = self._batches(_three_devices)
        plan = RolloutPlan.from_batches(batches, RolloutConfig())
        original = sorted(
            repr(change) for batch in batches for change in batch
        )
        planned = sorted(
            repr(change) for batch in plan.flat_batches for change in batch
        )
        assert planned == original

    def test_default_is_one_device_per_wave(self):
        plan = RolloutPlan.from_batches(
            self._batches(_three_devices), RolloutConfig()
        )
        assert [wave.devices for wave in plan.waves] == [
            ("r1",), ("r2",), ("r3",),
        ]

    def test_per_device_change_order_is_preserved(self):
        batches = self._batches(_two_categories_one_device)
        assert len(batches) == 2  # two categories
        plan = RolloutPlan.from_batches(batches, RolloutConfig())
        assert len(plan.waves) == 1
        flat = [
            change for batch in plan.flat_batches for change in batch
        ]
        scheduled = [change for batch in batches for change in batch]
        assert [repr(c) for c in flat] == [repr(c) for c in scheduled]

    def test_canary_devices_lead(self):
        plan = RolloutPlan.from_batches(
            self._batches(_three_devices),
            RolloutConfig(canary=("r3",)),
        )
        assert plan.device_order == ["r3", "r1", "r2"]
        assert plan.waves[0].devices == ("r3",)

    def test_wave_size_chunks_devices(self):
        plan = RolloutPlan.from_batches(
            self._batches(_three_devices), RolloutConfig(wave_size=2)
        )
        assert [wave.devices for wave in plan.waves] == [
            ("r1", "r2"), ("r3",),
        ]

    def test_wave_plan_roundtrips_to_plain_data(self):
        plan = RolloutPlan.from_batches(
            self._batches(_three_devices), RolloutConfig()
        )
        exported = plan.wave_plan()
        assert [entry["index"] for entry in exported] == [0, 1, 2]
        assert all(
            isinstance(entry["batch_indices"], list) for entry in exported
        )


class TestStagedPush:
    def test_clean_staged_push_matches_monolithic_result(self):
        production, changes = _changes(_three_devices)
        expected = _expected_after(production, changes)
        trail = AuditTrail(SimulatedEnclave())
        report = ChangeScheduler().push(
            production, changes, audit=trail, rollout=RolloutConfig()
        )
        assert report.committed
        assert report.waves == 3
        assert len(report.probes) == 3
        assert all(probe.healthy for probe in report.probes)
        assert _serialized(production) == expected

    def test_wave_markers_journaled_in_order(self):
        # probe_parallel=False pins the strict apply-probe-commit
        # interleaving; the grouped layout is covered in
        # TestParallelProbes.
        production, changes = _changes(_three_devices)
        report = ChangeScheduler().push(
            production, changes,
            rollout=RolloutConfig(probe_parallel=False),
        )
        kinds = _marker_kinds(report.journal)
        assert kinds == [
            "intent",
            "wave-start", "batch-start", "batch-committed", "probe",
            "wave-committed",
            "wave-start", "batch-start", "batch-committed", "probe",
            "wave-committed",
            "wave-start", "batch-start", "batch-committed", "probe",
            "wave-committed",
            "done",
        ]
        assert report.journal.committed_waves == {0, 1, 2}

    def test_every_wave_writes_an_allowed_audit_record(self):
        production, changes = _changes(_three_devices)
        trail = AuditTrail(SimulatedEnclave())
        ChangeScheduler().push(
            production, changes, audit=trail, actor="SES-9",
            rollout=RolloutConfig(),
        )
        waves = [r for r in trail.records if r.action == "enforcer.wave"]
        assert [r.resource for r in waves] == [
            "production:wave:0", "production:wave:1", "production:wave:2",
        ]
        assert all(r.allowed and r.actor == "SES-9" for r in waves)
        assert trail.verify()

    def test_probe_failure_quarantines_wave_and_rolls_back(self):
        production, changes = _changes(_three_devices)
        pre_push = _serialized(production)
        trail = AuditTrail(SimulatedEnclave())
        faults.arm({"rollout.wave.probe_fail": Rule(nth=2)}, seed=7)
        report = ChangeScheduler().push(
            production, changes, audit=trail, rollout=RolloutConfig()
        )
        assert report.status == "rolled-back"
        assert "HealthProbeError" in report.rollback_reason
        assert report.quarantined == ["r2"]
        assert _serialized(production) == pre_push
        # Wave 0 committed healthy, wave 1 failed; both are on the trail,
        # and the rollback record names the quarantine.
        waves = [r for r in trail.records if r.action == "enforcer.wave"]
        assert [(r.resource, r.allowed) for r in waves] == [
            ("production:wave:0", True), ("production:wave:1", False),
        ]
        rollback = next(
            r for r in trail.records if r.action == "enforcer.rollback"
        )
        assert "quarantined: r2" in rollback.command
        assert trail.verify()

    def test_breaker_trip_quarantines_the_flapping_device(self):
        production, changes = _changes(_three_devices)
        pre_push = _serialized(production)
        faults.arm(
            {"rollout.device.flap": Rule(probability=1.0, times=99)}, seed=7
        )
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig(flap_budget=2)
        )
        assert report.status == "rolled-back"
        assert "CircuitOpenError" in report.rollback_reason
        assert report.quarantined == ["r1"]
        assert _serialized(production) == pre_push

    def test_flaps_within_budget_retry_to_commit(self):
        production, changes = _changes(_three_devices)
        expected = _expected_after(production, changes)
        faults.arm({"rollout.device.flap": Rule(nth=1, times=2)}, seed=7)
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig()
        )
        assert report.committed
        assert not report.quarantined
        assert _serialized(production) == expected


def _ospf_costs_two_devices(net):
    """Routing-relevant changes on r1 and r3 -> overlapping SPF cones."""
    net.config("r1").interface("Gi0/0").ospf_cost = 42
    net.config("r3").interface("Gi0/1").ospf_cost = 42


class TestParallelProbes:
    """Disjoint-cone waves apply first, then probe concurrently."""

    def test_grouped_push_matches_sequential_result(self):
        production, changes = _changes(_three_devices)
        expected = _expected_after(production, changes)
        obs.enable()
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig()
        )
        assert report.committed
        assert report.waves == 3
        assert [probe.healthy for probe in report.probes] == [True] * 3
        assert _serialized(production) == expected
        parallel = obs.registry().get("rollout.probe.parallel")
        assert parallel is not None and parallel.value == 3

    def test_grouped_marker_layout(self):
        # All three cones are disjoint (description-only changes), so the
        # group applies every wave before any probe; verdicts still land
        # strictly in wave order.
        production, changes = _changes(_three_devices)
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig()
        )
        kinds = _marker_kinds(report.journal)
        assert kinds == [
            "intent",
            "wave-start", "batch-start", "batch-committed",
            "wave-start", "batch-start", "batch-committed",
            "wave-start", "batch-start", "batch-committed",
            "probe", "wave-committed",
            "probe", "wave-committed",
            "probe", "wave-committed",
            "done",
        ]
        assert report.journal.committed_waves == {0, 1, 2}

    def test_overlapping_cones_fall_back_to_sequential(self):
        # ospf_cost edits widen each wave's cone to the whole SPF region,
        # so no two waves may group and the strict interleaving returns.
        production, changes = _changes(_ospf_costs_two_devices)
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig()
        )
        kinds = _marker_kinds(report.journal)
        assert kinds == [
            "intent",
            "wave-start", "batch-start", "batch-committed", "probe",
            "wave-committed",
            "wave-start", "batch-start", "batch-committed", "probe",
            "wave-committed",
            "done",
        ]
        assert report.committed

    def test_probe_failure_in_group_quarantines_correct_wave(self):
        # The probe_fail fault fires from the scheduler thread in wave
        # order even when probes themselves run concurrently, so nth=2
        # deterministically fails wave 1 — exactly like the sequential
        # path — and the whole group rolls back.
        production, changes = _changes(_three_devices)
        pre_push = _serialized(production)
        faults.arm({"rollout.wave.probe_fail": Rule(nth=2)}, seed=7)
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig()
        )
        assert report.status == "rolled-back"
        assert "HealthProbeError" in report.rollback_reason
        assert report.quarantined == ["r2"]
        assert _serialized(production) == pre_push
        # Wave 0's probe still ran and committed before the failure.
        assert report.journal.committed_waves == {0}

    def test_unhealthy_parallel_probe_rolls_back(self):
        # A real (not fault-injected) probe failure: r2's wave installs a
        # static route to a next hop nobody owns. The probes run
        # concurrently, yet the verdict quarantines exactly r2's wave.
        production = square_network()
        modified = production.copy()
        modified.config("r1").interface("Gi0/0").description = "wave-a"
        modified.config("r2").static_routes.append(StaticRoute(
            prefix=ipaddress.ip_network("10.99.0.0/16"),
            next_hop=ipaddress.ip_address("10.0.23.99"),
        ))
        modified.config("r3").interface("Gi0/0").description = "wave-c"
        changes = diff_networks(production.configs, modified.configs)
        pre_push = _serialized(production)
        report = ChangeScheduler().push(
            production, changes, rollout=RolloutConfig()
        )
        assert report.status == "rolled-back"
        assert report.quarantined == ["r2"]
        assert _serialized(production) == pre_push


class TestHealthProbe:
    def test_probe_reports_newly_dead_route(self):
        production = square_network()
        probe = HealthProbe.for_push(production, config=RolloutConfig())
        # A wave "applied" a static route to a next hop nobody owns.
        production.config("r1").static_routes.append(StaticRoute(
            prefix=ipaddress.ip_network("10.99.0.0/16"),
            next_hop=ipaddress.ip_address("10.0.12.99"),
        ))
        result = probe.check(production, {"r1"}, wave_index=0)
        assert not result.healthy
        assert any("10.0.12.99" in dead for dead in result.dead_routes)
        assert "UNHEALTHY" in result.summary()

    def test_probe_ignores_preexisting_dead_routes(self):
        production = square_network()
        production.config("r1").static_routes.append(StaticRoute(
            prefix=ipaddress.ip_network("10.98.0.0/16"),
            next_hop=ipaddress.ip_address("10.0.12.99"),
        ))
        probe = HealthProbe.for_push(production, config=RolloutConfig())
        production.config("r2").interface("Gi0/0").description = "wave"
        result = probe.check(production, {"r2"}, wave_index=0)
        assert result.healthy

    def test_live_next_hop_probes_healthy(self):
        production = square_network()
        probe = HealthProbe.for_push(production, config=RolloutConfig())
        production.config("r1").static_routes.append(StaticRoute(
            prefix=ipaddress.ip_network("10.99.0.0/16"),
            next_hop=ipaddress.ip_address("10.0.12.2"),
        ))
        result = probe.check(production, {"r1"}, wave_index=0)
        assert result.healthy
        assert "healthy" in result.summary()


class TestCircuitBreaker:
    def test_trips_exactly_at_budget(self):
        breaker = CircuitBreaker(budget=2)
        assert not breaker.record("r1")
        assert not breaker.tripped("r1")
        assert breaker.record("r1")  # second failure spends the budget
        assert breaker.tripped("r1")
        assert not breaker.tripped("r2")

    def test_counts_are_per_device(self):
        breaker = CircuitBreaker(budget=2)
        breaker.record("r1")
        breaker.record("r2")
        assert not breaker.tripped("r1")
        assert not breaker.tripped("r2")


class TestResumeBoundaries:
    """resume() when the journal ends exactly on a batch/wave marker."""

    def test_resume_when_journal_ends_on_wave_start(self):
        # MIDWAVE nth=2 crashes at wave 1's first batch: the journal's
        # last markers are `wave-committed 0`, `wave-start 1` — wave 0 is
        # fully committed, wave 1 never mutated production.
        # (probe_parallel=False: under grouped probing wave 0 would not
        # yet be committed when wave 1's apply crashes.)
        production, changes = _changes(_three_devices)
        expected = _expected_after(production, changes)
        trail = AuditTrail(SimulatedEnclave())
        faults.arm({"rollout.crash.midwave": Rule(nth=2)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(
                production, changes, audit=trail,
                rollout=RolloutConfig(probe_parallel=False),
            )
        journal = excinfo.value.journal
        assert _marker_kinds(journal)[-2:] == ["wave-committed", "wave-start"]
        assert journal.committed_waves == {0}
        assert journal.committed == {0}
        faults.disarm()

        report = scheduler.resume(production, journal, audit=trail)
        assert report.resumed
        assert report.committed
        assert _serialized(production) == expected
        # Wave 0 was not replayed: batch 0 has exactly one start/commit
        # marker pair, and its probe ran exactly once.
        kinds = _marker_kinds(journal)
        assert kinds.count("batch-start") == 3
        assert kinds.count("batch-committed") == 3
        assert kinds.count("probe") == 3
        # Resume re-probed waves 1 and 2, so every wave has an allowed
        # audit record.
        waves = [
            r.resource for r in trail.records
            if r.action == "enforcer.wave" and r.allowed
        ]
        assert waves == [
            "production:wave:0", "production:wave:1", "production:wave:2",
        ]

    def test_resume_when_journal_ends_on_batch_committed(self):
        # One wave, two batches: MIDWAVE nth=2 crashes between the wave's
        # batches, so the journal ends exactly on `batch-committed 0` —
        # inside a wave, with no wave-committed marker and no probe yet.
        production, changes = _changes(_two_categories_one_device)
        expected = _expected_after(production, changes)
        faults.arm({"rollout.crash.midwave": Rule(nth=2)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(production, changes, rollout=RolloutConfig())
        journal = excinfo.value.journal
        assert _marker_kinds(journal)[-1] == "batch-committed"
        assert journal.committed == {0}
        assert journal.committed_waves == set()
        faults.disarm()

        report = scheduler.resume(production, journal)
        assert report.resumed
        assert report.committed
        assert _serialized(production) == expected
        # Batch 0 was skipped on replay (exactly one start/commit pair);
        # the wave's probe ran exactly once, after the replayed batch 1.
        kinds = _marker_kinds(journal)
        assert kinds.count("batch-start") == 2
        assert kinds.count("batch-committed") == 2
        assert kinds.count("probe") == 1
        assert report.waves == 1

    def test_resume_mid_batch_restores_then_reprobes(self):
        # The generic push.crash fault fires mid-batch: production is
        # half-mutated inside wave 0. resume() must restore the pre-batch
        # snapshot, replay the batch, and still run the wave's probe.
        production, changes = _changes(_three_devices)
        expected = _expected_after(production, changes)
        faults.arm({"push.crash": Rule(nth=2)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(production, changes, rollout=RolloutConfig())
        journal = excinfo.value.journal
        assert _marker_kinds(journal)[-1] == "batch-start"
        faults.disarm()

        report = scheduler.resume(production, journal)
        assert report.committed
        assert _serialized(production) == expected
        assert "batch-restored" in _marker_kinds(journal)
        assert len(report.probes) >= 1
