import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.privilege.ast import (
    ActionPattern,
    PrivilegeRule,
    PrivilegeSpec,
    ResourcePattern,
)
from repro.util.errors import PrivilegeError


class TestActionPattern:
    def test_exact(self):
        assert ActionPattern("view.route").matches("view.route")
        assert not ActionPattern("view.route").matches("view.config")

    def test_trailing_wildcard_absorbs_suffix(self):
        assert ActionPattern("config.*").matches("config.acl.entry")
        assert ActionPattern("config.*").matches("config.vlan")
        assert not ActionPattern("config.*").matches("view.config")

    def test_star_matches_everything(self):
        assert ActionPattern("*").matches("anything.at.all")

    def test_mid_wildcard_matches_one_segment(self):
        assert ActionPattern("config.*.entry").matches("config.acl.entry")
        assert not ActionPattern("config.*.entry").matches("config.acl")

    def test_prefix_is_not_a_match(self):
        assert not ActionPattern("config").matches("config.acl")


class TestResourcePattern:
    def test_device_only(self):
        assert ResourcePattern("r1").matches("r1")
        assert not ResourcePattern("r1").matches("r1:Gi0/0")

    def test_device_wildcard(self):
        assert ResourcePattern("r1:*").matches("r1:Gi0/0")
        assert ResourcePattern("r1:*").matches("r1:acl:FW")
        assert not ResourcePattern("r1:*").matches("r2:Gi0/0")

    def test_acl_scoped(self):
        assert ResourcePattern("r1:acl:*").matches("r1:acl:FW")
        assert not ResourcePattern("r1:acl:*").matches("r1:Gi0/0")


class TestPrivilegeSpec:
    def test_default_deny(self):
        spec = PrivilegeSpec()
        decision = spec.evaluate("view.route", "r1")
        assert not decision.allowed
        assert decision.by_default

    def test_first_match_wins(self):
        spec = PrivilegeSpec()
        spec.add_rule("deny", "config.*", "r1")
        spec.add_rule("allow", "config.*", "*")
        assert not spec.allows("config.acl.entry", "r1")
        assert spec.allows("config.acl.entry", "r2")

    def test_prepend_takes_precedence(self):
        spec = PrivilegeSpec()
        spec.add_rule("allow", "*", "*")
        spec.prepend_rule("deny", "config.credential", "*")
        assert not spec.allows("config.credential", "r1")
        assert spec.allows("view.config", "r1")

    def test_mode_transitions_always_allowed(self):
        assert PrivilegeSpec.deny_all().allows("mode.transition", "r1")

    def test_require_raises_with_context(self):
        spec = PrivilegeSpec.deny_all()
        with pytest.raises(PrivilegeError) as excinfo:
            spec.require("config.acl.entry", "r1:acl:FW")
        assert excinfo.value.action == "config.acl.entry"
        assert excinfo.value.resource == "r1:acl:FW"

    def test_allow_all(self):
        spec = PrivilegeSpec.allow_all()
        assert spec.allows("config.credential", "anything")

    def test_bad_effect_rejected(self):
        with pytest.raises(PrivilegeError):
            PrivilegeRule.make("maybe", "*", "*")

    def test_bad_default_rejected(self):
        with pytest.raises(PrivilegeError):
            PrivilegeSpec(default="maybe")

    def test_decision_str(self):
        spec = PrivilegeSpec()
        spec.add_rule("allow", "view.*", "r1")
        assert "allow view.route on r1" in str(spec.evaluate("view.route", "r1"))


action_names = st.from_regex(r"[a-z]+(\.[a-z]+){1,2}", fullmatch=True)
resources = st.from_regex(r"[a-z0-9]+(:[A-Za-z0-9/]+){0,2}", fullmatch=True)


class TestSpecProperties:
    @given(action_names, resources)
    @settings(max_examples=100, deadline=None)
    def test_deny_all_denies_everything(self, action, resource):
        if action.startswith("mode."):
            return
        assert not PrivilegeSpec.deny_all().allows(action, resource)

    @given(action_names, resources)
    @settings(max_examples=100, deadline=None)
    def test_allow_all_allows_everything(self, action, resource):
        assert PrivilegeSpec.allow_all().allows(action, resource)

    @given(action_names, resources)
    @settings(max_examples=100, deadline=None)
    def test_appending_rules_never_flips_earlier_matches(self, action, resource):
        # Monotonicity of first-match: a decision made by an existing rule
        # is unaffected by appended rules.
        spec = PrivilegeSpec()
        spec.add_rule("allow", "view.*", "*")
        before = spec.evaluate(action, resource)
        spec.add_rule("deny", "*", "*")
        after = spec.evaluate(action, resource)
        if before.rule is not None:
            assert before.allowed == after.allowed

    @given(action_names, resources)
    @settings(max_examples=100, deadline=None)
    def test_exact_rule_always_matches_itself(self, action, resource):
        spec = PrivilegeSpec()
        spec.add_rule("allow", action, resource)
        assert spec.allows(action, resource)


class TestPatternEdgeCases:
    def test_empty_action_never_matches_nonempty_pattern(self):
        assert not ActionPattern("view.route").matches("")

    def test_multi_segment_wildcards(self):
        pattern = ResourcePattern("*:acl:*")
        assert pattern.matches("r1:acl:FW")
        assert not pattern.matches("r1:Gi0/0")

    def test_resource_with_slash_in_interface_name(self):
        # Interface names contain '/', which must not act as a separator.
        assert ResourcePattern("r1:Gi0/0").matches("r1:Gi0/0")
        assert ResourcePattern("r1:*").matches("r1:Gi0/0")

    def test_pattern_longer_than_value(self):
        assert not ActionPattern("a.b.c").matches("a.b")

    def test_value_longer_than_pattern(self):
        assert not ActionPattern("a.b").matches("a.b.c")
