"""Quorum approvals for high-risk changes (repro.core.approvals).

Covers the state machine in isolation, the scheduler's fail-closed gate,
crash recovery at the approval boundary (the journal's ``approval`` marker
proves the quorum round concluded — resume never re-requests it), and the
Heimdall end-to-end wiring including session-level approval progress.
"""

import pytest

from repro import faults, obs
from repro.config.apply import apply_changes
from repro.config.diffing import ConfigChange, diff_networks
from repro.config.serializer import serialize_config
from repro.core.approvals import (
    APPROVED,
    MEDIATED,
    PROPOSED,
    REJECTED,
    ApprovalConfig,
    ApprovalCoordinator,
    change_fingerprint,
)
from repro.core.enforcer.audit import AuditTrail, ReplicatedAuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.risk import RiskAssessment, RiskConfig
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.core.heimdall import Heimdall
from repro.core.sessions import SessionManager
from repro.faults.registry import Rule
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import ApprovalRequiredError, PushCrashed

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


CHANGES = [
    ConfigChange("r1", "interface.ospf_cost", path="Gi0/0", old=None, new=10),
    ConfigChange("r2", "interface.description", path="Gi0/0",
                 old=None, new="uplink"),
]

HIGH_RISK = RiskAssessment(
    score=5.0, threshold=3.0, section_score=5.0,
    cone=("r1", "r2"), cone_fraction=0.5, reasons=(),
)


def coordinator(audit=None, clock=None, **config_kwargs):
    return ApprovalCoordinator(
        ApprovalConfig(**config_kwargs), audit=audit, clock=clock,
    )


def run_round(coord, changes=CHANGES):
    request = coord.require("S-0001", changes, HIGH_RISK)
    return coord.collect(request)


class TestFingerprint:
    def test_order_independent(self):
        assert change_fingerprint(CHANGES) == (
            change_fingerprint(list(reversed(CHANGES)))
        )

    def test_different_change_sets_differ(self):
        other = CHANGES[:1]
        assert change_fingerprint(CHANGES) != change_fingerprint(other)

    def test_covers_binds_to_the_exact_set(self):
        coord = coordinator()
        request = coord.require("S-0001", CHANGES, HIGH_RISK)
        assert request.covers(CHANGES)
        assert not request.covers(CHANGES[:1])


class TestStateMachine:
    def test_clean_quorum_approves(self):
        request = run_round(coordinator())
        assert request.state == APPROVED
        assert request.granted and request.terminal
        assert request.history == [PROPOSED, APPROVED]
        assert set(request.votes.values()) == {"approve"}
        assert "quorum 3/2 approved" in request.reason

    def test_unanimous_veto_rejects(self):
        votes = {name: "reject" for name in ApprovalConfig().approvers}
        request = run_round(coordinator(votes=votes))
        assert request.state == REJECTED
        assert not request.granted
        assert "vetoed by" in request.reason

    def test_conflicting_votes_mediate_to_the_majority(self):
        request = run_round(coordinator(votes={"admin-2": "reject"}))
        assert request.state == APPROVED
        assert MEDIATED in request.history
        assert "mediated: 2 approve vs 1 reject" in request.reason

    def test_mediation_denies_below_quorum(self):
        request = run_round(
            coordinator(quorum=3, votes={"admin-2": "reject"})
        )
        assert request.state == REJECTED
        assert MEDIATED in request.history

    def test_timeout_denies_by_default_and_charges_the_clock(self):
        clock = SimulatedClock()
        faults.arm({"approvals.timeout": Rule(nth=1)}, seed=7)
        request = run_round(coordinator(clock=clock, timeout_s=600.0))
        assert request.state == REJECTED
        assert request.timed_out
        assert "denied by default" in request.reason
        assert clock.now == 600.0

    def test_unresponsive_quorum_times_out(self):
        faults.arm(
            {"approvals.approver.crash": Rule(probability=1.0, times=99)},
            seed=7,
        )
        request = run_round(coordinator())
        assert request.state == REJECTED
        assert request.timed_out
        assert len(request.crashed) == 3
        assert request.votes == {}

    def test_quorum_survives_a_single_crashed_approver(self):
        faults.arm({"approvals.approver.crash": Rule(nth=1)}, seed=7)
        request = run_round(coordinator())
        assert request.state == APPROVED
        assert request.crashed == ["admin-1"]
        assert len(request.votes) == 2

    def test_votes_below_quorum_count_as_timeout(self):
        # quorum 3 but one approver crashed: 2 approvals can never reach
        # M-of-N, which is a quorum timeout, not a grant.
        faults.arm({"approvals.approver.crash": Rule(nth=1)}, seed=7)
        request = run_round(coordinator(quorum=3))
        assert request.state == REJECTED
        assert request.timed_out

    def test_break_glass_overrides_a_timeout_flagged(self):
        faults.arm({"approvals.timeout": Rule(nth=1)}, seed=7)
        request = run_round(coordinator(break_glass_actor="oncall"))
        assert request.state == APPROVED
        assert request.break_glass
        assert "break-glass override by oncall" in request.reason
        assert "break-glass" in request.summary()

    def test_quorum_shape_validated(self):
        with pytest.raises(ValueError):
            ApprovalConfig(quorum=0)
        with pytest.raises(ValueError):
            ApprovalConfig(quorum=4)


class TestAuditAndProgress:
    def test_every_transition_is_on_the_record(self):
        trail = AuditTrail(SimulatedEnclave(), clock=SimulatedClock())
        request = run_round(coordinator(audit=trail))
        resource = f"approval:{request.request_id}"
        actions = [
            record.action for record in trail.records
            if record.resource == resource
        ]
        assert actions == [
            "approvals.proposed",
            "approvals.vote", "approvals.vote", "approvals.vote",
            "approvals.decision",
        ]
        assert trail.verify()

    def test_break_glass_record_names_the_actor(self):
        trail = AuditTrail(SimulatedEnclave(), clock=SimulatedClock())
        faults.arm({"approvals.timeout": Rule(nth=1)}, seed=7)
        run_round(coordinator(audit=trail, break_glass_actor="oncall"))
        (record,) = trail.query(action_prefix="approvals.break_glass")
        assert record.actor == "oncall"
        assert "flagged" in record.outcome

    def test_listener_sees_every_state(self):
        coord = coordinator(votes={"admin-2": "reject"})
        events = []
        coord.listener = events.append
        run_round(coord)
        assert [event["state"] for event in events] == [
            PROPOSED, MEDIATED, APPROVED,
        ]
        assert events[-1]["quorum"] == 2
        assert events[-1]["actor"] == "S-0001"


def _square_changes():
    production = square_network()
    modified = production.copy()
    modified.config("r1").interface("Gi0/0").description = "first"
    modified.config("r3").acls["PROTECT_H3"].entries.reverse()
    changes = diff_networks(production.configs, modified.configs)
    expected = production.copy()
    apply_changes(expected.configs, changes)
    return production, changes, _serialized(expected)


def _serialized(network):
    return {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }


class TestSchedulerGate:
    def test_high_risk_without_approval_fails_closed(self):
        production, changes, _ = _square_changes()
        before = _serialized(production)
        scheduler = ChangeScheduler()
        with pytest.raises(ApprovalRequiredError, match="no quorum approval"):
            scheduler.push(production, changes, risk=HIGH_RISK)
        assert _serialized(production) == before
        assert scheduler.last_journal is None  # nothing was even journaled

    def test_rejected_approval_refused(self):
        production, changes, _ = _square_changes()
        votes = {name: "reject" for name in ApprovalConfig().approvers}
        coord = coordinator(votes=votes)
        request = coord.require("S-0001", changes, HIGH_RISK)
        coord.collect(request)
        with pytest.raises(ApprovalRequiredError, match="not granted"):
            ChangeScheduler().push(
                production, changes, risk=HIGH_RISK, approval=request,
            )

    def test_approval_for_another_change_set_refused(self):
        production, changes, _ = _square_changes()
        request = run_round(coordinator(), changes=CHANGES)
        assert request.granted
        with pytest.raises(ApprovalRequiredError, match="different"):
            ChangeScheduler().push(
                production, changes, risk=HIGH_RISK, approval=request,
            )

    def test_granted_approval_pushes_and_journals_the_grant(self):
        production, changes, expected = _square_changes()
        request = run_round(coordinator(), changes=changes)
        report = ChangeScheduler().push(
            production, changes, risk=HIGH_RISK, approval=request,
        )
        assert report.status == "committed"
        assert _serialized(production) == expected
        journal = report.journal
        assert journal.approval_id == request.request_id
        kinds = [entry.kind for entry in journal.entries]
        assert kinds[:2] == ["intent", "approval"]


class TestResumeAtApprovalBoundary:
    def test_crash_after_marker_resumes_without_rerequesting(self):
        # The pusher dies after the journal's approval marker but before
        # the first batch commits. resume() replays the batches under the
        # already-granted approval: exactly one proposed record, exactly
        # one application of the change set.
        production, changes, expected = _square_changes()
        trail = AuditTrail(SimulatedEnclave(), clock=SimulatedClock())
        coord = coordinator(audit=trail)
        request = coord.require("S-0001", changes, HIGH_RISK)
        coord.collect(request)
        assert request.granted

        scheduler = ChangeScheduler()
        faults.arm({"push.crash": Rule(nth=1)}, seed=7)
        with pytest.raises(PushCrashed) as crash:
            scheduler.push(
                production, changes, audit=trail,
                risk=HIGH_RISK, approval=request,
            )
        faults.disarm()
        journal = crash.value.journal
        # The crash landed at the approval boundary: grant journaled,
        # nothing committed yet.
        assert journal.approval_id == request.request_id
        assert [entry.kind for entry in journal.entries] == [
            "intent", "approval", "batch-start",
        ]
        assert not journal.committed

        report = scheduler.resume(production, journal, audit=trail)
        assert report.resumed
        assert report.status == "committed"
        assert _serialized(production) == expected  # applied exactly once
        proposed = trail.query(action_prefix="approvals.proposed")
        assert len(proposed) == 1  # the quorum round never re-ran
        assert len(coord.requests) == 1
        assert trail.verify()


def make_heimdall(approvals, audit_replicas=0, issue_id="ospf"):
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    issue = standard_issues("enterprise")[issue_id]
    issue.inject(production)
    heimdall = Heimdall(
        production, policies=policies, approvals=approvals,
        audit_replicas=audit_replicas,
    )
    return production, issue, heimdall


RISKY = RiskConfig(threshold=0.5)


class TestHeimdallGate:
    def test_high_risk_fix_wins_quorum_and_imports(self):
        production, issue, heimdall = make_heimdall(
            ApprovalConfig(risk=RISKY), audit_replicas=3,
        )
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        decision = outcome.decision
        assert decision.risk is not None and decision.risk.high
        assert decision.approval is not None and decision.approval.granted
        assert outcome.resolved and not issue.is_broken(production)
        journal = heimdall.scheduler.last_journal
        assert journal.approval_id == decision.approval.request_id
        assert isinstance(heimdall.audit, ReplicatedAuditTrail)
        assert heimdall.audit.cross_check().status == "intact"
        assert len(heimdall.audit.query(
            action_prefix="approvals.proposed"
        )) == 1

    def test_vetoed_fix_is_never_pushed(self):
        votes = {name: "reject" for name in ApprovalConfig().approvers}
        production, issue, heimdall = make_heimdall(
            ApprovalConfig(risk=RISKY, votes=votes),
        )
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        decision = outcome.decision
        assert decision.approval.state == REJECTED
        assert not outcome.resolved
        assert issue.is_broken(production)  # nothing imported
        (refused,) = heimdall.audit.query(action_prefix="enforcer.approval")
        assert not refused.allowed
        assert "not pushed" in refused.outcome

    def test_low_risk_fix_skips_the_gate(self):
        production, issue, heimdall = make_heimdall(
            ApprovalConfig(risk=RiskConfig(threshold=1e9)),
        )
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        assert outcome.resolved
        assert outcome.decision.approval is None
        assert heimdall.audit.query(action_prefix="approvals.") == []


class TestSessionApprovalProgress:
    def test_progress_mirrors_the_quorum_round(self):
        production, issue, heimdall = make_heimdall(
            ApprovalConfig(risk=RISKY, votes={"admin-2": "reject"}),
        )
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        session.submit()
        record = manager.approval_progress(session.session_id)
        assert record is not None
        assert record["states"] == [PROPOSED, MEDIATED, APPROVED]
        assert record["state"] == APPROVED
        assert record["votes"]["admin-2"] == "reject"
        assert record["quorum"] == 2
        assert manager.approval_progress("S-9999") is None
        assert list(manager.approval_progress()) == [session.session_id]
