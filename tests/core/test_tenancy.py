"""Tenant registry + capability tokens (repro.core.tenancy).

Every dimension of token validation must deny by default and fail
closed exactly at its boundary, and every refusal must land as a
MAC-covered record on the victim org's audit chain.
"""

from dataclasses import replace

import pytest

from repro import faults, obs
from repro.core.approvals import ApprovalConfig, ApprovalCoordinator
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.tenancy import (
    DEFAULT_SCOPES,
    TenantRegistry,
    TenantSpec,
    TokenAuthority,
)
from repro.faults.registry import Rule
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import (
    CapabilityDeniedError,
    TenancyError,
    TenantIsolationError,
    TenantRegistryError,
    TokenExpiredError,
    TokenForgedError,
    TokenReplayError,
)


@pytest.fixture(autouse=True)
def _obs_state():
    obs.enable()
    obs.reset()
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def counter(name):
    metric = obs.registry().get(name)
    return metric.value if metric is not None else 0


def make_authority(org_id="acme", ttl_s=900.0, audit=True, clock=None):
    clock = clock if clock is not None else SimulatedClock()
    enclave = SimulatedEnclave()
    trail = AuditTrail(enclave, clock=clock) if audit else None
    return TokenAuthority(org_id, enclave, clock, audit=trail, ttl_s=ttl_s)


class TestIssueAndValidate:
    def test_issued_token_is_org_bound_sealed_and_scoped(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        assert token.org_id == "acme"
        assert token.subject == "tech-1"
        assert token.scopes == frozenset(DEFAULT_SCOPES)
        assert token.mac and len(token.mac) == 64
        assert token.expires_at == token.issued_at + 900.0
        assert counter("tenancy.tokens.issued") == 1
        (record,) = authority.audit.query(action_prefix="tenancy.token.issue")
        assert record.allowed and record.actor == "tech-1"

    def test_valid_presentation_is_admitted_and_audited(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        assert authority.validate(token, "session.open") is token
        (record,) = authority.audit.query(action_prefix="tenancy.token.use")
        assert record.allowed
        assert token.token_id in record.command
        assert authority.audit.verify()

    def test_scope_membership_is_deny_by_default(self):
        authority = make_authority()
        token = authority.issue("tech-1", ("session.open",))
        with pytest.raises(CapabilityDeniedError, match="denied by default"):
            authority.validate(token, "session.submit")
        assert counter("tenancy.tokens.denied") == 1
        assert counter("tenancy.violation") == 0  # scoped, not cross-tenant
        (record,) = authority.audit.query(
            action_prefix="tenancy.token.denied"
        )
        assert not record.allowed

    def test_forged_mac_is_a_violation(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        forged = replace(token, mac="0" * 64)
        with pytest.raises(TokenForgedError):
            authority.validate(forged, "session.open")
        assert counter("tenancy.violation") == 1
        (record,) = authority.audit.query(action_prefix="tenancy.violation")
        assert not record.allowed
        assert authority.audit.verify()  # refusal is MAC-covered too

    def test_tampered_scopes_invalidate_the_seal(self):
        authority = make_authority()
        token = authority.issue("tech-1", ("session.open",))
        widened = replace(token, scopes=frozenset(DEFAULT_SCOPES))
        with pytest.raises(TokenForgedError):
            authority.validate(widened, "session.submit")


class TestCrossTenant:
    def test_foreign_token_refused_on_the_victim_chain(self):
        acme = make_authority("acme")
        blue = make_authority("blue")
        stolen = acme.issue("tech-1", DEFAULT_SCOPES)
        with pytest.raises(TenantIsolationError) as excinfo:
            blue.validate(stolen, "session.open")
        assert excinfo.value.org_id == "blue"
        assert excinfo.value.token_org == "acme"
        assert counter("tenancy.violation") == 1
        # The refusal lands on blue's (the victim's) chain, not acme's.
        (record,) = blue.audit.query(action_prefix="tenancy.violation")
        assert not record.allowed
        assert record.resource == "org:blue"
        assert acme.audit.query(action_prefix="tenancy.violation") == []

    def test_theft_fault_refuses_even_an_own_org_token(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        faults.arm({"tenancy.token.theft": Rule(nth=1)}, seed=7)
        with pytest.raises(TenantIsolationError, match="stolen"):
            authority.validate(token, "session.open")
        assert counter("tenancy.violation") == 1


class TestReplayAndExpiry:
    def test_revoked_token_replay_is_refused(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        authority.revoke(token, reason="laptop lost")
        with pytest.raises(TokenReplayError, match="replay refused"):
            authority.validate(token, "session.open")
        (record,) = authority.audit.query(
            action_prefix="tenancy.token.denied"
        )
        assert "replayed" in record.outcome

    def test_replay_fault_spends_a_live_token(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        faults.arm({"tenancy.token.replay": Rule(nth=1)}, seed=7)
        with pytest.raises(TokenReplayError):
            authority.validate(token, "session.open")

    def test_expiry_instant_itself_already_denies(self):
        clock = SimulatedClock()
        authority = make_authority(ttl_s=300.0, clock=clock)
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        clock.advance(300.0)
        assert clock.now == token.expires_at
        with pytest.raises(TokenExpiredError):
            authority.validate(token, "session.open")

    def test_one_tick_before_expiry_admits(self):
        clock = SimulatedClock()
        authority = make_authority(ttl_s=300.0, clock=clock)
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        clock.advance(299.999)
        assert authority.validate(token, "session.open") is token

    def test_expiry_race_fault_denies_mid_validation(self):
        authority = make_authority()
        token = authority.issue("tech-1", DEFAULT_SCOPES)
        faults.arm({"tenancy.token.expired": Rule(nth=1)}, seed=7)
        with pytest.raises(TokenExpiredError):
            authority.validate(token, "session.open")
        faults.disarm()
        # The race was transient: the token itself is still live.
        assert authority.validate(token, "session.open") is token


class TestElevation:
    def test_quorum_grant_mints_a_superseding_token(self):
        authority = make_authority()
        coordinator = ApprovalCoordinator(ApprovalConfig())
        token = authority.issue("tech-1", ("session.open",))
        elevated = authority.elevate(
            token, "session.submit", coordinator, justification="sev-1",
        )
        assert elevated.scopes == frozenset(
            {"session.open", "session.submit"}
        )
        assert authority.validate(elevated, "session.submit") is elevated
        # Privilege never accumulates on two live credentials.
        with pytest.raises(TokenReplayError):
            authority.validate(token, "session.open")
        (record,) = authority.audit.query(action_prefix="tenancy.elevate")
        assert record.allowed and "sev-1" in record.command

    def test_denied_round_issues_nothing(self):
        authority = make_authority()
        votes = {name: "reject" for name in ApprovalConfig().approvers}
        coordinator = ApprovalCoordinator(ApprovalConfig(votes=votes))
        token = authority.issue("tech-1", ("session.open",))
        with pytest.raises(CapabilityDeniedError, match="denied"):
            authority.elevate(token, "session.submit", coordinator)
        # The presenting token survives a denied round.
        assert authority.validate(token, "session.open") is token
        assert counter("tenancy.break_glass") == 0

    def test_break_glass_override_is_counted_and_flagged(self):
        authority = make_authority()
        coordinator = ApprovalCoordinator(
            ApprovalConfig(break_glass_actor="oncall")
        )
        token = authority.issue("tech-1", ("session.open",))
        faults.arm(
            {"approvals.approver.crash": Rule(probability=1.0, times=99)},
            seed=7,
        )
        elevated = authority.elevate(token, "session.submit", coordinator)
        faults.disarm()
        assert "session.submit" in elevated.scopes
        assert counter("tenancy.break_glass") == 1
        (record,) = authority.audit.query(action_prefix="tenancy.elevate")
        assert "break-glass" in record.outcome

    def test_no_approvals_machinery_denies_by_default(self):
        authority = make_authority()
        token = authority.issue("tech-1", ("session.open",))
        with pytest.raises(CapabilityDeniedError, match="no"):
            authority.elevate(token, "session.submit", None)


class TestRegistry:
    def test_unknown_org_is_a_violation(self):
        registry = TenantRegistry()
        registry.add("acme", object())
        with pytest.raises(TenantIsolationError, match="unknown org"):
            registry.require("blue")
        assert counter("tenancy.violation") == 1
        assert registry.org_ids() == ["acme"]

    def test_duplicate_org_rejected(self):
        registry = TenantRegistry()
        registry.add("acme", object())
        with pytest.raises(TenancyError, match="already registered"):
            registry.add("acme", object())

    def test_registry_crash_fails_closed(self):
        registry = TenantRegistry()
        registry.add("acme", object())
        faults.arm({"tenancy.registry.crash": Rule(nth=1)}, seed=7)
        with pytest.raises(TenantRegistryError):
            registry.require("acme")
        faults.disarm()
        assert registry.require("acme") is not None


class TestSpecValidation:
    def test_bad_shapes_rejected(self):
        network = object()
        with pytest.raises(TenancyError):
            TenantSpec(org_id="", network=network)
        with pytest.raises(TenancyError):
            TenantSpec(org_id="acme", network=network, queue_limit=0)
        with pytest.raises(TenancyError):
            TenantSpec(org_id="acme", network=network, workers=0)
        with pytest.raises(TenancyError):
            TenantSpec(org_id="acme", network=network, burst=0)
        with pytest.raises(TenancyError):
            TenantSpec(org_id="acme", network=network, rate_per_s=-1.0)
        with pytest.raises(TenancyError):
            TenantSpec(org_id="acme", network=network, token_ttl_s=0.0)
