"""Transactional pushes: journal lifecycle, rollback, crash recovery."""

import pytest

from repro import faults, obs
from repro.config.apply import apply_changes
from repro.config.diffing import diff_networks
from repro.config.serializer import serialize_config
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.journal import PushJournal
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.faults.registry import Rule
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import JournalError, PushCrashed, TransientDeviceError

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def _serialized(network):
    return {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }


def _changes(mutate):
    production = square_network()
    modified = production.copy()
    mutate(modified)
    return production, diff_networks(production.configs, modified.configs)


def _one_batch(net):
    """Two same-category changes -> one batch of two changes."""
    net.config("r1").interface("Gi0/0").description = "batch-a"
    net.config("r2").interface("Gi0/0").description = "batch-b"


def _two_batches(net):
    """An interface change and an ACL change -> two ordered batches."""
    net.config("r1").interface("Gi0/0").description = "first"
    net.config("r3").acls["PROTECT_H3"].entries.reverse()


def _expected_after(production, changes):
    """Serialized configs after a clean application of ``changes``."""
    expected = production.copy()
    apply_changes(expected.configs, changes)
    return _serialized(expected)


class TestJournalLifecycle:
    def test_clean_push_journal_sequence(self):
        production, changes = _changes(_two_batches)
        scheduler = ChangeScheduler()
        report = scheduler.push(production, changes)
        journal = report.journal
        assert journal is scheduler.last_journal
        assert journal.state == "committed"
        assert [entry.kind for entry in journal.entries] == [
            "intent",
            "batch-start", "batch-committed",
            "batch-start", "batch-committed",
            "done",
        ]
        assert report.committed

    def test_journal_export(self):
        production, changes = _changes(_one_batch)
        report = ChangeScheduler().push(production, changes)
        exported = report.journal.to_dict()
        assert exported["state"] == "committed"
        assert exported["committed"] == [0]
        assert exported["devices"] == ["r1", "r2"]
        assert exported["entries"][0]["kind"] == "intent"

    def test_terminal_journal_rejects_markers(self):
        production, changes = _changes(_one_batch)
        journal = PushJournal("PUSH-TEST", [changes], production)
        journal.mark_done()
        with pytest.raises(JournalError):
            journal.mark_done()
        with pytest.raises(JournalError):
            journal.mark_batch_start(0, production)


class TestTransientRetry:
    def test_transient_fault_retried_to_commit(self):
        production, changes = _changes(_one_batch)
        expected = _expected_after(production, changes)
        clock = SimulatedClock()
        faults.arm({"device.apply.transient": Rule(nth=1, times=2)}, seed=7)
        report = ChangeScheduler().push(production, changes, clock=clock)
        assert report.committed
        assert _serialized(production) == expected
        assert clock.now > 0.0
        assert "retry backoff" in clock.breakdown()

    def test_exhausted_retries_roll_back(self):
        production, changes = _changes(_one_batch)
        pre_push = _serialized(production)
        faults.arm(
            {"device.apply.transient": Rule(probability=1.0, times=99)},
            seed=7,
        )
        report = ChangeScheduler().push(production, changes)
        assert report.status == "rolled-back"
        assert "TransientDeviceError" in report.rollback_reason
        assert _serialized(production) == pre_push


class TestRollback:
    def test_fatal_fault_restores_byte_identical_snapshot(self):
        production, changes = _changes(_two_batches)
        pre_push = _serialized(production)
        faults.arm({"device.apply.fatal": Rule(nth=2)}, seed=7)
        report = ChangeScheduler().push(production, changes)
        assert report.status == "rolled-back"
        assert report.journal.state == "rolled-back"
        assert "FatalApplyError" in report.rollback_reason
        assert _serialized(production) == pre_push

    def test_audit_append_failure_fails_closed(self):
        production, changes = _changes(_one_batch)
        pre_push = _serialized(production)
        trail = AuditTrail(SimulatedEnclave())
        # The first append during a bare push is the commit record itself.
        faults.arm({"audit.append": Rule(nth=1)}, seed=7)
        report = ChangeScheduler().push(production, changes, audit=trail)
        assert report.status == "rolled-back"
        assert "AuditWriteError" in report.rollback_reason
        assert _serialized(production) == pre_push
        # The rollback record is best-effort; here the fault has spent its
        # one firing, so it lands — denied, with the reason — and the chain
        # still verifies.
        (record,) = trail.records
        assert record.action == "enforcer.rollback"
        assert not record.allowed
        assert trail.verify()

    def test_committed_push_writes_commit_record(self):
        production, changes = _changes(_one_batch)
        trail = AuditTrail(SimulatedEnclave())
        report = ChangeScheduler().push(
            production, changes, audit=trail, actor="SES-1"
        )
        assert report.committed
        (record,) = trail.records
        assert record.action == "enforcer.commit"
        assert record.actor == "SES-1"
        assert record.allowed
        assert trail.verify()


class TestCrashResume:
    def test_crash_between_batches_raises_with_journal(self):
        production, changes = _changes(_two_batches)
        faults.arm({"push.crash": Rule(nth=2)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(production, changes)
        journal = excinfo.value.journal
        assert journal is scheduler.last_journal
        assert not journal.terminal
        assert journal.committed == {0}

    def test_resume_completes_crashed_push(self):
        production, changes = _changes(_two_batches)
        expected = _expected_after(production, changes)
        faults.arm({"push.crash": Rule(nth=2)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(production, changes)
        faults.disarm()
        report = scheduler.resume(production, excinfo.value.journal)
        assert report.resumed
        assert report.committed
        assert _serialized(production) == expected

    def test_resume_after_mid_batch_crash_is_idempotent(self):
        # Crash after the first change of a two-change batch: production is
        # half-mutated. resume() must restore the pre-batch snapshot first,
        # then re-apply — ending byte-identical to a clean push, with no
        # change applied twice.
        production, changes = _changes(_one_batch)
        expected = _expected_after(production, changes)
        faults.arm({"push.crash": Rule(nth=2)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(production, changes)
        journal = excinfo.value.journal
        assert journal.committed == set()
        # The first change of the batch really landed before the crash.
        assert _serialized(production) != _serialized(square_network())
        faults.disarm()
        report = scheduler.resume(production, journal)
        assert report.committed
        assert _serialized(production) == expected
        restored = [
            entry.kind for entry in journal.entries
            if entry.kind == "batch-restored"
        ]
        assert restored == ["batch-restored"]

    def test_resume_on_terminal_journal_refuses(self):
        production, changes = _changes(_one_batch)
        scheduler = ChangeScheduler()
        report = scheduler.push(production, changes)
        with pytest.raises(JournalError, match="already committed"):
            scheduler.resume(production, report.journal)

    def test_resume_can_itself_roll_back(self):
        production, changes = _changes(_two_batches)
        pre_push = _serialized(production)
        faults.arm({"push.crash": Rule(nth=1)}, seed=7)
        scheduler = ChangeScheduler()
        with pytest.raises(PushCrashed) as excinfo:
            scheduler.push(production, changes)
        faults.arm({"device.apply.fatal": Rule(nth=1)}, seed=7)
        report = scheduler.resume(production, excinfo.value.journal)
        assert report.status == "rolled-back"
        assert _serialized(production) == pre_push


class TestMetrics:
    def test_fault_paths_are_counted(self):
        obs.reset()
        obs.enable()
        try:
            production, changes = _changes(_one_batch)
            faults.arm(
                {"device.apply.transient": Rule(nth=1, times=2)}, seed=7
            )
            ChangeScheduler().push(production, changes)
            faults.arm({"device.apply.fatal": Rule(nth=1)}, seed=7)
            ChangeScheduler().push(square_network(), changes)
        finally:
            obs.disable()
        registry = obs.registry()
        assert registry.get("faults.injected").value >= 3
        assert registry.get("retry.attempts").value >= 2
        assert registry.get("push.rollbacks").value == 1
