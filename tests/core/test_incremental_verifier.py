"""Incremental ChangeVerifier decisions match the from-scratch path.

The incremental pipeline (cached production plane, baseline-reuse candidate
compile, carried-over traces) is a pure optimization: for every scenario
network and standard issue, the enforcement decision on the repairing
change set must be indistinguishable from ``incremental=False``.
"""

import pytest

from repro.config.diffing import diff_networks
from repro.control.cache import clear_dataplane_cache
from repro.core.enforcer.verifier import ChangeVerifier
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network

SCENARIOS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}

CASES = [
    (scenario, issue_id)
    for scenario in sorted(SCENARIOS)
    for issue_id in standard_issues(scenario)
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()


def _violation_ids(results):
    return sorted(result.policy.policy_id for result in results)


def _impact_digest(impact):
    return sorted(
        (str(delta.flow), delta.before_disposition, delta.after_disposition,
         delta.before_path, delta.after_path)
        for delta in impact.deltas
    )


@pytest.mark.parametrize("scenario,issue_id", CASES)
def test_fix_decision_equivalent(scenario, issue_id):
    """Verifying the *fix* against the broken production network."""
    network = SCENARIOS[scenario]()
    issue = standard_issues(scenario)[issue_id]
    policies = mine_policies(network)

    production = network.copy()
    issue.inject(production)
    changes = diff_networks(production.configs, network.configs)
    assert changes, f"{scenario}/{issue_id}: issue produced no diff"

    cold = ChangeVerifier(policies, incremental=False).verify(
        production, changes
    )
    incremental = ChangeVerifier(policies).verify(production, changes)

    assert incremental.approved == cold.approved
    assert _violation_ids(incremental.new_policy_violations) == \
        _violation_ids(cold.new_policy_violations)
    assert _violation_ids(incremental.preexisting_violations) == \
        _violation_ids(cold.preexisting_violations)
    assert incremental.impact.probed == cold.impact.probed
    assert _impact_digest(incremental.impact) == _impact_digest(cold.impact)


@pytest.mark.parametrize("scenario,issue_id", CASES)
def test_break_decision_equivalent(scenario, issue_id):
    """Verifying the *breaking* change set against healthy production."""
    network = SCENARIOS[scenario]()
    issue = standard_issues(scenario)[issue_id]
    policies = mine_policies(network)

    broken = network.copy()
    issue.inject(broken)
    changes = diff_networks(network.configs, broken.configs)
    assert changes

    cold = ChangeVerifier(policies, incremental=False).verify(network, changes)
    incremental = ChangeVerifier(policies).verify(network, changes)

    assert incremental.approved == cold.approved
    assert _violation_ids(incremental.new_policy_violations) == \
        _violation_ids(cold.new_policy_violations)
    assert _impact_digest(incremental.impact) == _impact_digest(cold.impact)


def test_repeat_verification_is_stable():
    """Steady state: the second identical verify (cache-warm everywhere)
    returns the same decision as the first."""
    network = build_university_network()
    issue = standard_issues("university")["ospf"]
    policies = mine_policies(network)
    production = network.copy()
    issue.inject(production)
    changes = diff_networks(production.configs, network.configs)

    verifier = ChangeVerifier(policies)
    first = verifier.verify(production, changes)
    second = verifier.verify(production, changes)
    assert second.approved == first.approved
    assert _violation_ids(second.new_policy_violations) == \
        _violation_ids(first.new_policy_violations)
    assert _impact_digest(second.impact) == _impact_digest(first.impact)
