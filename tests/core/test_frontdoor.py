"""Multi-tenant front door (repro.core.frontdoor).

Admission mechanics run against tiny square-network tenants (the work
callables never touch the manager); the full open → fix → submit flow
runs once against real enterprise orgs to prove org-scoped session ids,
isolated audit chains, and cross-tenant refusal end to end.
"""

import threading

import pytest

from repro import faults, obs
from repro.core.frontdoor import FrontDoor, TokenBucket
from repro.core.heimdall import Heimdall
from repro.core.tenancy import TenantSpec
from repro.faults.registry import Rule
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import (
    CapabilityDeniedError,
    FrontDoorError,
    FrontDoorOverloadError,
    TenancyError,
    TenantIsolationError,
)

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _obs_state():
    obs.enable()
    obs.reset()
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def counter(name):
    metric = obs.registry().get(name)
    return metric.value if metric is not None else 0


def spec(org_id="acme", **kwargs):
    kwargs.setdefault("network", square_network())
    return TenantSpec(org_id=org_id, **kwargs)


@pytest.fixture
def door():
    frontdoor = FrontDoor([spec("acme"), spec("blue")])
    yield frontdoor
    frontdoor.close()


class TestTokenBucket:
    def test_burst_then_exhaustion_then_clock_refill(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        assert bucket.retry_after_s() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_take()

    def test_zero_rate_never_refills(self):
        clock = SimulatedClock()
        bucket = TokenBucket(rate_per_s=0.0, burst=1, clock=clock)
        assert bucket.try_take()
        clock.advance(3600.0)
        assert not bucket.try_take()
        assert bucket.retry_after_s() == float("inf")


class TestAdmission:
    def test_admitted_work_runs_on_the_org_bulkhead(self, door):
        token = door.issue_token("acme", "tech-1")
        admission = door.admit(
            token, "acme", lambda manager: "ran", label="job-0",
        )
        assert admission.result() == "ran"
        assert counter("frontdoor.admitted") == 1

    def test_work_errors_are_reraised_not_swallowed(self, door):
        token = door.issue_token("acme", "tech-1")

        def broken(manager):
            raise RuntimeError("fix script exploded")

        admission = door.admit(token, "acme", broken)
        with pytest.raises(RuntimeError, match="exploded"):
            admission.result()

    def test_unknown_org_fails_closed(self, door):
        token = door.issue_token("acme", "tech-1")
        with pytest.raises(TenantIsolationError, match="unknown org"):
            door.admit(token, "ghost", lambda manager: "never")

    def test_foreign_token_refused_and_victim_audited(self, door):
        stolen = door.issue_token("acme", "tech-1")
        with pytest.raises(TenantIsolationError) as excinfo:
            door.admit(stolen, "blue", lambda manager: "never")
        assert excinfo.value.org_id == "blue"
        assert excinfo.value.token_org == "acme"
        victim = door.deployment("blue").heimdall.audit
        (record,) = victim.query(action_prefix="tenancy.violation")
        assert not record.allowed
        assert victim.verify()

    def test_closed_door_admits_nothing(self):
        frontdoor = FrontDoor([spec("acme")])
        token = frontdoor.issue_token("acme", "tech-1")
        frontdoor.close()
        with pytest.raises(FrontDoorError, match="closed"):
            frontdoor.admit(token, "acme", lambda manager: "never")
        frontdoor.close()  # idempotent

    def test_needs_at_least_one_tenant(self):
        with pytest.raises(FrontDoorError):
            FrontDoor([])


class TestShedding:
    def test_bounded_queue_sheds_typed_with_retry_after(self):
        frontdoor = FrontDoor([
            spec("acme", queue_limit=1, workers=1, burst=8,
                 rate_per_s=1000.0),
        ])
        token = frontdoor.issue_token("acme", "tech-1")
        started = threading.Event()
        release = threading.Event()

        def blocked(manager):
            started.set()
            release.wait(30.0)
            return "done"

        # #1 occupies the single worker, #2 parks in the one queue slot,
        # #3 must shed — typed, with a retry-after hint.
        first = frontdoor.admit(token, "acme", blocked, label="job-0")
        assert started.wait(30.0)  # the worker holds #1, the queue is empty
        second = frontdoor.admit(
            token, "acme", lambda manager: "done", label="job-1",
        )
        with pytest.raises(FrontDoorOverloadError) as excinfo:
            frontdoor.admit(token, "acme", lambda manager: "never")
        assert "queue full" in str(excinfo.value)
        assert excinfo.value.retry_after_s >= 1.0
        release.set()
        assert first.result() == "done"
        assert second.result() == "done"
        assert counter("frontdoor.shed") == 1
        assert frontdoor.deployment("acme").shed == 1
        frontdoor.close()

    def test_rate_limit_sheds_until_the_clock_refills(self):
        frontdoor = FrontDoor([
            spec("acme", burst=1, rate_per_s=0.5, queue_limit=8),
        ])
        token = frontdoor.issue_token("acme", "tech-1")
        frontdoor.admit(token, "acme", lambda manager: "ran").result()
        with pytest.raises(FrontDoorOverloadError) as excinfo:
            frontdoor.admit(token, "acme", lambda manager: "never")
        assert "rate limit" in str(excinfo.value)
        assert excinfo.value.retry_after_s == pytest.approx(2.0)
        # The simulated clock refills deterministically.
        frontdoor.deployment("acme").heimdall.clock.advance(2.0)
        assert frontdoor.admit(
            token, "acme", lambda manager: "ran"
        ).result() == "ran"
        frontdoor.close()

    def test_quota_exhaustion_sheds_without_retry(self):
        frontdoor = FrontDoor([spec("acme", quota=1)])
        token = frontdoor.issue_token("acme", "tech-1")
        frontdoor.admit(token, "acme", lambda manager: "ran").result()
        with pytest.raises(FrontDoorOverloadError) as excinfo:
            frontdoor.admit(token, "acme", lambda manager: "never")
        assert "quota" in str(excinfo.value)
        assert excinfo.value.retry_after_s is None
        frontdoor.close()

    def test_noisy_neighbor_storm_stays_inside_its_bulkhead(self, door):
        acme = door.issue_token("acme", "tech-1")
        blue = door.issue_token("blue", "tech-2")
        faults.arm({"frontdoor.noisy.neighbor": Rule(nth=1)}, seed=7)
        # The storm drains acme's own bucket: the flagged request and the
        # org's next one both shed at the rate gate.
        with pytest.raises(FrontDoorOverloadError, match="rate limit"):
            door.admit(acme, "acme", lambda m: "never")
        faults.disarm()
        with pytest.raises(FrontDoorOverloadError, match="rate limit"):
            door.admit(acme, "acme", lambda m: "never")
        # blue's admission budget never noticed.
        assert door.admit(blue, "blue", lambda m: "ran").result() == "ran"
        assert door.deployment("blue").shed == 0

    def test_flood_fault_sheds_at_the_queue_gate(self, door):
        token = door.issue_token("acme", "tech-1")
        faults.arm({"frontdoor.queue.flood": Rule(nth=1)}, seed=7)
        with pytest.raises(FrontDoorOverloadError, match="queue flood"):
            door.admit(token, "acme", lambda manager: "never")


class TestReadSurfaces:
    def test_audit_read_scope_gates_export_and_verify(self, door):
        reader = door.issue_token("acme", "auditor")
        assert door.audit_verify(reader, "acme")
        assert door.audit_export(reader, "acme")
        narrow = door.issue_token("acme", "tech-1", scopes=("session.open",))
        with pytest.raises(CapabilityDeniedError):
            door.audit_export(narrow, "acme")
        with pytest.raises(CapabilityDeniedError):
            door.audit_verify(narrow, "acme")

    def test_cross_org_reads_are_violations(self, door):
        reader = door.issue_token("acme", "auditor")
        with pytest.raises(TenantIsolationError):
            door.audit_export(reader, "blue")
        with pytest.raises(TenantIsolationError):
            door.push_progress(reader, "blue", "SES-0001")


class TestHeimdallWiring:
    def test_tenants_mode_exposes_the_front_door(self):
        heimdall = Heimdall(tenants=[spec("acme")])
        assert heimdall.frontdoor is not None
        assert heimdall.production is None
        assert heimdall.frontdoor.org_ids() == ["acme"]
        with pytest.raises(TenancyError, match="capability token"):
            heimdall.open_ticket(object())
        heimdall.frontdoor.close()

    def test_production_and_tenants_are_mutually_exclusive(self):
        with pytest.raises(TenancyError):
            Heimdall(square_network(), tenants=[spec("acme")])
        with pytest.raises(TenancyError):
            Heimdall()

    def test_org_scoped_deployments_are_fully_disjoint(self, door):
        acme = door.deployment("acme").heimdall
        blue = door.deployment("blue").heimdall
        assert acme.org_id == "acme" and blue.org_id == "blue"
        assert acme.production is not blue.production
        assert acme.enclave is not blue.enclave
        assert acme.audit is not blue.audit


class TestFullFlow:
    def test_resolve_ticket_end_to_end_with_org_scoped_sessions(self):
        from repro.policy.mining import mine_policies
        from repro.scenarios.enterprise import build_enterprise_network
        from repro.scenarios.issues import standard_issues

        policies = mine_policies(build_enterprise_network())
        productions = {
            org: build_enterprise_network() for org in ("acme", "blue")
        }
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(productions["acme"])
        frontdoor = FrontDoor([
            spec(org, network=productions[org], policies=policies)
            for org in ("acme", "blue")
        ])
        token = frontdoor.issue_token("acme", "tech-1")
        outcome = frontdoor.resolve_ticket(
            token, "acme", issue, mode="optimistic",
        ).result()
        assert outcome.imported
        assert outcome.session_id.startswith("acme:SESSION-")
        assert not issue.is_broken(productions["acme"])
        # blue's deployment never heard about any of it.
        blue = frontdoor.deployment("blue").heimdall
        assert blue.audit.query(actor=outcome.session_id) == []
        frontdoor.close()
