"""Property-based tests for the enforcer: audit chains, scheduling, DSL JSON."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.diffing import _KIND_TABLE, ConfigChange
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.scheduler import CATEGORY_ORDER, ChangeScheduler
from repro.core.privilege.ast import PrivilegeSpec
from repro.core.privilege.parser import dump_privilege_spec, load_privilege_spec

words = st.from_regex(r"[a-z0-9]{1,12}", fullmatch=True)

record_fields = st.fixed_dictionaries({
    "actor": words,
    "device": words,
    "command": st.text(min_size=0, max_size=60),
    "action": st.from_regex(r"[a-z]+\.[a-z_]+", fullmatch=True),
    "resource": words,
    "allowed": st.booleans(),
    "outcome": st.text(min_size=0, max_size=30),
})


class TestAuditChainProperties:
    @given(st.lists(record_fields, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_any_honest_history_verifies(self, entries):
        trail = AuditTrail(SimulatedEnclave())
        for entry in entries:
            trail.record(**entry)
        assert trail.verify()

    @given(
        st.lists(record_fields, min_size=2, max_size=12),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_field_tamper_detected(self, entries, data):
        trail = AuditTrail(SimulatedEnclave())
        for entry in entries:
            trail.record(**entry)
        index = data.draw(st.integers(min_value=0, max_value=len(entries) - 1))
        victim = trail.records[index]
        field = data.draw(st.sampled_from(
            ["actor", "device", "command", "action", "resource", "outcome"]
        ))
        original = getattr(victim, field)
        forged = original + "x"
        trail.records[index] = dataclasses.replace(victim, **{field: forged})
        assert not trail.verify()

    @given(st.lists(record_fields, min_size=3, max_size=12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_mid_deletion_detected(self, entries, data):
        trail = AuditTrail(SimulatedEnclave())
        for entry in entries:
            trail.record(**entry)
        # Deleting anything but the last record breaks the chain.
        index = data.draw(st.integers(min_value=0, max_value=len(entries) - 2))
        del trail.records[index]
        assert not trail.verify()


def _change(device, kind):
    return ConfigChange(device=device, kind=kind, path="p")


change_kinds = st.sampled_from(sorted(_KIND_TABLE))
changes_lists = st.lists(
    st.builds(_change, device=words, kind=change_kinds),
    min_size=0,
    max_size=30,
)


class TestSchedulerProperties:
    @given(changes_lists)
    @settings(max_examples=100, deadline=None)
    def test_schedule_is_a_permutation(self, changes):
        batches = ChangeScheduler().schedule(changes)
        flattened = [c for batch in batches for c in batch]
        assert sorted(flattened, key=repr) == sorted(changes, key=repr)

    @given(changes_lists)
    @settings(max_examples=100, deadline=None)
    def test_batches_are_category_monotone(self, changes):
        rank = {category: i for i, category in enumerate(CATEGORY_ORDER)}
        batches = ChangeScheduler().schedule(changes)
        ranks = [rank[batch[0].category] for batch in batches if batch]
        assert ranks == sorted(ranks)
        for batch in batches:
            assert len({c.category for c in batch}) == 1

    @given(changes_lists)
    @settings(max_examples=60, deadline=None)
    def test_schedule_deterministic_under_input_order(self, changes):
        scheduler = ChangeScheduler()
        forward = scheduler.schedule(changes)
        backward = scheduler.schedule(list(reversed(changes)))
        assert forward == backward

    @given(changes_lists)
    @settings(max_examples=60, deadline=None)
    def test_naive_order_is_also_a_permutation(self, changes):
        batches = ChangeScheduler().naive_order(changes)
        flattened = [c for batch in batches for c in batch]
        assert sorted(flattened, key=repr) == sorted(changes, key=repr)


effects = st.sampled_from(["allow", "deny"])
action_patterns = st.sampled_from([
    "*", "view.*", "config.*", "config.acl.entry", "probe.ping",
    "config.interface.admin", "system.save",
])
resource_patterns = st.sampled_from([
    "*", "r1", "r1:*", "r1:Gi0/0", "r2:acl:*", "sw1",
])


@st.composite
def privilege_specs(draw):
    spec = PrivilegeSpec(default=draw(effects))
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        spec.add_rule(
            draw(effects), draw(action_patterns), draw(resource_patterns),
            comment=draw(st.text(max_size=10)),
        )
    return spec


class TestDslJsonProperties:
    @given(privilege_specs())
    @settings(max_examples=100, deadline=None)
    def test_dump_load_roundtrip(self, spec):
        loaded, _ = load_privilege_spec(dump_privilege_spec(spec))
        assert loaded.default == spec.default
        assert loaded.rules == spec.rules

    @given(privilege_specs(), action_patterns, resource_patterns)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_preserves_decisions(self, spec, action, resource):
        # Evaluate on concrete (non-wildcard) instances of the patterns.
        concrete_action = action.replace("*", "something")
        concrete_resource = resource.replace("*", "thing")
        loaded, _ = load_privilege_spec(dump_privilege_spec(spec))
        assert spec.allows(concrete_action, concrete_resource) == loaded.allows(
            concrete_action, concrete_resource
        )
