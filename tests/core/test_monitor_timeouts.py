"""Monitor per-command budgets: a timed-out command fails closed."""

import pytest

from repro import faults, obs
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.privilege.ast import PrivilegeSpec
from repro.core.twin.monitor import MonitoredConsole, ReferenceMonitor
from repro.emulation.network import EmulatedNetwork
from repro.faults.registry import Rule
from repro.util import rand

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


@pytest.fixture
def trail():
    return AuditTrail(SimulatedEnclave())


@pytest.fixture
def console(trail):
    emnet = EmulatedNetwork(square_network())
    monitor = ReferenceMonitor(
        PrivilegeSpec.allow_all(), audit=trail, actor="tech-1"
    )
    return MonitoredConsole(monitor, emnet.console("r1")), monitor


class TestCommandTimeout:
    def test_timed_out_command_returns_denied_result(self, console, trail):
        handle, monitor = console
        faults.arm({"monitor.timeout": Rule(nth=2)}, seed=7)
        first = handle.execute("show ip route")
        second = handle.execute("show ip interface brief")
        assert first.ok
        assert not second.ok
        assert "timed out" in second.error
        assert "denied" in second.error
        assert monitor.stats.timeouts == 1

    def test_timeout_is_audited_as_denied_with_reason(self, console, trail):
        handle, _ = console
        faults.arm({"monitor.timeout": Rule(nth=1)}, seed=7)
        handle.execute("show ip route")
        (record,) = trail.records
        assert record.actor == "tech-1"
        assert record.command == "show ip route"
        assert not record.allowed
        assert "timed out" in record.outcome

    def test_timeout_record_is_mac_covered(self, console, trail):
        import dataclasses

        handle, _ = console
        handle.execute("show version")
        faults.arm({"monitor.timeout": Rule(nth=1)}, seed=7)
        handle.execute("show ip route")
        faults.disarm()
        handle.execute("show version")
        assert trail.verify()
        # Flipping the timeout record's verdict breaks the chain: the
        # denied-with-reason verdict is as tamper-evident as any other.
        trail.records[1] = dataclasses.replace(trail.records[1], allowed=True)
        assert not trail.verify()

    def test_session_continues_after_timeout(self, console, trail):
        handle, monitor = console
        faults.arm({"monitor.timeout": Rule(nth=1)}, seed=7)
        results = handle.run_script(
            ["show ip route", "configure terminal", "interface Gi0/0", "end"]
        )
        assert [result.ok for result in results] == [False, True, True, True]
        assert monitor.stats.commands == 4
        assert monitor.stats.timeouts == 1
        assert len(trail.records) == 4

    def test_timeouts_counted_in_metrics(self, console):
        handle, _ = console
        obs.reset()
        obs.enable()
        try:
            faults.arm(
                {"monitor.timeout": Rule(probability=1.0, times=3)}, seed=7
            )
            for _ in range(3):
                handle.execute("show ip route")
        finally:
            obs.disable()
        assert obs.registry().get("monitor.timeouts").value == 3

    def test_denied_command_consumes_no_budget(self, trail):
        # A command the privilege spec refuses never reaches the emulation
        # layer, so the timeout fault point (inside the budgeted execution)
        # is never even consulted.
        spec = PrivilegeSpec()  # deny by default
        emnet = EmulatedNetwork(square_network())
        monitor = ReferenceMonitor(spec, audit=trail)
        handle = MonitoredConsole(monitor, emnet.console("r1"))
        faults.arm({"monitor.timeout": Rule(nth=1)}, seed=7)
        result = handle.execute("show ip route")
        assert not result.ok
        assert "Authorization failed" in result.error
        assert faults.registry().calls("monitor.timeout") == 0
        assert monitor.stats.timeouts == 0

    def test_overbudget_wall_time_raises(self):
        # Post-hoc budget enforcement without the fault point: a console
        # whose execution burns more wall time than the budget allows.
        import time

        class SlowConsole:
            device = "r1"
            mode = "exec"

            def classify(self, command):
                return "view.route", "r1"

            def execute(self, command):
                time.sleep(0.03)
                return None  # discarded anyway

        monitor = ReferenceMonitor(
            PrivilegeSpec.allow_all(), command_timeout_s=0.01
        )
        result = monitor.execute(SlowConsole(), "show ip route")
        assert not result.ok
        assert "timed out" in result.error
        assert monitor.stats.timeouts == 1
