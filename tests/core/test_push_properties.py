"""Property: a push commits fully or rolls back byte-identically.

For arbitrary change sets over the square network and an arbitrary injected
failure (fatal apply, transient storm, mid-push crash, audit outage), the
production network always ends in exactly one of two serialized states:
the pre-push snapshot, or the snapshot with the whole change set applied.
There is no third outcome — the core claim of docs/ROBUSTNESS.md.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.config.apply import apply_changes
from repro.config.diffing import diff_networks
from repro.config.serializer import serialize_config
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.faults.registry import Rule
from repro.util import rand
from repro.util.errors import PushCrashed

from tests.fixtures import square_network

ROUTERS = ("r1", "r2", "r3", "r4")
INTERFACES = ("Gi0/0", "Gi0/1", "Gi0/2")

# One elementary mutation of the square network: (device, interface,
# field, value). Diffing against the pristine network turns a batch of
# these into a verified-change-set stand-in.
mutations = st.tuples(
    st.sampled_from(ROUTERS),
    st.sampled_from(INTERFACES),
    st.sampled_from(["description", "shutdown", "ospf_cost"]),
    st.integers(min_value=1, max_value=99),
)

fault_plans = st.one_of(
    st.none(),
    st.tuples(st.just("device.apply.fatal"), st.integers(1, 6)),
    st.tuples(st.just("device.apply.transient"), st.just(0)),  # storm
    st.tuples(st.just("push.crash"), st.integers(1, 6)),
    st.tuples(st.just("audit.append"), st.just(1)),
)


def _mutate(network, mutation):
    device, iface_name, fieldname, value = mutation
    iface = network.config(device).interface(iface_name)
    if fieldname == "description":
        iface.description = f"desc-{value}"
    elif fieldname == "shutdown":
        iface.shutdown = value % 2 == 0
    else:
        iface.ospf_cost = value


def _serialized(network):
    return {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }


@settings(max_examples=40, deadline=None)
@given(
    muts=st.lists(mutations, min_size=1, max_size=8),
    plan=fault_plans,
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_push_is_two_state(muts, plan, seed):
    production = square_network()
    modified = production.copy()
    for mutation in muts:
        _mutate(modified, mutation)
    changes = diff_networks(production.configs, modified.configs)
    assume(changes)

    pre_push = _serialized(production)
    fully_applied = production.copy()
    apply_changes(fully_applied.configs, changes)
    expected = _serialized(fully_applied)

    trail = AuditTrail(SimulatedEnclave())
    scheduler = ChangeScheduler()
    try:
        if plan is not None:
            point, nth = plan
            rule = (
                Rule(probability=1.0, times=999) if nth == 0 else Rule(nth=nth)
            )
            faults.arm({point: rule}, seed=seed)
        try:
            report = scheduler.push(production, changes, audit=trail)
        except PushCrashed as crash:
            faults.disarm()
            report = scheduler.resume(production, crash.journal, audit=trail)
    finally:
        faults.disarm()
        rand.reset()

    actual = _serialized(production)
    assert report.status in ("committed", "rolled-back")
    if report.status == "committed":
        assert actual == expected
    else:
        assert actual == pre_push
    assert trail.verify()
