"""JSON front-end, task-driven generator, and policy translator tests."""

import json

import pytest

from repro.control.builder import build_dataplane
from repro.core.privilege.generator import (
    TASK_PROFILES,
    escalate,
    generate_privilege_spec,
    profile_for_issue,
)
from repro.core.privilege.parser import dump_privilege_spec, load_privilege_spec
from repro.core.privilege.translator import policy_guard_rules
from repro.net.flow import Flow
from repro.policy.model import IsolationPolicy, ReachabilityPolicy
from repro.scenarios.issues import standard_issues
from repro.util.errors import PrivilegeError

from tests.fixtures import square_network

DOCUMENT = """
{
  "version": 1,
  "default": "deny",
  "rules": [
    {"effect": "allow", "action": "view.*", "resource": "r3",
     "comment": "read-only on the affected router"},
    {"effect": "allow", "action": "config.acl.entry", "resource": "r3:acl:*"}
  ],
  "policies": [
    {"kind": "isolation", "id": "isolate:h2->h3",
     "src_ip": "10.2.2.100", "dst_ip": "10.3.3.100", "protocol": "icmp"}
  ]
}
"""


class TestJsonFrontend:
    def test_load(self):
        spec, policies = load_privilege_spec(DOCUMENT)
        assert len(spec) == 2
        assert spec.allows("view.route", "r3")
        assert spec.allows("config.acl.entry", "r3:acl:FW")
        assert not spec.allows("config.acl.entry", "r1:acl:FW")
        assert len(policies) == 1
        assert policies[0].kind == "isolation"

    def test_dump_load_roundtrip(self):
        spec, policies = load_privilege_spec(DOCUMENT)
        text = dump_privilege_spec(spec, policies)
        spec2, policies2 = load_privilege_spec(text)
        assert spec2.rules == spec.rules
        assert spec2.default == spec.default
        assert policies2 == policies

    def test_dict_input(self):
        spec, _ = load_privilege_spec(json.loads(DOCUMENT))
        assert len(spec) == 2

    def test_invalid_json_rejected(self):
        with pytest.raises(PrivilegeError):
            load_privilege_spec("{not json")

    def test_missing_field_rejected(self):
        with pytest.raises(PrivilegeError, match="rule 0"):
            load_privilege_spec({"rules": [{"effect": "allow"}]})

    def test_unsupported_version_rejected(self):
        with pytest.raises(PrivilegeError):
            load_privilege_spec({"version": 99})

    def test_non_object_rejected(self):
        with pytest.raises(PrivilegeError):
            load_privilege_spec("[]")


class TestGenerator:
    def test_scope_grants_read_everywhere_in_scope(self):
        spec = generate_privilege_spec({"r1", "r2"}, "routing")
        assert spec.allows("view.config", "r1")
        assert spec.allows("view.route", "r2")
        assert not spec.allows("view.config", "r3")

    def test_profile_limits_write_actions(self):
        spec = generate_privilege_spec({"r1"}, "routing")
        assert spec.allows("config.ospf.network", "r1")
        assert spec.allows("config.static_route", "r1")
        assert not spec.allows("config.acl.entry", "r1")
        assert not spec.allows("config.interface.switchport", "r1")

    def test_vlan_profile(self):
        spec = generate_privilege_spec({"sw1"}, "vlan")
        assert spec.allows("config.interface.switchport", "sw1:Fa0/2")
        assert spec.allows("config.vlan", "sw1")
        assert not spec.allows("config.ospf.network", "sw1")

    def test_credentials_always_denied(self):
        for profile in TASK_PROFILES:
            spec = generate_privilege_spec({"r1"}, profile)
            assert not spec.allows("config.credential", "r1")

    def test_monitoring_profile_is_read_only(self):
        spec = generate_privilege_spec({"r1"}, "monitoring")
        assert spec.allows("view.config", "r1")
        assert not spec.allows("config.static_route", "r1")

    def test_unknown_profile_rejected(self):
        with pytest.raises(PrivilegeError):
            generate_privilege_spec({"r1"}, "wizardry")

    def test_profile_for_issue(self):
        issues = standard_issues("enterprise")
        assert profile_for_issue(issues["ospf"]) == "routing"
        assert profile_for_issue(issues["vlan"]) == "vlan"

    def test_escalation_adds_actions_keeps_guards(self):
        spec = generate_privilege_spec({"r1"}, "routing")
        assert not spec.allows("config.acl.entry", "r1")
        added = escalate(spec, {"r1"}, "acl")
        assert added > 0
        assert spec.allows("config.acl.entry", "r1")
        assert not spec.allows("config.credential", "r1")

    def test_escalate_unknown_profile_rejected(self):
        spec = generate_privilege_spec({"r1"}, "routing")
        with pytest.raises(PrivilegeError):
            escalate(spec, {"r1"}, "root")


class TestTranslator:
    def _policies(self):
        return [
            ReachabilityPolicy(
                "reach:h1->h2", Flow.make("10.1.1.100", "10.2.2.100", "icmp")
            ),
            IsolationPolicy(
                "isolate:h2->h3", Flow.make("10.2.2.100", "10.3.3.100", "icmp")
            ),
        ]

    def test_isolation_guard_denies_acl_on_blocker(self):
        network = square_network()
        rules = policy_guard_rules(self._policies(), build_dataplane(network))
        spec = generate_privilege_spec({"r3"}, "acl", extra_rules=rules)
        # The acl profile would normally allow ACL edits on r3, but r3
        # enforces the isolation policy, so the guard wins.
        assert not spec.allows("config.acl.entry", "r3:acl:PROTECT_H3")

    def test_reachability_guard_denies_transit_interfaces(self):
        network = square_network()
        rules = policy_guard_rules(self._policies(), build_dataplane(network))
        spec = generate_privilege_spec({"r1", "r2"}, "interface",
                                       extra_rules=rules)
        # h1->h2 rides r1:Gi0/0 <-> r2:Gi0/0; shutting those is denied.
        assert not spec.allows("config.interface.admin", "r1:Gi0/0")
        # A non-transit interface on the same device stays fixable.
        assert spec.allows("config.interface.admin", "r1:Gi0/1")

    def test_exempt_device_is_not_guarded(self):
        network = square_network()
        rules = policy_guard_rules(
            self._policies(), build_dataplane(network), exempt_devices=("r3",)
        )
        spec = generate_privilege_spec({"r3"}, "acl", extra_rules=rules)
        assert spec.allows("config.acl.entry", "r3:acl:PROTECT_H3")

    def test_guards_deduplicated(self):
        network = square_network()
        # Two policies over the same path should not duplicate rules.
        policies = self._policies() + [
            ReachabilityPolicy(
                "reach:h1->h2/tcp",
                Flow.make("10.1.1.100", "10.2.2.100", "tcp",
                          src_port=40000, dst_port=443),
            )
        ]
        rules = policy_guard_rules(policies, build_dataplane(network))
        keys = [(r.effect, r.action.pattern, r.resource.pattern) for r in rules]
        assert len(keys) == len(set(keys))
