"""Twin network tests: scoping, sanitisation, monitor, presentation."""

import pytest

from repro.core.privilege.ast import PrivilegeSpec
from repro.core.privilege.generator import generate_privilege_spec
from repro.core.twin.sanitize import leaked_secrets, sanitize_configs
from repro.core.twin.scoping import (
    scope_all,
    scope_heimdall,
    scope_neighbor,
    scope_path,
)
from repro.core.twin.twin import TwinNetwork
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.util.errors import EmulationError

from tests.fixtures import square_network


@pytest.fixture
def enterprise_vlan():
    production = build_enterprise_network()
    issue = standard_issues("enterprise")["vlan"]
    issue.inject(production)
    return production, issue


@pytest.fixture
def enterprise_ospf():
    production = build_enterprise_network()
    issue = standard_issues("enterprise")["ospf"]
    issue.inject(production)
    return production, issue


class TestScoping:
    def test_all_exposes_everything(self, enterprise_vlan):
        production, issue = enterprise_vlan
        assert scope_all(production, issue) == set(
            production.topology.device_names()
        )

    def test_neighbor_is_endpoints_plus_neighbors(self, enterprise_vlan):
        production, issue = enterprise_vlan
        scope = scope_neighbor(production, issue)
        assert scope == {"pc2", "sw2", "pc1", "sw1"}

    def test_neighbor_misses_remote_root_cause(self):
        # The ISP issue's root cause (gw) is multiple hops from both ticket
        # endpoints — the Figure 5c failure mode.
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["isp"]
        issue.inject(production)
        scope = scope_neighbor(production, issue)
        assert issue.root_cause_device not in scope

    def test_heimdall_contains_root_cause_for_standard_issues(self):
        for issue_id in ("ospf", "isp", "vlan"):
            production = build_enterprise_network()
            issue = standard_issues("enterprise")[issue_id]
            issue.inject(production)
            scope = scope_heimdall(production, issue)
            assert issue.root_cause_device in scope, issue_id

    def test_heimdall_smaller_than_all(self, enterprise_ospf):
        production, issue = enterprise_ospf
        heimdall = scope_heimdall(production, issue)
        everything = scope_all(production, issue)
        assert heimdall < everything

    def test_path_scope_subset_of_heimdall(self, enterprise_ospf):
        production, issue = enterprise_ospf
        assert scope_path(production, issue) <= scope_heimdall(production, issue)

    def test_heimdall_includes_l2_switches_for_vlan_issue(self, enterprise_vlan):
        production, issue = enterprise_vlan
        scope = scope_heimdall(production, issue)
        assert {"sw1", "sw2"} <= scope


class TestSanitisation:
    def test_secrets_stripped(self):
        network = square_network()
        clean = sanitize_configs(network.configs)
        for config in clean.values():
            assert config.enable_secret is None
            assert config.vty_password is None
            assert config.snmp_community is None

    def test_behavioural_state_untouched(self):
        network = square_network()
        clean = sanitize_configs(network.configs)
        assert clean["r3"].acls.keys() == network.config("r3").acls.keys()
        assert clean["r1"].ospf == network.config("r1").ospf

    def test_originals_not_mutated(self):
        network = square_network()
        sanitize_configs(network.configs)
        assert network.config("r1").enable_secret == "secret-r1"

    def test_leak_detector(self):
        network = square_network()
        assert leaked_secrets(network.configs, "nothing here") == []
        leaks = leaked_secrets(network.configs, "contains secret-r2 text")
        assert leaks == [("r2", "enable_secret", "secret-r2")]


class TestTwinNetwork:
    def _twin(self, production, issue, spec=None, strategy="heimdall"):
        if spec is None:
            spec = PrivilegeSpec.allow_all()
        return TwinNetwork(production, issue, spec, strategy=strategy)

    def test_twin_never_leaks_secrets_via_console(self, enterprise_ospf):
        production, issue = enterprise_ospf
        twin = self._twin(production, issue)
        console = twin.console("dist1")
        output = console.execute("show running-config").output
        assert leaked_secrets(production.configs, output) == []

    def test_out_of_scope_device_unreachable(self, enterprise_vlan):
        production, issue = enterprise_vlan
        twin = self._twin(production, issue)
        assert "isp" not in twin.scope
        with pytest.raises(EmulationError):
            twin.console("isp")

    def test_twin_edits_do_not_touch_production(self, enterprise_vlan):
        production, issue = enterprise_vlan
        twin = self._twin(production, issue)
        console = twin.console("sw2")
        for command in ("configure terminal", "interface Fa0/2",
                        "switchport access vlan 10", "end"):
            console.execute(command)
        assert production.config("sw2").interface("Fa0/2").access_vlan == 20

    def test_issue_reproduces_inside_twin(self, enterprise_vlan):
        production, issue = enterprise_vlan
        twin = self._twin(production, issue)
        assert not twin.issue_resolved()

    def test_changes_tracked_relative_to_baseline(self, enterprise_vlan):
        production, issue = enterprise_vlan
        twin = self._twin(production, issue)
        assert twin.changes() == []
        console = twin.console("sw2")
        for command in ("configure terminal", "interface Fa0/2",
                        "switchport access vlan 10", "end"):
            console.execute(command)
        (change,) = twin.changes()
        assert change.kind == "interface.access_vlan"
        assert change.device == "sw2"

    def test_monitor_denies_out_of_profile_actions(self, enterprise_vlan):
        production, issue = enterprise_vlan
        spec = generate_privilege_spec({"sw1", "sw2", "pc1", "pc2"}, "vlan")
        twin = self._twin(production, issue, spec=spec)
        console = twin.console("sw2")
        console.execute("configure terminal")
        result = console.execute("hostname evil")
        assert not result.ok
        assert "Privilege_msp" in result.error
        assert twin.monitor.stats.denied == 1

    def test_presentation_topology_limited_to_scope(self, enterprise_vlan):
        production, issue = enterprise_vlan
        twin = self._twin(production, issue)
        view = twin.topology_view()
        assert set(view.device_names()) == set(twin.scope)
        for dev_a, _ifa, dev_b, _ifb in view.links:
            assert dev_a in twin.scope and dev_b in twin.scope

    def test_unknown_strategy_rejected(self, enterprise_vlan):
        production, issue = enterprise_vlan
        with pytest.raises(EmulationError):
            self._twin(production, issue, strategy="psychic")

    def test_denied_command_never_mutates_twin(self, enterprise_vlan):
        production, issue = enterprise_vlan
        twin = self._twin(production, issue, spec=PrivilegeSpec.deny_all())
        console = twin.console("sw2")
        console.execute("configure terminal")  # mode transition: allowed
        result = console.execute("interface Fa0/2")
        # Entering an interface context is a mode transition; the write
        # itself must be refused.
        result = console.execute("switchport access vlan 10")
        assert not result.ok
        assert twin.changes() == []
