"""Enforcer tests: enclave, audit trail, change verifier, scheduler."""

import dataclasses

import pytest

from repro.config.diffing import diff_networks
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import (
    SimulatedEnclave,
    expected_measurement,
    verify_attestation,
)
from repro.core.enforcer.scheduler import CATEGORY_ORDER, ChangeScheduler
from repro.core.enforcer.verifier import ChangeVerifier
from repro.core.privilege.ast import PrivilegeSpec
from repro.net.flow import Flow
from repro.policy.mining import mine_policies
from repro.policy.model import IsolationPolicy, ReachabilityPolicy
from repro.util.clock import SimulatedClock

from tests.fixtures import square_network


class TestEnclave:
    def test_measurement_reflects_source(self):
        assert SimulatedEnclave().measurement == expected_measurement()

    def test_sealed_keys_bound_to_measurement(self):
        genuine = SimulatedEnclave()
        tampered = SimulatedEnclave(measurement="deadbeef")
        assert genuine.seal_key("audit") != tampered.seal_key("audit")
        assert genuine.seal_key("audit") == SimulatedEnclave().seal_key("audit")

    def test_attestation_accepts_genuine(self):
        enclave = SimulatedEnclave()
        report = enclave.attest(nonce="n-123")
        assert verify_attestation(report, expected_measurement())

    def test_attestation_rejects_tampered_build(self):
        tampered = SimulatedEnclave(measurement="deadbeef")
        report = tampered.attest(nonce="n-123")
        assert not verify_attestation(report, expected_measurement())

    def test_attestation_rejects_forged_quote(self):
        enclave = SimulatedEnclave()
        report = enclave.attest(nonce="n-123")
        forged = dataclasses.replace(report, nonce="n-456")
        assert not verify_attestation(forged, expected_measurement())


@pytest.fixture
def trail():
    clock = SimulatedClock()
    trail = AuditTrail(SimulatedEnclave(), clock=clock)
    clock.advance(1.0)
    trail.record("tech-1", "r1", "show ip route", "view.route", "r1", True, "ok")
    clock.advance(1.0)
    trail.record("tech-1", "r1", "shutdown", "config.interface.admin",
                 "r1:Gi0/0", False, "denied")
    trail.record("tech-1", "r2", "ping 10.0.0.1", "probe.ping", "r2", True, "ok")
    return trail


class TestAuditTrail:
    def test_chain_verifies(self, trail):
        assert trail.verify()

    def test_tampered_content_detected(self, trail):
        entry = trail.records[1]
        trail.records[1] = dataclasses.replace(entry, allowed=True)
        assert not trail.verify()

    def test_deleted_record_detected(self, trail):
        del trail.records[1]
        assert not trail.verify()

    def test_reordered_records_detected(self, trail):
        trail.records[1], trail.records[2] = trail.records[2], trail.records[1]
        assert not trail.verify()

    def test_truncation_from_tail_is_undetectable_by_design(self, trail):
        # Chain MACs protect prefix integrity; tail truncation requires an
        # external anchor (e.g. publishing the latest MAC) — document the
        # boundary honestly.
        del trail.records[-1]
        assert trail.verify()

    def test_wrong_key_rejected(self, trail):
        other = SimulatedEnclave(measurement="deadbeef")
        assert not trail.verify(key=other.seal_key("audit-trail"))

    def test_timestamps_from_clock(self, trail):
        assert trail.records[0].timestamp == 1.0
        assert trail.records[1].timestamp == 2.0

    def test_query_by_decision(self, trail):
        assert len(trail.denied()) == 1
        assert trail.denied()[0].command == "shutdown"

    def test_query_by_device_and_prefix(self, trail):
        assert len(trail.query(device="r1")) == 2
        assert len(trail.query(action_prefix="probe.")) == 1
        assert len(trail.query(actor="nobody")) == 0

    def test_export(self, trail):
        exported = trail.export()
        assert len(exported) == 3
        assert exported[0]["command"] == "show ip route"


def _policies():
    return [
        ReachabilityPolicy(
            "reach:h1->h2", Flow.make("10.1.1.100", "10.2.2.100", "icmp")
        ),
        IsolationPolicy(
            "isolate:h2->h3", Flow.make("10.2.2.100", "10.3.3.100", "icmp")
        ),
    ]


def _changes(mutate):
    """Diff produced by applying ``mutate`` to a copy of the square network."""
    production = square_network()
    modified = production.copy()
    mutate(modified)
    return production, diff_networks(production.configs, modified.configs)


class TestChangeVerifier:
    def test_benign_change_approved(self):
        production, changes = _changes(
            lambda net: setattr(
                net.config("r1").interface("Gi0/0"), "description", "updated"
            )
        )
        decision = ChangeVerifier(_policies()).verify(production, changes)
        assert decision.approved

    def test_policy_violating_change_rejected(self):
        def remove_protection(net):
            net.config("r3").interface("Gi0/2").access_group_out = None

        production, changes = _changes(remove_protection)
        decision = ChangeVerifier(_policies()).verify(production, changes)
        assert not decision.approved
        violated = {
            r.policy.policy_id for r in decision.new_policy_violations
        }
        assert violated == {"isolate:h2->h3"}

    def test_privilege_violating_change_rejected(self):
        production, changes = _changes(
            lambda net: setattr(net.config("r1"), "enable_secret", "evil")
        )
        spec = PrivilegeSpec.allow_all()
        spec.prepend_rule("deny", "config.credential", "*")
        decision = ChangeVerifier(_policies(), spec).verify(production, changes)
        assert not decision.approved
        assert len(decision.privilege_violations) == 1

    def test_preexisting_violations_do_not_block_fix(self):
        # Break reachability in production, then verify a change set that
        # does NOT fix it but is otherwise harmless.
        production = square_network()
        production.config("r1").interface("Gi0/2").shutdown = True
        modified = production.copy()
        modified.config("r2").interface("Gi0/2").description = "touched"
        changes = diff_networks(production.configs, modified.configs)
        decision = ChangeVerifier(_policies()).verify(production, changes)
        assert decision.approved
        assert len(decision.preexisting_violations) == 1

    def test_simulation_does_not_mutate_production(self):
        production, changes = _changes(
            lambda net: setattr(
                net.config("r1").interface("Gi0/0"), "shutdown", True
            )
        )
        ChangeVerifier(_policies()).verify(production, changes)
        assert not production.config("r1").interface("Gi0/0").shutdown

    def test_summary_strings(self):
        production, changes = _changes(
            lambda net: setattr(
                net.config("r1").interface("Gi0/0"), "description", "x"
            )
        )
        decision = ChangeVerifier(_policies()).verify(production, changes)
        assert "approved" in decision.summary()


class TestScheduler:
    def test_schedule_is_permutation(self):
        import ipaddress

        from repro.config.model import StaticRoute

        def mutate(net):
            net.config("r1").interface("Gi0/0").shutdown = True
            net.config("r2").static_routes.append(
                StaticRoute(
                    prefix=ipaddress.IPv4Network("172.16.0.0/16"),
                    next_hop=ipaddress.IPv4Address("10.0.12.2"),
                )
            )
            net.config("r3").acls["PROTECT_H3"].entries.reverse()

        production, changes = _changes(mutate)
        batches = ChangeScheduler().schedule(changes)
        flattened = [change for batch in batches for change in batch]
        assert sorted(flattened, key=str) == sorted(changes, key=str)

    def test_category_order_respected(self):
        def mutate(net):
            net.config("r3").acls["PROTECT_H3"].entries.reverse()  # acl
            net.config("r1").interface("Gi0/0").shutdown = True  # interface

        production, changes = _changes(mutate)
        batches = ChangeScheduler().schedule(changes)
        categories = [batch[0].category for batch in batches]
        assert categories == sorted(
            categories, key=CATEGORY_ORDER.index
        )
        assert categories.index("interface") < categories.index("acl")

    def test_push_applies_all_changes(self):
        production, changes = _changes(
            lambda net: setattr(
                net.config("r1").interface("Gi0/0"), "description", "pushed"
            )
        )
        report = ChangeScheduler().push(production, changes)
        assert report.change_count == 1
        assert (
            production.config("r1").interface("Gi0/0").description == "pushed"
        )

    def test_push_counts_transient_violations_for_naive_order(self):
        # Renumber the r1-r2 link. The safe order updates both ends in one
        # interface batch (subnet always consistent); the naive per-device
        # order leaves the two ends in different subnets in between, which
        # breaks OSPF adjacency and h1->h2 reachability. The ring detour is
        # disabled and the OSPF network statements cover both subnets, so
        # only the link renumbering itself is in play.
        import ipaddress

        from repro.config.diffing import diff_networks
        from repro.config.model import OspfNetwork
        from repro.policy.verification import PolicyVerifier

        production = square_network()
        # No detour: the r3-r4 link is down throughout.
        production.config("r3").interface("Gi0/1").shutdown = True
        # A covering statement so renumbering needs no OSPF change.
        for device in ("r1", "r2"):
            production.config(device).ospf.networks.append(
                OspfNetwork(ipaddress.IPv4Network("10.0.0.0/16"))
            )

        modified = production.copy()
        modified.config("r1").interface("Gi0/0").address = (
            ipaddress.IPv4Interface("10.0.99.1/24")
        )
        modified.config("r2").interface("Gi0/0").address = (
            ipaddress.IPv4Interface("10.0.99.2/24")
        )
        changes = diff_networks(production.configs, modified.configs)
        verifier = PolicyVerifier(_policies())

        scheduler = ChangeScheduler()
        safe_report = scheduler.push(
            production.copy(), changes, policy_verifier=verifier
        )
        naive_report = scheduler.push(
            production.copy(), changes,
            policy_verifier=verifier,
            batches=scheduler.naive_order(changes),
        )
        assert safe_report.transient_violations == 0
        assert naive_report.transient_violations > 0


class TestAuditAnchoring:
    def _trail(self, n=4):
        trail = AuditTrail(SimulatedEnclave())
        for i in range(n):
            trail.record(f"t{i}", "r1", f"cmd {i}", "view.route", "r1", True)
        return trail

    def test_anchor_verifies_on_untouched_trail(self):
        trail = self._trail()
        anchor = trail.anchor()
        assert trail.verify_anchor(anchor)

    def test_anchor_allows_later_growth(self):
        trail = self._trail()
        anchor = trail.anchor()
        trail.record("t9", "r2", "more", "view.route", "r2", True)
        assert trail.verify_anchor(anchor)

    def test_tail_truncation_detected_with_anchor(self):
        # The chain alone cannot see tail truncation; the anchor can.
        trail = self._trail()
        anchor = trail.anchor()
        del trail.records[-1]
        assert trail.verify()  # chain-only check is blind here
        assert not trail.verify_anchor(anchor)

    def test_prefix_rewrite_detected(self):
        trail = self._trail()
        anchor = trail.anchor()
        trail.records[1] = dataclasses.replace(
            trail.records[1], command="forged"
        )
        assert not trail.verify_anchor(anchor)

    def test_empty_anchor(self):
        trail = AuditTrail(SimulatedEnclave())
        anchor = trail.anchor()
        assert trail.verify_anchor(anchor)
        trail.record("t", "r1", "cmd", "view.route", "r1", True)
        assert trail.verify_anchor(anchor)
