"""End-to-end Heimdall tests: the full Figure 4 workflow, plus extensions."""

import pytest

from repro.core.heimdall import Heimdall
from repro.core.privilege.ast import PrivilegeSpec
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.util.errors import PrivilegeError


def make(issue_id):
    """A broken production network, its issue, and a Heimdall over it."""
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    issue = standard_issues("enterprise")[issue_id]
    issue.inject(production)
    heimdall = Heimdall(production, policies=policies)
    return production, issue, heimdall


class TestTicketResolution:
    @pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
    def test_prepared_fix_resolves_ticket(self, issue_id):
        production, issue, heimdall = make(issue_id)
        assert issue.is_broken(production)
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        assert session.twin.issue_resolved()
        outcome = session.submit()
        assert outcome.approved
        assert outcome.resolved
        assert not issue.is_broken(production)

    def test_no_denied_commands_for_legitimate_fix(self):
        production, issue, heimdall = make("ospf")
        session = heimdall.open_ticket(issue)
        results = session.run_fix_script(issue.fix_script)
        assert all(result.ok for result in results)
        assert session.twin.monitor.stats.denied == 0

    def test_clock_breakdown_has_heimdall_steps(self):
        production, issue, heimdall = make("isp")
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        for step in ("generate privilege", "twin setup",
                     "perform operations", "verify changes"):
            assert step in outcome.breakdown, step

    def test_audit_covers_every_command(self):
        production, issue, heimdall = make("vlan")
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        session.submit()
        command_records = heimdall.audit.query(actor=session.session_id)
        # every technician command + verify + per-change commit records
        assert len(heimdall.audit) >= session.command_count
        assert heimdall.audit.verify()
        assert command_records  # session-level records exist

    def test_submit_without_changes_approves_nothing(self):
        production, issue, heimdall = make("ospf")
        session = heimdall.open_ticket(issue)
        outcome = session.submit()
        assert outcome.approved
        assert outcome.changes == []
        assert not outcome.resolved  # nothing was fixed

    def test_abandon_imports_nothing(self):
        production, issue, heimdall = make("vlan")
        before = production.config("sw2").interface("Fa0/2").access_vlan
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        session.abandon("test")
        assert production.config("sw2").interface("Fa0/2").access_vlan == before


class TestMaliciousChangesCaught:
    def test_smuggled_acl_change_rejected(self):
        """Figure 6: fix the ticket but also open pc LAN -> db1."""
        production, issue, heimdall = make("ospf")
        session = heimdall.open_ticket(issue, profile="connectivity")
        session.run_fix_script(issue.fix_script)
        # dist1 is in scope; try to open the database to the staff VLAN.
        console = session.console("dist1")
        for command in (
            "configure terminal",
            "ip access-list extended DB_PROTECT",
            "permit ip 10.5.10.0 0.0.0.255 host 10.7.1.100",
            "end",
        ):
            console.execute(command)
        # Depending on guards, the monitor may already deny; if anything got
        # through to the twin, the enforcer must catch it.
        outcome = session.submit()
        assert not outcome.approved or not any(
            change.kind.startswith("acl") for change in outcome.changes
        )
        # The production database protection is intact either way.
        acl = production.config("dist1").acl("DB_PROTECT")
        assert all(
            "10.5.10.0" not in entry.to_text() or entry.action == "deny"
            for entry in acl.entries
        )

    def test_careless_shutdown_rejected(self):
        """Figure 3: fat-finger a core interface while fixing the ticket."""
        production, issue, heimdall = make("ospf")
        session = heimdall.open_ticket(issue, profile="connectivity")
        session.run_fix_script(issue.fix_script)
        console = session.console("dist2")
        for command in ("configure terminal", "interface Gi0/0",
                        "shutdown", "end"):
            console.execute(command)
        outcome = session.submit()
        # Either the monitor denied the shutdown (guarded transit interface)
        # or the enforcer rejected the change set.
        monitor_denied = session.twin.monitor.stats.denied > 0
        assert monitor_denied or not outcome.approved
        assert not production.config("dist2").interface("Gi0/0").shutdown


class TestEscalation:
    def test_valid_escalation_grants_actions(self):
        production, issue, heimdall = make("ospf")  # routing profile
        session = heimdall.open_ticket(issue)
        assert not session.privilege_spec.allows(
            "config.acl.entry", issue.root_cause_device
        )
        session.request_escalation("acl", "suspect a filtering problem")
        # Guards still protect enforcement points, but unguarded devices in
        # scope gained ACL rights.
        unguarded = sorted(session.twin.scope)[0]
        assert session.escalations == ["acl"]

    def test_invalid_escalation_refused_and_audited(self):
        production, issue, heimdall = make("vlan")  # vlan profile
        session = heimdall.open_ticket(issue)
        with pytest.raises(PrivilegeError):
            session.request_escalation("acl", "give me more")
        refused = heimdall.audit.query(
            action_prefix="privilege.escalation", allowed=False
        )
        assert len(refused) == 1

    def test_unknown_profile_refused(self):
        production, issue, heimdall = make("ospf")
        session = heimdall.open_ticket(issue)
        with pytest.raises(PrivilegeError):
            session.request_escalation("root-everything")


class TestEmergencyMode:
    def test_emergency_console_hits_production_with_mediation(self):
        production, issue, heimdall = make("isp")
        spec = PrivilegeSpec(default="deny")
        spec.add_rule("allow", "view.*", "gw")
        spec.add_rule("allow", "config.static_route", "gw")
        spec.add_rule("allow", "mode.transition", "gw")
        console = heimdall.emergency_console("gw", spec)
        for command in (
            "configure terminal",
            "ip route 0.0.0.0 0.0.0.0 203.0.113.6",
            "no ip route 0.0.0.0 0.0.0.0 203.0.113.1",
            "end",
        ):
            result = console.execute(command)
            assert result.ok, result.error
        assert not issue.is_broken(production)

    def test_emergency_console_still_enforces_privileges(self):
        production, issue, heimdall = make("isp")
        spec = PrivilegeSpec(default="deny")
        spec.add_rule("allow", "view.*", "gw")
        console = heimdall.emergency_console("gw", spec)
        console.execute("configure terminal")
        result = console.execute("ip route 10.99.0.0 255.255.0.0 203.0.113.1")
        assert not result.ok
        assert production.config("gw").static_routes == [
            route for route in production.config("gw").static_routes
        ]
        emergency_records = heimdall.audit.query(actor="emergency")
        assert emergency_records
