"""Replicated tamper-evident audit chains (repro.core.enforcer.audit)."""

import json
from dataclasses import replace

import pytest

from repro import faults, obs
from repro.core.enforcer.audit import (
    AuditTrail,
    ReplicatedAuditTrail,
    derive_chain_key,
    export_chains,
    first_broken_record,
    verify_export,
)
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.faults.registry import Rule
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import AuditQuorumError


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def make_trail(replicas=3, quorum=None):
    return ReplicatedAuditTrail(
        SimulatedEnclave(), clock=SimulatedClock(),
        replicas=replicas, quorum=quorum,
    )


def write(trail, count=3):
    for index in range(count):
        trail.record(
            actor="S-0001", device="r1", command=f"command-{index}",
            action="monitor.execute", resource="device:r1", allowed=True,
            outcome="ok",
        )


def forge(replica):
    """Rewrite the replica's newest record without its key (attacker model)."""
    newest = replica.records[-1]
    replica.records[-1] = replace(newest, outcome="forged")


class TestFanOut:
    def test_every_append_reaches_every_replica(self):
        trail = make_trail()
        write(trail, count=3)
        assert [len(replica) for replica in trail.replicas] == [3, 3, 3]
        assert len(trail) == 3

    def test_replicas_chain_under_distinct_keys(self):
        trail = make_trail()
        write(trail, count=1)
        macs = {replica.records[0].mac for replica in trail.replicas}
        assert len(macs) == 3  # same content, three independent chains
        for replica in trail.replicas:
            assert replica.verify()

    def test_clean_cross_check_is_intact(self):
        trail = make_trail()
        write(trail)
        verdict = trail.cross_check()
        assert verdict.status == "intact"
        assert verdict.agreeing == verdict.replicas == 3
        assert verdict.flagged == ()
        assert trail.verify()

    def test_default_quorum_is_a_majority(self):
        assert make_trail(replicas=3).quorum == 2
        assert make_trail(replicas=5).quorum == 3
        assert make_trail(replicas=1).quorum == 1

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            make_trail(replicas=0)
        with pytest.raises(ValueError):
            make_trail(replicas=3, quorum=4)

    def test_reads_serve_the_majority_content(self):
        trail = make_trail()
        write(trail, count=2)
        assert [record.command for record in trail.records] == [
            "command-0", "command-1",
        ]
        assert len(trail.query(actor="S-0001")) == 2
        assert trail.denied() == []
        length, head = trail.anchor()
        assert length == 2 and head


class TestFaultInjection:
    def test_tampered_minority_is_flagged_and_served_around(self):
        faults.arm({"audit.replica.tamper": Rule(nth=1)}, seed=7)
        trail = make_trail()
        write(trail, count=2)
        faults.disarm()
        verdict = trail.cross_check()
        assert verdict.status == "degraded"
        assert verdict.agreeing == 2
        (index, reason), = verdict.flagged
        assert index == 0
        assert "chain broken at record" in reason
        # Reads keep working on the agreeing majority.
        assert len(trail.records) == 2

    def test_partitioned_replica_diverges(self):
        # nth=2 hits replica 1 on the first fan-out: it misses append 0,
        # then accepts append 1 under index 0 — self-valid but diverged.
        faults.arm({"audit.replica.partition": Rule(nth=2)}, seed=7)
        trail = make_trail()
        write(trail, count=2)
        faults.disarm()
        verdict = trail.cross_check()
        assert verdict.status == "degraded"
        (index, reason), = verdict.flagged
        assert index == 1
        assert "diverged at record 0" in reason
        assert trail.replicas[1].verify()  # its own chain is still valid

    def test_crashed_minority_degrades_but_serves(self):
        faults.arm({"audit.replica.crash": Rule(nth=1)}, seed=7)
        trail = make_trail()
        write(trail, count=2)
        faults.disarm()
        verdict = trail.cross_check()
        assert verdict.status == "degraded"
        (index, reason), = verdict.flagged
        assert index == 0
        assert "crashed at 0 records" in reason
        assert len(trail.records) == 2

    def test_total_crash_fails_the_append_closed(self):
        faults.arm(
            {"audit.replica.crash": Rule(probability=1.0, times=99)}, seed=7,
        )
        trail = make_trail()
        with pytest.raises(AuditQuorumError):
            write(trail, count=1)
        faults.disarm()
        verdict = trail.cross_check()
        assert verdict.status == "lost"
        assert not trail.verify()
        with pytest.raises(AuditQuorumError):
            trail.records
        with pytest.raises(AuditQuorumError):
            trail.query(actor="S-0001")


class TestQuorumLoss:
    def test_forged_majority_loses_quorum_and_reads_fail_closed(self):
        trail = make_trail()
        write(trail, count=2)
        forge(trail.replicas[0])
        forge(trail.replicas[1])
        verdict = trail.cross_check()
        assert verdict.status == "lost"
        assert verdict.agreeing == 1
        with pytest.raises(AuditQuorumError):
            trail.export()

    def test_forged_minority_only_degrades(self):
        trail = make_trail()
        write(trail, count=2)
        forge(trail.replicas[2])
        verdict = trail.cross_check()
        assert verdict.status == "degraded"
        assert verdict.reference in (0, 1)
        assert "degraded" in verdict.summary()


class TestOfflineVerification:
    def test_derived_key_matches_the_sealed_chain_key(self):
        trail = make_trail()
        for index, replica in enumerate(trail.replicas):
            derived = derive_chain_key(
                trail.enclave.measurement, f"audit-replica-{index}"
            )
            assert derived == replica._key

    def test_clean_export_verifies_intact(self):
        trail = make_trail()
        write(trail)
        result = verify_export(export_chains(trail))
        assert result["status"] == "intact"
        assert result["agreeing"] == 3
        assert all(replica["intact"] for replica in result["replicas"])

    def test_exports_are_byte_identical_across_clean_runs(self):
        def run():
            trail = make_trail()
            write(trail, count=4)
            return json.dumps(export_chains(trail), sort_keys=True)

        assert run() == run()

    def test_corrupted_export_record_is_located(self):
        trail = make_trail()
        write(trail)
        payload = export_chains(trail)
        payload["replicas"][1]["records"][1]["outcome"] = "forged"
        result = verify_export(payload)
        assert result["status"] == "degraded"
        broken = result["replicas"][1]
        assert not broken["intact"]
        assert broken["first_broken"] == 1

    def test_corrupting_a_quorum_loses_the_export(self):
        trail = make_trail()
        write(trail)
        payload = export_chains(trail)
        for chain in payload["replicas"][:2]:
            chain["records"][0]["outcome"] = "forged"
        assert verify_export(payload)["status"] == "lost"

    def test_tampered_build_measurement_verifies_nothing(self):
        trail = make_trail()
        write(trail)
        payload = export_chains(trail)
        payload["measurement"] = "a-different-enforcer-build"
        result = verify_export(payload)
        assert result["status"] == "lost"
        assert all(not replica["intact"] for replica in result["replicas"])

    def test_single_trail_exports_as_one_chain(self):
        trail = AuditTrail(SimulatedEnclave(), clock=SimulatedClock())
        trail.record(
            actor="S-0001", device="r1", command="show run",
            action="show.config", resource="device:r1", allowed=True,
        )
        payload = export_chains(trail)
        assert payload["quorum"] == 1
        assert len(payload["replicas"]) == 1
        assert verify_export(payload)["status"] == "intact"
        payload["replicas"][0]["records"][0]["allowed"] = False
        assert verify_export(payload)["status"] == "lost"

    def test_first_broken_record_walks_the_rebuilt_links(self):
        trail = AuditTrail(SimulatedEnclave(), clock=SimulatedClock())
        for index in range(3):
            trail.record(
                actor="S-0001", device="r1", command=f"c-{index}",
                action="monitor.execute", resource="device:r1", allowed=True,
            )
        records = [record.to_dict() for record in trail.records]
        assert first_broken_record(records, trail._key) is None
        records[2]["command"] = "forged"
        assert first_broken_record(records, trail._key) == 2
