"""Concurrent session management: leases, drift classification, audit.

docs/ARCHITECTURE.md "Concurrency model". The LeaseManager tests are pure
unit tests; the SessionManager tests drive real tickets against the
enterprise scenario, sequentially interleaved so every drift classification
is deterministic (the threaded interleavings live in
tests/integration/test_concurrent_sessions.py and the stress bench).
"""

import threading

import pytest

from repro import faults, obs
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.heimdall import Heimdall
from repro.core.sessions import LeaseManager, SessionManager
from repro.faults.registry import Rule
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import FixStep, standard_issues
from repro.util import rand
from repro.util.errors import LeaseError, LeaseTimeout, SessionError


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


@pytest.fixture
def deployment():
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    return production, Heimdall(production, policies=policies)


class TestLeaseManager:
    def test_shared_reads_coexist(self):
        leases = LeaseManager()
        leases.acquire("a", read=("r1", "r2"))
        leases.acquire("b", read=("r1",))
        assert leases.holders("r1") == (None, frozenset({"a", "b"}))

    def test_writer_excludes_other_writers(self):
        leases = LeaseManager()
        leases.acquire("a", write=("r1",))
        with pytest.raises(LeaseTimeout) as excinfo:
            leases.acquire("b", write=("r1",), timeout_s=0.01)
        assert excinfo.value.elements == ("r1",)

    def test_writer_excludes_readers_and_vice_versa(self):
        leases = LeaseManager()
        leases.acquire("a", read=("r1",))
        with pytest.raises(LeaseTimeout):
            leases.acquire("b", write=("r1",), timeout_s=0.01)
        leases.release("a")
        leases.acquire("b", write=("r1",))
        with pytest.raises(LeaseTimeout):
            leases.acquire("c", read=("r1",), timeout_s=0.01)

    def test_acquisition_is_all_or_nothing(self):
        leases = LeaseManager()
        leases.acquire("a", write=("r2",))
        # b wants r1 (free) and r2 (held): it must end up holding neither.
        with pytest.raises(LeaseTimeout):
            leases.acquire("b", write=("r1", "r2"), timeout_s=0.01)
        assert leases.holders("r1") == (None, frozenset())

    def test_write_wins_over_read_in_one_request(self):
        leases = LeaseManager()
        leases.acquire("a", read=("r1",), write=("r1",))
        assert leases.holders("r1") == ("a", frozenset())

    def test_release_wakes_blocked_waiter(self):
        leases = LeaseManager()
        leases.acquire("a", write=("r1",))
        got = []

        def wait_for_lease():
            leases.acquire("b", write=("r1",), timeout_s=30)
            got.append(True)

        waiter = threading.Thread(target=wait_for_lease)
        waiter.start()
        leases.release("a")
        waiter.join(timeout=30)
        assert got == [True]
        assert leases.holders("r1") == ("b", frozenset())

    def test_try_extend_is_non_blocking(self):
        leases = LeaseManager()
        leases.acquire("a", read=("r1",))
        leases.acquire("b", write=("r2",))
        assert leases.try_extend("a", read=("r3",)) is True
        assert not leases.try_extend("a", read=("r2",))
        assert leases.holders("r3") == (None, frozenset({"a"}))

    def test_reacquire_by_same_owner_is_idempotent(self):
        leases = LeaseManager()
        leases.acquire("a", write=("r1",))
        leases.acquire("a", write=("r1",), read=("r2",))
        assert leases.holders("r1") == ("a", frozenset())


class TestSessionManagerValidation:
    def test_unknown_on_stale_policy_rejected(self, deployment):
        _, heimdall = deployment
        with pytest.raises(SessionError):
            SessionManager(heimdall, on_stale="ignore")

    def test_unknown_mode_rejected(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        with pytest.raises(SessionError):
            manager.open_ticket(issue, mode="pessimistic")


class TestSameIssueConflict:
    def test_second_candidate_never_imports(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)
        manager = SessionManager(heimdall)

        # Both sessions branch from the broken base before either submits.
        session_a = manager.open_ticket(issue, mode="optimistic")
        session_b = manager.open_ticket(issue, mode="optimistic")
        session_a.run_fix_script(issue.fix_script)
        session_b.run_fix_script(issue.fix_script)

        outcome_a = session_a.submit()
        outcome_b = session_b.submit()
        assert outcome_a.status == "clean" and outcome_a.imported
        assert outcome_b.status == "conflict" and outcome_b.rejected
        assert not outcome_b.imported
        assert outcome_b.ticket_outcome is None
        assert set(outcome_b.drifted) & set(
            step.device for step in issue.fix_script
        )
        assert issue.is_resolved(production)
        assert heimdall.audit.verify()

    def test_conflict_writes_denied_audit_record(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session_a = manager.open_ticket(issue, mode="optimistic")
        session_b = manager.open_ticket(issue, mode="optimistic")
        session_a.run_fix_script(issue.fix_script)
        session_b.run_fix_script(issue.fix_script)
        session_a.submit()
        session_b.submit()
        denied = [
            record for record in heimdall.audit.records
            if record.action == "sessions.conflict"
        ]
        assert len(denied) == 1
        assert not denied[0].allowed
        assert heimdall.audit.verify()


class TestStaleBase:
    def test_disjoint_drift_rebases_and_lands(self, deployment):
        production, heimdall = deployment
        issues = standard_issues("enterprise")
        issues["ospf"].inject(production)
        issues["isp"].inject(production)
        manager = SessionManager(heimdall)

        session_a = manager.open_ticket(issues["ospf"], mode="optimistic")
        session_b = manager.open_ticket(issues["isp"], mode="optimistic")
        session_a.run_fix_script(issues["ospf"].fix_script)
        session_b.run_fix_script(issues["isp"].fix_script)

        assert session_a.submit().status == "clean"
        outcome_b = session_b.submit()
        assert outcome_b.status == "rebased"
        assert outcome_b.imported
        assert "dist1" in outcome_b.drifted  # ospf's fix landed in between
        assert issues["isp"].is_resolved(production)
        rebase_records = [
            record for record in heimdall.audit.records
            if record.action == "sessions.rebase"
        ]
        assert len(rebase_records) == 1 and rebase_records[0].allowed

    def test_reject_policy_refuses_stale_base(self, deployment):
        production, heimdall = deployment
        issues = standard_issues("enterprise")
        issues["ospf"].inject(production)
        issues["isp"].inject(production)
        manager = SessionManager(heimdall, on_stale="reject")

        session_a = manager.open_ticket(issues["ospf"], mode="optimistic")
        session_b = manager.open_ticket(issues["isp"], mode="optimistic")
        session_a.run_fix_script(issues["ospf"].fix_script)
        session_b.run_fix_script(issues["isp"].fix_script)

        session_a.submit()
        outcome_b = session_b.submit()
        assert outcome_b.status == "stale-rejected"
        assert not outcome_b.imported
        assert not issues["isp"].is_resolved(production)
        assert heimdall.audit.verify()


class TestSemanticDrift:
    """Section-level drift classification (docs/ARCHITECTURE.md).

    The regression that motivated it: two tickets editing *disjoint
    sections of the same device* used to be a fingerprint-level conflict;
    now the second rebases cleanly and both land.
    """

    DESCRIPTION_EDIT = (FixStep("dist1", (
        "configure terminal",
        "interface Gi0/3",
        "description database LAN uplink",
        "end",
        "write memory",
    )),)

    def _disjoint_sessions(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        # A fixes dist1's OSPF networks; B annotates dist1's db-LAN port
        # under an interface profile — same device, disjoint sections.
        session_a = manager.open_ticket(issue, mode="optimistic")
        session_b = manager.open_ticket(
            issue, mode="optimistic", profile="interface"
        )
        session_a.run_fix_script(issue.fix_script)
        session_b.run_fix_script(self.DESCRIPTION_EDIT)
        return production, heimdall, issue, session_a, session_b

    def test_disjoint_sections_of_one_device_both_land(self, deployment):
        production, heimdall, issue, session_a, session_b = (
            self._disjoint_sessions(deployment)
        )
        obs.reset()
        obs.enable()
        try:
            outcome_a = session_a.submit()
            outcome_b = session_b.submit()
        finally:
            obs.disable()
        assert outcome_a.status == "clean" and outcome_a.imported
        assert outcome_b.status == "rebased" and outcome_b.imported
        assert outcome_b.drift_sections == {"dist1": frozenset({"ospf"})}
        assert issue.is_resolved(production)
        assert (
            production.config("dist1").interface("Gi0/3").description
            == "database LAN uplink"
        )
        registry = obs.registry()
        assert registry.get("sessions.conflicts").value == 0
        assert registry.get("sessions.rebase.semantic").value == 1
        semantic = [
            record for record in heimdall.audit.records
            if record.action == "sessions.rebase.semantic"
        ]
        assert len(semantic) == 1 and semantic[0].allowed
        assert "dist1(ospf)" in semantic[0].command
        assert heimdall.audit.verify()

    def test_same_section_drift_still_conflicts(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session_a = manager.open_ticket(issue, mode="optimistic")
        session_b = manager.open_ticket(issue, mode="optimistic")
        session_a.run_fix_script(issue.fix_script)
        session_b.run_fix_script(issue.fix_script)
        assert session_a.submit().status == "clean"
        outcome_b = session_b.submit()
        assert outcome_b.status == "conflict"
        assert outcome_b.drift_sections["dist1"] == frozenset({"ospf"})
        assert "dist1(ospf)" in outcome_b.reason

    def test_serialization_stable_rewrite_is_not_drift(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue, mode="optimistic")
        session.run_fix_script(issue.fix_script)
        # Re-key gw's interface dict: the serialization (and so the
        # fingerprint) changes, the semantics do not.
        config = production.config("gw")
        config.interfaces = dict(reversed(list(config.interfaces.items())))
        obs.reset()
        obs.enable()
        try:
            outcome = session.submit()
        finally:
            obs.disable()
        assert outcome.status == "clean" and outcome.imported
        assert outcome.drifted == ()
        registry = obs.registry()
        assert registry.get("semdiff.devices.unchanged").value == 1
        assert registry.get("sessions.rebases").value == 0

    def test_bypass_fault_restores_fingerprint_classification(
        self, deployment
    ):
        production, heimdall, issue, session_a, session_b = (
            self._disjoint_sessions(deployment)
        )
        assert session_a.submit().status == "clean"
        # With section classification bypassed, dist1 counts as drifted in
        # every section, so the disjoint edit degrades to a conflict —
        # the conservative pre-semdiff behaviour.
        faults.arm({"sessions.semdiff.bypass": Rule(nth=1)}, seed=7)
        outcome_b = session_b.submit()
        faults.disarm()
        assert outcome_b.status == "conflict"
        assert not outcome_b.imported
        assert outcome_b.drift_sections["dist1"] == frozenset(
            ("vlan", "interface", "ospf", "bgp", "static", "acl", "scalar")
        )
        assert heimdall.audit.verify()


class TestSessionLifecycle:
    def test_double_submit_raises(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        session.submit()
        with pytest.raises(SessionError):
            session.submit()

    def test_abandon_releases_leases_and_registry(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue, mode="lease")
        assert "dist1" in session.write_leases
        writer, _ = manager.leases.holders("dist1")
        assert writer == session.lease_owner
        session.abandon("nothing to do")
        assert manager.leases.holders("dist1") == (None, frozenset())
        assert manager.live_sessions() == []
        with pytest.raises(SessionError):
            session.submit()

    def test_submit_releases_everything(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue, mode="lease")
        session.run_fix_script(issue.fix_script)
        session.submit()
        assert manager.leases.holders("dist1") == (None, frozenset())
        assert manager.live_sessions() == []

    def test_lease_mode_serializes_same_device(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session_a = manager.open_ticket(issue, mode="lease")
        with pytest.raises(LeaseTimeout):
            manager.open_ticket(issue, mode="lease", lease_timeout_s=0.01)
        # The failed open held nothing and registered nothing.
        assert manager.live_sessions() == [session_a.session_id]
        session_a.run_fix_script(issue.fix_script)
        assert session_a.submit().imported


class TestFaultInjection:
    def test_lease_timeout_fault_fails_the_open(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        faults.arm({"sessions.lease.timeout": Rule(nth=1)}, seed=7)
        with pytest.raises(LeaseTimeout):
            manager.open_ticket(issue)
        faults.disarm()
        assert manager.live_sessions() == []
        # The deployment is intact: the next open succeeds and imports.
        session = manager.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        assert session.submit().imported

    def test_stale_base_fault_forces_audited_reject(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        faults.arm({"sessions.base.stale": Rule(nth=1)}, seed=7)
        outcome = session.submit()
        assert outcome.status == "stale-rejected"
        assert not outcome.imported
        assert not issue.is_resolved(production)
        stale = [
            record for record in heimdall.audit.records
            if record.action == "sessions.stale"
        ]
        assert len(stale) == 1 and not stale[0].allowed
        assert heimdall.audit.verify()


class TestSessionMetrics:
    def test_conflict_run_populates_instruments(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        obs.reset()
        obs.enable()
        try:
            session_a = manager.open_ticket(issue, mode="optimistic")
            session_b = manager.open_ticket(issue, mode="optimistic")
            session_a.run_fix_script(issue.fix_script)
            session_b.run_fix_script(issue.fix_script)
            session_a.submit()
            session_b.submit()
        finally:
            obs.disable()
        registry = obs.registry()
        assert registry.get("sessions.leases.acquired").value > 0
        assert registry.get("sessions.overlaps").value == 1
        assert registry.get("sessions.conflicts").value == 1
        assert registry.get("sessions.rebases").value == 0
        assert registry.get("sessions.queue.depth").value == 0


class TestAuditTrailThreadSafety:
    def test_concurrent_appends_never_fork_the_chain(self):
        trail = AuditTrail(enclave=SimulatedEnclave())
        threads = [
            threading.Thread(
                target=lambda worker=worker: [
                    trail.record(
                        actor=f"tech-{worker}", device="r1",
                        command=f"show run {i}", action="execute",
                        resource="console", allowed=True, outcome="ok",
                    )
                    for i in range(25)
                ]
            )
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(trail.records) == 8 * 25
        assert trail.verify()


class TestWaveProgress:
    def test_staged_push_reports_wave_granular_progress(self):
        from repro.core.enforcer.rollout import RolloutConfig
        from repro.scenarios.issues import FixStep

        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        heimdall = Heimdall(
            production, policies=policies, rollout=RolloutConfig()
        )
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue, mode="optimistic")
        session.run_fix_script(issue.fix_script)
        session.run_fix_script((FixStep("dist2", (
            "configure terminal",
            "ip route 10.99.0.0 255.255.0.0 10.0.7.1",
            "end",
            "write memory",
        )),))
        outcome = session.submit()
        assert outcome.imported

        progress = manager.push_progress(session.session_id)
        assert progress is not None
        assert progress["waves"] == 2
        assert progress["status"] == "committed"
        assert [(e["wave"], e["status"]) for e in progress["events"]] == [
            (0, "started"), (0, "committed"),
            (1, "started"), (1, "committed"),
        ]

    def test_no_progress_for_unknown_or_monolithic_session(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        session.submit()  # monolithic push: no wave events
        assert manager.push_progress(session.session_id) is None
        assert manager.push_progress("SES-NOPE") is None
