"""Twin fidelity tests: the scoped clone must reproduce the failure scenario."""

import pytest

from repro.control.builder import build_dataplane
from repro.core.privilege.ast import PrivilegeSpec
from repro.core.twin.fidelity import measure_fidelity
from repro.core.twin.twin import TwinNetwork
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues


def make_twin(issue_id, strategy):
    production = build_enterprise_network()
    issue = standard_issues("enterprise")[issue_id]
    issue.inject(production)
    dataplane = build_dataplane(production)
    twin = TwinNetwork(
        production, issue, PrivilegeSpec.allow_all(),
        strategy=strategy, dataplane=dataplane,
    )
    return twin, dataplane


class TestHeimdallTwinFidelity:
    @pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
    def test_ticket_flow_reproduces(self, issue_id):
        twin, dataplane = make_twin(issue_id, "heimdall")
        # The issue manifests identically inside the twin.
        assert not twin.issue_resolved()

    @pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
    def test_high_fidelity_for_in_scope_flows(self, issue_id):
        twin, dataplane = make_twin(issue_id, "heimdall")
        report = measure_fidelity(twin, dataplane)
        assert report.compared > 0
        # The scoped twin reproduces at least 80% of in-scope flow
        # behaviour; the divergent tail is flows that transit out-of-scope
        # devices — the price of a partial clone.
        assert report.fidelity_pct >= 80.0, report.summary()

    def test_all_scope_is_perfectly_faithful(self):
        twin, dataplane = make_twin("ospf", "all")
        report = measure_fidelity(twin, dataplane)
        assert report.fidelity_pct == 100.0
        assert report.mismatches == []

    def test_neighbor_scope_less_faithful_than_heimdall(self):
        heimdall_twin, dataplane = make_twin("isp", "heimdall")
        neighbor_twin, _ = make_twin("isp", "neighbor")
        heimdall_report = measure_fidelity(heimdall_twin, dataplane)
        neighbor_report = measure_fidelity(neighbor_twin, dataplane)
        assert (
            neighbor_report.fidelity_pct <= heimdall_report.fidelity_pct
        )

    def test_report_summary(self):
        twin, dataplane = make_twin("vlan", "heimdall")
        report = measure_fidelity(twin, dataplane)
        assert "in-scope flows" in report.summary()

    def test_mismatches_are_structured(self):
        twin, dataplane = make_twin("isp", "neighbor")
        report = measure_fidelity(twin, dataplane)
        for mismatch in report.mismatches:
            assert mismatch.production_disposition != (
                mismatch.twin_disposition
            )
            assert str(mismatch)
