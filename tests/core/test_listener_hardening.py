"""Broken progress listeners never abort the work they observe.

The sessions layer registers a wave listener on the scheduler and an
approval listener on the coordinator (repro/core/sessions.py); both are
observer-only callbacks. An exception inside either must be swallowed —
counted under ``sessions.listener.error`` — because the push or quorum
round it was watching is the load-bearing output, not the notification.
"""

import pytest

from repro import faults, obs
from repro.core.approvals import (
    APPROVED,
    ApprovalConfig,
    ApprovalCoordinator,
)
from repro.core.enforcer.risk import RiskAssessment
from repro.core.enforcer.rollout import RolloutConfig
from repro.core.heimdall import Heimdall
from repro.core.sessions import SessionManager
from repro.config.diffing import ConfigChange
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import FixStep, standard_issues
from repro.util import rand


@pytest.fixture(autouse=True)
def _obs_state():
    obs.enable()
    obs.reset()
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def listener_errors():
    metric = obs.registry().get("sessions.listener.error")
    return metric.value if metric is not None else 0


def explode(event):
    raise RuntimeError("observer crashed mid-notification")


CHANGES = [
    ConfigChange("r1", "interface.ospf_cost", path="Gi0/0", old=None, new=10),
]

HIGH_RISK = RiskAssessment(
    score=5.0, threshold=3.0, section_score=5.0,
    cone=("r1",), cone_fraction=0.5, reasons=(),
)


class TestWaveListener:
    def test_raising_wave_listener_never_aborts_the_push(self):
        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        heimdall = Heimdall(
            production, policies=policies, rollout=RolloutConfig()
        )
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        # Clobber the manager's registered listener with one that raises
        # on every wave transition.
        heimdall.scheduler.wave_listener = explode

        session = manager.open_ticket(issue, mode="optimistic")
        session.run_fix_script(issue.fix_script)
        session.run_fix_script((FixStep("dist2", (
            "configure terminal",
            "ip route 10.99.0.0 255.255.0.0 10.0.7.1",
            "end",
            "write memory",
        )),))
        outcome = session.submit()

        assert outcome.imported  # the staged push committed regardless
        assert not issue.is_broken(production)
        # 2 waves x (started + committed) notifications, all swallowed.
        assert listener_errors() == 4

    def test_healthy_wave_listener_counts_nothing(self):
        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        heimdall = Heimdall(
            production, policies=policies, rollout=RolloutConfig()
        )
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        session = manager.open_ticket(issue, mode="optimistic")
        session.run_fix_script(issue.fix_script)
        assert session.submit().imported
        assert listener_errors() == 0
        # The manager's own listener kept working: progress is queryable.
        assert manager.push_progress(session.session_id) is not None


class TestApprovalListener:
    def test_raising_approval_listener_never_aborts_the_round(self):
        coord = ApprovalCoordinator(ApprovalConfig())
        coord.listener = explode
        request = coord.require("S-0001", CHANGES, HIGH_RISK)
        coord.collect(request)
        assert request.state == APPROVED
        assert request.granted
        # proposed + approved transitions, both swallowed.
        assert listener_errors() == 2

    def test_raising_listener_does_not_poison_the_decision_audit(self):
        from repro.core.enforcer.audit import AuditTrail
        from repro.core.enforcer.enclave import SimulatedEnclave
        from repro.util.clock import SimulatedClock

        trail = AuditTrail(SimulatedEnclave(), clock=SimulatedClock())
        coord = ApprovalCoordinator(ApprovalConfig(), audit=trail)
        coord.listener = explode
        request = coord.require("S-0001", CHANGES, HIGH_RISK)
        coord.collect(request)
        assert request.granted
        (decision,) = trail.query(action_prefix="approvals.decision")
        assert decision.allowed
        assert trail.verify()
