"""Mega-network generator tests: determinism, validity, and seeded issues.

Small sizes on purpose — the generator's structure is size-independent, so
everything worth proving (determinism, policy validity, issue injection)
holds at 60 devices and runs in CI time. The 500-device acceptance numbers
live in the scale benchmark (``bench --scale``), not here.
"""

import pytest

from repro.control.builder import build_dataplane
from repro.emulation.network import EmulatedNetwork
from repro.policy.verification import PolicyVerifier
from repro.scenarios.generate import (
    SHAPES,
    generate_network,
    generate_scenario,
    network_fingerprint,
)
from repro.util.errors import ReproError

SMALL = {"fat-tree": 60, "campus": 80, "hub-spoke": 60}


@pytest.fixture(scope="module")
def scenarios():
    """One small scenario per shape, generated once for the module."""
    return {
        shape: generate_scenario(shape=shape, size=size, seed=3)
        for shape, size in SMALL.items()
    }


class TestDeterminism:
    def test_same_seed_same_network(self):
        a = generate_network(shape="campus", size=80, seed=3)
        b = generate_network(shape="campus", size=80, seed=3)
        assert network_fingerprint(a) == network_fingerprint(b)

    def test_different_seed_different_network(self):
        a = generate_network(shape="campus", size=80, seed=3)
        b = generate_network(shape="campus", size=80, seed=4)
        assert network_fingerprint(a) != network_fingerprint(b)

    def test_scenario_metadata_round_trips(self, scenarios):
        for shape, scenario in scenarios.items():
            assert scenario.shape == shape
            assert scenario.seed == 3
            assert scenario.requested_size == SMALL[shape]


class TestValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ReproError):
            generate_scenario(shape="torus", size=100)

    def test_undersized_rejected(self):
        with pytest.raises(ReproError):
            generate_scenario(shape="campus", size=10)

    def test_shapes_is_the_public_contract(self):
        assert set(SMALL) == set(SHAPES)


class TestGeneratedValidity:
    def test_size_lands_near_request(self, scenarios):
        for shape, scenario in scenarios.items():
            requested = scenario.requested_size
            assert abs(scenario.device_count - requested) <= 0.15 * requested

    def test_compiles_and_every_policy_holds(self, scenarios):
        for shape, scenario in scenarios.items():
            plane = build_dataplane(scenario.network, use_cache=False)
            report = PolicyVerifier(scenario.policies).verify_dataplane(plane)
            broken = [r.policy.policy_id for r in report.results if not r.holds]
            assert not broken, (shape, broken)

    def test_policy_ids_unique(self, scenarios):
        for scenario in scenarios.values():
            ids = [policy.policy_id for policy in scenario.policies]
            assert len(ids) == len(set(ids))

    def test_lans_cover_all_generated_hosts(self, scenarios):
        for shape, scenario in scenarios.items():
            lan_hosts = {
                host for lan in scenario.lans for host, _ip, _port in lan.hosts
            }
            extras = set(scenario.network.hosts()) - lan_hosts
            assert lan_hosts <= set(scenario.network.hosts()), shape
            # The only hosts outside a LAN are the provider-edge externals.
            assert all(host.startswith("ext") for host in extras), (
                shape, extras,
            )


class TestSeededIssues:
    def test_three_issue_classes(self, scenarios):
        for scenario in scenarios.values():
            assert set(scenario.issues) == {"ospf", "vlan", "ifdown"}

    def test_injection_breaks_resolution_repairs(self, scenarios):
        for shape, scenario in scenarios.items():
            for issue in scenario.issues.values():
                assert issue.is_resolved(scenario.network), (
                    shape, issue.issue_id,
                )
                production = scenario.network.copy()
                issue.inject(production)
                assert not issue.is_resolved(production), (
                    shape, issue.issue_id,
                )

    def test_root_cause_devices_exist(self, scenarios):
        for scenario in scenarios.values():
            for issue in scenario.issues.values():
                assert scenario.network.topology.has_device(
                    issue.root_cause_device
                )

    def test_fix_scripts_repair_on_console(self, scenarios):
        """Replaying each prepared fix on a direct console resolves it."""
        scenario = scenarios["campus"]
        for issue in scenario.issues.values():
            production = scenario.network.copy()
            issue.inject(production)
            emnet = EmulatedNetwork.attached(production)
            for step in issue.fix_script:
                console = emnet.console(step.device)
                for command in step.commands:
                    result = console.execute(command)
                    assert result.ok, (issue.issue_id, command, result.error)
            assert issue.is_resolved(production), issue.issue_id
