"""Snapshot-directory save/load round-trips."""

import json

import pytest

from repro.control.builder import build_dataplane
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.io import load_network, save_network
from repro.util.errors import ReproError

from tests.fixtures import square_network, switched_lan


@pytest.mark.parametrize("builder", [
    square_network, switched_lan, build_enterprise_network,
])
class TestRoundTrip:
    def test_configs_identical(self, builder, tmp_path):
        network = builder()
        save_network(network, tmp_path / "snap")
        loaded = load_network(tmp_path / "snap")
        assert loaded.configs == network.configs

    def test_topology_identical(self, builder, tmp_path):
        network = builder()
        save_network(network, tmp_path / "snap")
        loaded = load_network(tmp_path / "snap")
        assert set(loaded.topology.device_names()) == set(
            network.topology.device_names()
        )
        original_links = {
            frozenset((str(l.a), str(l.b))) for l in network.topology.links()
        }
        loaded_links = {
            frozenset((str(l.a), str(l.b))) for l in loaded.topology.links()
        }
        assert loaded_links == original_links

    def test_behaviour_identical(self, builder, tmp_path):
        network = builder()
        save_network(network, tmp_path / "snap")
        loaded = load_network(tmp_path / "snap")
        original = ReachabilityAnalyzer(
            build_dataplane(network)
        ).reachability_matrix()
        reloaded = ReachabilityAnalyzer(
            build_dataplane(loaded)
        ).reachability_matrix()
        assert original == reloaded


class TestSnapshotLayout:
    def test_files_on_disk(self, tmp_path):
        save_network(square_network(), tmp_path / "snap")
        assert (tmp_path / "snap" / "topology.json").exists()
        assert (tmp_path / "snap" / "configs" / "r1.cfg").exists()
        text = (tmp_path / "snap" / "configs" / "r1.cfg").read_text()
        assert "hostname r1" in text

    def test_editing_a_config_changes_the_network(self, tmp_path):
        save_network(square_network(), tmp_path / "snap")
        cfg_path = tmp_path / "snap" / "configs" / "r1.cfg"
        cfg_path.write_text(
            cfg_path.read_text().replace(" no shutdown", " shutdown", 1)
        )
        loaded = load_network(tmp_path / "snap")
        assert any(
            iface.shutdown
            for iface in loaded.config("r1").interfaces.values()
        )


class TestErrors:
    def test_missing_topology(self, tmp_path):
        with pytest.raises(ReproError, match="topology.json"):
            load_network(tmp_path)

    def test_bad_json(self, tmp_path):
        (tmp_path / "topology.json").write_text("{nope")
        with pytest.raises(ReproError, match="bad topology"):
            load_network(tmp_path)

    def test_unknown_kind(self, tmp_path):
        (tmp_path / "topology.json").write_text(json.dumps({
            "name": "x",
            "devices": [{"name": "d1", "kind": "quantum-router"}],
            "links": [],
        }))
        with pytest.raises(ReproError, match="unknown device kind"):
            load_network(tmp_path)

    def test_missing_config_file(self, tmp_path):
        (tmp_path / "topology.json").write_text(json.dumps({
            "name": "x",
            "devices": [{"name": "d1", "kind": "router"}],
            "links": [],
        }))
        (tmp_path / "configs").mkdir()
        with pytest.raises(ReproError, match="missing config"):
            load_network(tmp_path)


class TestShippedSnapshots:
    """The repo ships both evaluation networks as editable snapshots."""

    @pytest.mark.parametrize("name,builder", [
        ("enterprise", build_enterprise_network),
    ])
    def test_shipped_snapshot_matches_builder(self, name, builder):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2] / "configs" / name
        if not root.exists():
            pytest.skip("snapshot directory not present")
        loaded = load_network(root)
        assert loaded.configs == builder().configs
