"""Scenario network tests: Table 1 shape and internal consistency."""

import pytest

from repro.control.builder import build_dataplane
from repro.dataplane.reachability import ReachabilityAnalyzer, service_flow
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.university import build_university_network


@pytest.fixture(scope="module")
def enterprise():
    return build_enterprise_network()


@pytest.fixture(scope="module")
def university():
    return build_university_network()


class TestTable1Shape:
    def test_enterprise_counts(self, enterprise):
        summary = enterprise.summary()
        assert summary["routers"] == 9  # paper: 9
        assert summary["hosts"] == 9  # paper: 9
        assert summary["links"] == 22  # paper: 22

    def test_university_counts(self, university):
        summary = university.summary()
        assert summary["routers"] == 13  # paper: 13
        assert summary["hosts"] == 17  # paper: 17
        assert summary["links"] == 92  # paper: 92

    def test_university_configs_larger_than_enterprise(
        self, enterprise, university
    ):
        # Paper: 1394 vs 2146 lines.
        assert (
            university.total_config_lines() > enterprise.total_config_lines()
        )

    def test_university_more_policies_than_enterprise(
        self, enterprise, university
    ):
        # Paper: 21 vs 175 policies.
        assert len(mine_policies(university)) > len(mine_policies(enterprise))


class TestEnterpriseBehaviour:
    @pytest.fixture(scope="class")
    def analyzer(self, enterprise):
        return ReachabilityAnalyzer(build_dataplane(enterprise))

    def test_staff_reaches_internal_servers(self, analyzer):
        assert analyzer.hosts_reachable("pc1", "web1")
        assert analyzer.hosts_reachable("pc1", "printer1")

    def test_external_blocked_from_interior(self, analyzer):
        assert not analyzer.hosts_reachable("ext1", "pc1")
        assert not analyzer.hosts_reachable("ext1", "db1")

    def test_external_reaches_dmz_web_only(self, analyzer, enterprise):
        web = service_flow(enterprise, "ext1", "web1", 80)
        assert analyzer.reachable(web, start_device="ext1")
        ssh = service_flow(enterprise, "ext1", "web1", 22)
        assert not analyzer.reachable(ssh, start_device="ext1")

    def test_database_protected(self, analyzer, enterprise):
        assert not analyzer.hosts_reachable("pc1", "db1")
        app_db = service_flow(enterprise, "app1", "db1", 5432)
        assert analyzer.reachable(app_db, start_device="app1")

    def test_internal_reaches_outside(self, analyzer):
        assert analyzer.hosts_reachable("pc1", "ext1")

    def test_vlan_separation_via_gateway(self, analyzer):
        # pc1 (VLAN 10) and app1 (VLAN 20) talk through dept1, not at L2.
        trace = analyzer.trace(
            __import__("repro.net.flow", fromlist=["Flow"]).Flow.make(
                "10.5.10.100", "10.5.20.100", "icmp"
            ),
            start_device="pc1",
        )
        assert trace.success
        assert "dept1" in trace.path()


class TestUniversityBehaviour:
    @pytest.fixture(scope="class")
    def analyzer(self, university):
        return ReachabilityAnalyzer(build_dataplane(university))

    def test_cs_reaches_servers_and_outside(self, analyzer):
        assert analyzer.hosts_reachable("cs-pc1", "www")
        assert analyzer.hosts_reachable("cs-pc1", "ext1")

    def test_outside_reaches_public_services_only(self, analyzer, university):
        web = service_flow(university, "ext1", "www", 80)
        assert analyzer.reachable(web, start_device="ext1")
        assert not analyzer.hosts_reachable("ext1", "cs-pc1")
        assert not analyzer.hosts_reachable("ext1", "db-reg")

    def test_registrar_database_protected(self, analyzer, university):
        assert not analyzer.hosts_reachable("dorm-pc1", "db-reg")
        assert not analyzer.hosts_reachable("ee-pc1", "db-reg")
        lib_db = service_flow(university, "lib-pc1", "db-reg", 5432)
        assert analyzer.reachable(lib_db, start_device="lib-pc1")

    def test_dorms_isolated_from_departments(self, analyzer):
        assert not analyzer.hosts_reachable("dorm-pc1", "cs-pc1")
        assert not analyzer.hosts_reachable("dorm-pc1", "hpc1")
        # ... but may browse the public servers.
        assert analyzer.hosts_reachable("dorm-pc1", "www")

    def test_hpc_ssh_only_from_cs(self, analyzer, university):
        cs_ssh = service_flow(university, "cs-pc1", "hpc1", 22)
        assert analyzer.reachable(cs_ssh, start_device="cs-pc1")
        ee_ssh = service_flow(university, "ee-pc1", "hpc1", 22)
        assert not analyzer.reachable(ee_ssh, start_device="ee-pc1")

    def test_redundancy_survives_single_core_loss(self, university):
        broken = university.copy()
        for iface in broken.config("core1").interfaces.values():
            iface.shutdown = True
        analyzer = ReachabilityAnalyzer(build_dataplane(broken))
        assert analyzer.hosts_reachable("cs-pc1", "www")
        assert analyzer.hosts_reachable("lib-pc1", "ext1")

    def test_mined_policies_hold(self, university):
        policies = mine_policies(university)
        assert PolicyVerifier(policies).verify_network(university).holds
