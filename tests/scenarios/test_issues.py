"""Issue library tests: injection, manifestation, and fixability."""

import pytest

from repro.emulation.network import EmulatedNetwork
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import interface_down_issues, standard_issues
from repro.scenarios.university import build_university_network
from repro.util.errors import ReproError


@pytest.mark.parametrize("network_name,builder", [
    ("enterprise", build_enterprise_network),
    ("university", build_university_network),
])
class TestStandardIssues:
    def test_three_issue_classes(self, network_name, builder):
        issues = standard_issues(network_name)
        assert set(issues) == {"ospf", "isp", "vlan"}

    def test_healthy_network_resolved(self, network_name, builder):
        network = builder()
        for issue in standard_issues(network_name).values():
            assert issue.is_resolved(network), issue.issue_id

    def test_injection_breaks_ticket_flow(self, network_name, builder):
        for issue in standard_issues(network_name).values():
            network = builder()
            issue.inject(network)
            assert issue.is_broken(network), issue.issue_id

    def test_prepared_fix_script_repairs(self, network_name, builder):
        """Replaying the fix script on a direct console resolves each issue."""
        for issue in standard_issues(network_name).values():
            network = builder()
            issue.inject(network)
            emnet = EmulatedNetwork.attached(network)
            for step in issue.fix_script:
                console = emnet.console(step.device)
                for command in step.commands:
                    result = console.execute(command)
                    assert result.ok, (issue.issue_id, command, result.error)
            assert issue.is_resolved(network), issue.issue_id

    def test_root_cause_device_exists(self, network_name, builder):
        network = builder()
        for issue in standard_issues(network_name).values():
            assert network.topology.has_device(issue.root_cause_device)

    def test_complexities_span_the_range(self, network_name, builder):
        issues = standard_issues(network_name)
        assert issues["isp"].complexity == "simple"
        assert issues["vlan"].complexity == "complex"

    def test_fix_command_counts_track_complexity(self, network_name, builder):
        issues = standard_issues(network_name)

        def count(issue):
            return sum(len(step.commands) for step in issue.fix_script)

        assert count(issues["isp"]) < count(issues["vlan"])


class TestIssueObject:
    def test_unknown_network_rejected(self):
        with pytest.raises(ReproError):
            standard_issues("datacenter")

    def test_issue_without_injection_rejects_inject(self):
        from repro.scenarios.issues import Issue

        bare = Issue(
            issue_id="x", title="t", description="d",
            src_host="h1", dst_host="h2",
            root_cause_device="r1", complexity="simple",
        )
        with pytest.raises(ReproError):
            bare.inject(build_enterprise_network())

    def test_affected_devices(self):
        issue = standard_issues("enterprise")["ospf"]
        assert issue.affected_devices == ("app1", "db1")


class TestInterfaceDownSweep:
    @pytest.fixture(scope="class")
    def issues(self):
        return interface_down_issues(build_enterprise_network())

    def test_every_issue_manifests(self, issues):
        for issue in issues:
            network = build_enterprise_network()
            issue.inject(network)
            assert issue.is_broken(network), issue.issue_id

    def test_fix_script_is_no_shutdown(self, issues):
        for issue in issues:
            commands = issue.fix_script[0].commands
            assert "no shutdown" in commands

    def test_fix_resolves(self, issues):
        issue = issues[0]
        network = build_enterprise_network()
        issue.inject(network)
        emnet = EmulatedNetwork.attached(network)
        console = emnet.console(issue.fix_script[0].device)
        for command in issue.fix_script[0].commands:
            assert console.execute(command).ok
        assert issue.is_resolved(network)

    def test_redundant_interfaces_skipped(self):
        # The university core is redundant: parallel links produce no ticket.
        network = build_university_network()
        issues = interface_down_issues(network, devices=["core1"])
        tickets = {issue.issue_id for issue in issues}
        # core1 has many interfaces; far fewer break a host pair.
        core1_ifaces = len(network.config("core1").interfaces)
        assert len(tickets) < core1_ifaces

    def test_device_filter(self):
        network = build_enterprise_network()
        issues = interface_down_issues(network, devices=["gw"])
        assert issues
        assert all(i.root_cause_device == "gw" for i in issues)

    def test_deterministic(self):
        a = [i.issue_id for i in interface_down_issues(build_enterprise_network())]
        b = [i.issue_id for i in interface_down_issues(build_enterprise_network())]
        assert a == b
