"""Section classification of config diffs, plus the taxonomy lint.

The lint half is what ``make semdiff-lint`` runs: the section vocabulary
must stay total over the differ's kind table and in lockstep with the risk
classifier's weight table, so a new change kind or section cannot silently
fall outside drift classification or risk scoring.
"""

import pytest
from hypothesis import given, settings

from repro import obs
from repro.config import semdiff
from repro.config.diffing import _KIND_TABLE, diff_configs, diff_networks
from repro.config.parser import parse_config
from repro.core.enforcer.risk import DEFAULT_WEIGHTS

from tests.config.strategies import device_configs

BASE = """\
hostname r1
!
vlan 10
 name staff
!
interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
 ip ospf cost 10
 no shutdown
!
ip route 0.0.0.0 0.0.0.0 10.0.12.2
!
"""


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def base():
    return parse_config(BASE)


class TestSectionOf:
    def test_known_kinds(self):
        assert semdiff.section_of_kind("interface.switchport_mode") == "vlan"
        assert semdiff.section_of_kind("interface.ospf_cost") == "ospf"
        assert semdiff.section_of_kind("interface.access_group_in") == "acl"
        assert semdiff.section_of_kind("default_gateway") == "static"
        assert semdiff.section_of_kind("hostname") == "scalar"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            semdiff.section_of_kind("bogus.kind")


class TestChangedSections:
    def test_identical_configs_yield_empty_set(self, base):
        assert semdiff.changed_sections(base, base.copy()) == frozenset()

    def test_sections_accumulate_across_kinds(self, base):
        changed = base.copy()
        changed.vlans[10].name = "eng"           # vlan.renamed
        changed.interface("Gi0/0").ospf_cost = 99  # interface.ospf_cost
        changed.enable_secret = "s3cret"         # enable_secret
        sections = semdiff.changed_sections(base, changed)
        assert sections == frozenset({"vlan", "ospf", "scalar"})

    def test_metrics_distinguish_classified_from_unchanged(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").shutdown = True
        obs.reset()
        obs.enable()
        try:
            semdiff.changed_sections(base, changed)
            semdiff.changed_sections(base, base.copy())
        finally:
            obs.disable()
        registry = obs.registry()
        assert registry.get("semdiff.devices.classified").value == 1
        assert registry.get("semdiff.devices.unchanged").value == 1
        assert registry.get("semdiff.sections.per_device").count == 1

    def test_sections_by_device_groups_a_network_diff(self, base):
        other = parse_config(BASE, hostname="r2")
        new = {"r1": base.copy(), "r2": other.copy()}
        new["r1"].interface("Gi0/0").shutdown = True
        new["r2"].vlans[10].name = "eng"
        new["r2"].interface("Gi0/0").ospf_cost = 42
        by_device = semdiff.sections_by_device(
            diff_networks({"r1": base, "r2": other}, new)
        )
        assert by_device == {
            "r1": frozenset({"interface"}),
            "r2": frozenset({"vlan", "ospf"}),
        }


class TestSectionProperties:
    @given(device_configs(), device_configs())
    @settings(max_examples=60, deadline=None)
    def test_every_generated_diff_classifies(self, a, b):
        # No change the differ can emit falls outside the section table.
        b = b.copy()
        b.hostname = a.hostname
        for change in diff_configs(a, b):
            assert semdiff.section_of(change) in semdiff.SECTIONS


class TestTaxonomyLint:
    """What ``make semdiff-lint`` gates."""

    def test_every_diff_kind_has_exactly_one_section(self):
        assert set(semdiff._SECTION_BY_KIND) == set(_KIND_TABLE)
        for kind, section in semdiff._SECTION_BY_KIND.items():
            assert section in semdiff.SECTIONS, f"{kind} -> {section}"

    def test_sections_and_risk_weights_are_the_same_set(self):
        # Risk weighting consumes the section vocabulary directly: a
        # section without a weight (or a weight for a dead section) is a
        # classification bug, not a tuning knob.
        assert set(DEFAULT_WEIGHTS) == set(semdiff.SECTIONS)

    def test_every_kind_resolves_to_a_risk_weight(self):
        for kind in _KIND_TABLE:
            section = semdiff.section_of_kind(kind)
            assert DEFAULT_WEIGHTS[section] > 0

    def test_all_sections_constant_matches_vocabulary(self):
        assert semdiff.ALL_SECTIONS == frozenset(semdiff.SECTIONS)
