"""Hypothesis strategies generating structurally valid device configurations.

Used by the parse/serialize round-trip property tests and by the diffing
property tests. The strategies deliberately generate only *well-formed*
configurations (the serializer's output domain); malformed input handling is
covered by example-based parser tests.
"""

import ipaddress

from hypothesis import strategies as st

from repro.config.acl import Acl, AclEntry, PortMatch
from repro.config.model import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    InterfaceConfig,
    OspfConfig,
    OspfNetwork,
    StaticRoute,
    VlanConfig,
)

names = st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True)
words = st.from_regex(r"[a-z]+( [a-z]+){0,3}", fullmatch=True)
vlan_ids = st.integers(min_value=1, max_value=4094)
ports = st.integers(min_value=0, max_value=65535)

ipv4_addresses = st.integers(min_value=0, max_value=2**32 - 1).map(
    ipaddress.IPv4Address
)


@st.composite
def ipv4_networks(draw, min_prefixlen=0, max_prefixlen=32):
    address = draw(ipv4_addresses)
    prefixlen = draw(
        st.integers(min_value=min_prefixlen, max_value=max_prefixlen)
    )
    return ipaddress.IPv4Network((address, prefixlen), strict=False)


@st.composite
def ipv4_interfaces(draw):
    address = draw(ipv4_addresses)
    prefixlen = draw(st.integers(min_value=8, max_value=30))
    return ipaddress.IPv4Interface((address, prefixlen))


@st.composite
def port_matches(draw):
    op = draw(st.sampled_from(["eq", "gt", "lt", "range"]))
    if op == "range":
        low = draw(ports)
        high = draw(st.integers(min_value=low, max_value=65535))
        return PortMatch("range", low, high)
    return PortMatch(op, draw(ports))


@st.composite
def acl_entries(draw, kind="extended"):
    action = draw(st.sampled_from(["permit", "deny"]))
    if kind == "standard":
        return AclEntry(action=action, protocol="ip", src=draw(ipv4_networks()))
    protocol = draw(st.sampled_from(["ip", "icmp", "tcp", "udp"]))
    with_ports = protocol in ("tcp", "udp")
    return AclEntry(
        action=action,
        protocol=protocol,
        src=draw(ipv4_networks()),
        src_port=draw(st.none() | port_matches()) if with_ports else None,
        dst=draw(ipv4_networks()),
        dst_port=draw(st.none() | port_matches()) if with_ports else None,
    )


@st.composite
def acls(draw):
    kind = draw(st.sampled_from(["standard", "extended"]))
    numbered = draw(st.booleans())
    if numbered:
        low, high = (1, 99) if kind == "standard" else (100, 199)
        name = str(draw(st.integers(min_value=low, max_value=high)))
    else:
        name = draw(names)
    entries = draw(st.lists(acl_entries(kind=kind), min_size=1, max_size=5))
    return Acl(name=name, kind=kind, entries=entries)


@st.composite
def interface_configs(draw, name=None):
    switchport = draw(st.sampled_from([None, "access", "trunk"]))
    access_vlan = draw(vlan_ids) if switchport == "access" else None
    trunk_vlans = (
        tuple(sorted(draw(st.sets(vlan_ids, min_size=1, max_size=4))))
        if switchport == "trunk"
        else None
    )
    return InterfaceConfig(
        name=name or draw(names),
        description=draw(st.none() | words),
        address=draw(st.none() | ipv4_interfaces()),
        shutdown=draw(st.booleans()),
        ospf_cost=draw(st.none() | st.integers(min_value=1, max_value=65535)),
        access_group_in=draw(st.none() | names),
        access_group_out=draw(st.none() | names),
        switchport_mode=switchport,
        access_vlan=access_vlan,
        trunk_vlans=trunk_vlans,
    )


@st.composite
def ospf_configs(draw):
    networks = draw(
        st.lists(
            st.builds(
                OspfNetwork,
                prefix=ipv4_networks(max_prefixlen=30),
                area=st.integers(min_value=0, max_value=10),
            ),
            max_size=4,
            unique=True,  # IOS network statements are idempotent
        )
    )
    return OspfConfig(
        process_id=draw(st.integers(min_value=1, max_value=100)),
        networks=networks,
        passive_interfaces=draw(st.sets(names, max_size=3)),
        default_information_originate=draw(st.booleans()),
        reference_bandwidth_mbps=draw(st.sampled_from([100, 1000, 10000])),
    )


@st.composite
def bgp_configs(draw):
    neighbors = draw(
        st.lists(
            st.builds(
                BgpNeighbor,
                address=ipv4_addresses,
                remote_as=st.integers(min_value=1, max_value=65535),
            ),
            max_size=3,
            unique_by=lambda n: n.address,
        )
    )
    networks = draw(
        st.lists(ipv4_networks(max_prefixlen=30), max_size=3, unique=True)
    )
    return BgpConfig(
        asn=draw(st.integers(min_value=1, max_value=65535)),
        neighbors=neighbors,
        networks=networks,
    )


@st.composite
def static_routes(draw):
    return StaticRoute(
        prefix=draw(ipv4_networks(max_prefixlen=30)),
        next_hop=draw(ipv4_addresses),
        distance=draw(st.integers(min_value=1, max_value=255)),
    )


@st.composite
def device_configs(draw):
    iface_names = draw(st.lists(names, min_size=1, max_size=4, unique=True))
    interfaces = {
        name: draw(interface_configs(name=name)) for name in iface_names
    }
    acl_list = draw(st.lists(acls(), max_size=3, unique_by=lambda a: a.name))
    vlans = {
        vid: VlanConfig(vid, name=draw(st.none() | names))
        for vid in draw(st.sets(vlan_ids, max_size=3))
    }
    return DeviceConfig(
        hostname=draw(names),
        interfaces=interfaces,
        ospf=draw(st.none() | ospf_configs()),
        bgp=draw(st.none() | bgp_configs()),
        static_routes=draw(st.lists(static_routes(), max_size=4, unique=True)),
        acls={acl.name: acl for acl in acl_list},
        vlans=vlans,
        default_gateway=draw(st.none() | ipv4_addresses),
        enable_secret=draw(st.none() | names),
        snmp_community=draw(st.none() | names),
        vty_password=draw(st.none() | names),
    )
