"""Round-trip regressions for ordered routing lists.

BGP neighbor/network statements and static routes are position-sensitive in
the config model; the differ must emit authoritative ``*_reordered``
changes (mirroring ``ospf.networks_reordered`` / ``acl.reordered``) so that
applying ``diff(old, new)`` to ``old`` reproduces ``new`` exactly — order,
duplicates and all.
"""

import ipaddress

from repro.config.apply import apply_changes
from repro.config.diffing import diff_configs
from repro.config.model import BgpConfig, BgpNeighbor, StaticRoute
from repro.config.parser import parse_config

BASE = """\
hostname r1
!
interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
!
"""


def _neighbor(address, asn):
    return BgpNeighbor(address=ipaddress.ip_address(address), remote_as=asn)


def _static(prefix, next_hop, distance=1):
    return StaticRoute(
        prefix=ipaddress.ip_network(prefix),
        next_hop=ipaddress.ip_address(next_hop),
        distance=distance,
    )


def _roundtrip(old, new):
    changes = diff_configs(old, new)
    apply_changes({"r1": old}, changes)
    return changes


class TestBgpOrderRoundTrip:
    def _config(self, neighbors=(), networks=()):
        config = parse_config(BASE)
        config.bgp = BgpConfig(
            asn=65001, neighbors=list(neighbors), networks=list(networks)
        )
        return config

    def test_neighbor_reorder(self):
        n1 = _neighbor("10.0.12.2", 65002)
        n2 = _neighbor("10.0.13.2", 65003)
        old = self._config(neighbors=[n1, n2])
        new = self._config(neighbors=[n2, n1])
        changes = _roundtrip(old, new)
        assert old.bgp.neighbors == new.bgp.neighbors
        assert any(c.kind == "bgp.neighbors_reordered" for c in changes)

    def test_neighbor_add_preserves_position(self):
        n1 = _neighbor("10.0.12.2", 65002)
        n2 = _neighbor("10.0.13.2", 65003)
        old = self._config(neighbors=[n2])
        new = self._config(neighbors=[n1, n2])
        _roundtrip(old, new)
        assert old.bgp.neighbors == new.bgp.neighbors

    def test_network_reorder_with_removal(self):
        nets = [
            ipaddress.ip_network("10.1.0.0/16"),
            ipaddress.ip_network("10.2.0.0/16"),
            ipaddress.ip_network("10.3.0.0/16"),
        ]
        old = self._config(networks=nets)
        new = self._config(networks=[nets[2], nets[0]])
        _roundtrip(old, new)
        assert old.bgp.networks == new.bgp.networks

    def test_identical_bgp_yields_no_changes(self):
        n1 = _neighbor("10.0.12.2", 65002)
        old = self._config(neighbors=[n1])
        new = self._config(neighbors=[n1])
        assert diff_configs(old, new) == []


class TestStaticRouteOrderRoundTrip:
    def _config(self, routes):
        config = parse_config(BASE)
        config.static_routes = list(routes)
        return config

    def test_reorder(self):
        r1 = _static("10.1.0.0/16", "10.0.12.2")
        r2 = _static("10.2.0.0/16", "10.0.12.2")
        old = self._config([r1, r2])
        new = self._config([r2, r1])
        changes = _roundtrip(old, new)
        assert old.static_routes == new.static_routes
        assert any(c.kind == "static_routes_reordered" for c in changes)

    def test_duplicate_multiplicity_preserved(self):
        route = _static("10.1.0.0/16", "10.0.12.2")
        old = self._config([route])
        new = self._config([route, route])
        _roundtrip(old, new)
        assert old.static_routes == new.static_routes
        assert len(old.static_routes) == 2

    def test_remove_one_of_duplicates(self):
        route = _static("10.1.0.0/16", "10.0.12.2")
        other = _static("10.2.0.0/16", "10.0.12.2")
        old = self._config([route, route, other])
        new = self._config([route, other])
        _roundtrip(old, new)
        assert old.static_routes == new.static_routes
