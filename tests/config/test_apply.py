"""Property: applying diff(old, new) to old yields new."""

import pytest
from hypothesis import given, settings

from repro.config.apply import apply_change, apply_changes
from repro.config.diffing import ConfigChange, diff_configs
from repro.config.parser import parse_config
from repro.util.errors import ConfigError, FatalApplyError

from tests.config.strategies import device_configs

BASE = """\
hostname r1
!
interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
!
ip access-list extended FW
 deny tcp any host 10.2.0.5 eq www
 permit ip any any
!
ip route 0.0.0.0 0.0.0.0 10.0.12.2
!
"""


class TestApplyExamples:
    def test_apply_shutdown(self):
        old = parse_config(BASE)
        new = old.copy()
        new.interface("Gi0/0").shutdown = True
        (change,) = diff_configs(old, new)
        apply_change(old, change)
        assert old.interface("Gi0/0").shutdown

    def test_apply_acl_entry_changes(self):
        old = parse_config(BASE)
        new = old.copy()
        new.acl("FW").entries.pop(0)
        changes = diff_configs(old, new)
        apply_changes({"r1": old}, changes)
        assert old.acl("FW") == new.acl("FW")

    def test_apply_to_unknown_device_rejected(self):
        change = ConfigChange("ghost", "interface.shutdown", "Gi0/0", new=True)
        with pytest.raises(FatalApplyError):
            apply_changes({"r1": parse_config(BASE)}, [change])

    def test_unknown_kind_is_fatal_apply_error(self):
        change = ConfigChange("r1", "interface.shutdown", "Gi0/0", new=True)
        object.__setattr__(change, "kind", "warp.core")
        with pytest.raises(FatalApplyError):
            apply_change(parse_config(BASE), change)

    def test_ospf_change_without_process_rejected(self):
        old = parse_config(BASE)
        change = ConfigChange("r1", "ospf.network", "10.0.0.0/24", new=None)
        with pytest.raises(ConfigError):
            apply_change(old, change)


class TestApplyProperty:
    @given(device_configs(), device_configs())
    @settings(max_examples=120, deadline=None)
    def test_apply_diff_reaches_target(self, old, new):
        new = new.copy()
        new.hostname = old.hostname  # device identity does not change
        changes = diff_configs(old, new)
        target = old.copy()
        for change in changes:
            apply_change(target, change)
        # Interface dict ordering may differ after adds; compare as dicts.
        assert target.interfaces == new.interfaces
        assert target.ospf == new.ospf
        assert target.bgp == new.bgp
        assert sorted(target.static_routes, key=str) == sorted(
            new.static_routes, key=str
        )
        assert target.acls == new.acls
        assert target.vlans == new.vlans
        assert target.default_gateway == new.default_gateway
        assert target.enable_secret == new.enable_secret
        assert target.snmp_community == new.snmp_community
        assert target.vty_password == new.vty_password

    @given(device_configs())
    @settings(max_examples=40, deadline=None)
    def test_apply_empty_diff_is_identity(self, config):
        clone = config.copy()
        for change in diff_configs(config, config.copy()):
            apply_change(clone, change)
        assert clone == config
