import ipaddress

import pytest
from hypothesis import given, settings

from repro.config.acl import Acl, AclEntry
from repro.config.diffing import ConfigChange, diff_configs, diff_networks
from repro.config.model import DeviceConfig, OspfConfig, OspfNetwork, StaticRoute
from repro.config.parser import parse_config
from repro.config.serializer import serialize_config

from tests.config.strategies import device_configs

BASE = """\
hostname r1
!
interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
!
ip access-list extended FW
 deny tcp any host 10.2.0.5 eq www
 permit ip any any
!
ip route 0.0.0.0 0.0.0.0 10.0.12.2
!
"""


@pytest.fixture
def base():
    return parse_config(BASE)


class TestDiffConfigs:
    def test_identical_configs_have_no_diff(self, base):
        assert diff_configs(base, base.copy()) == []

    def test_interface_shutdown_change(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").shutdown = True
        (change,) = diff_configs(base, changed)
        assert change.kind == "interface.shutdown"
        assert change.path == "Gi0/0"
        assert change.old is False and change.new is True
        assert change.category == "interface"
        assert change.action == "config.interface.admin"

    def test_interface_address_change(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").address = ipaddress.IPv4Interface("10.0.99.1/24")
        (change,) = diff_configs(base, changed)
        assert change.kind == "interface.address"

    def test_interface_added_and_removed(self, base):
        changed = base.copy()
        changed.interface("Gi0/1", create=True)
        del changed.interfaces["Gi0/0"]
        kinds = {c.kind for c in diff_configs(base, changed)}
        assert kinds == {"interface.added", "interface.removed"}

    def test_acl_entry_flip_is_remove_add_reorder(self, base):
        changed = base.copy()
        changed.acl("FW").entries[0] = AclEntry.parse(
            "permit tcp any host 10.2.0.5 eq www"
        )
        kinds = sorted(c.kind for c in diff_configs(base, changed))
        # The replaced entry must return to position 0, not the tail, so a
        # final authoritative reorder accompanies the remove/add pair.
        assert kinds == ["acl.entry_added", "acl.entry_removed", "acl.reordered"]

    def test_acl_reorder_detected(self, base):
        changed = base.copy()
        changed.acl("FW").entries.reverse()
        (change,) = diff_configs(base, changed)
        assert change.kind == "acl.reordered"
        assert change.category == "acl"

    def test_acl_added_removed(self, base):
        changed = base.copy()
        changed.add_acl(Acl(name="NEW", entries=[AclEntry.parse("permit ip any any")]))
        del changed.acls["FW"]
        kinds = {c.kind for c in diff_configs(base, changed)}
        assert kinds == {"acl.added", "acl.removed"}

    def test_static_route_change(self, base):
        changed = base.copy()
        changed.static_routes[0] = StaticRoute(
            prefix=ipaddress.IPv4Network("0.0.0.0/0"),
            next_hop=ipaddress.IPv4Address("10.0.13.2"),
        )
        kinds = [c.kind for c in diff_configs(base, changed)]
        assert kinds == ["static_route", "static_route"]
        assert {c.category for c in diff_configs(base, changed)} == {"routing"}

    def test_ospf_process_added(self, base):
        changed = base.copy()
        changed.ospf = OspfConfig(
            networks=[OspfNetwork(ipaddress.IPv4Network("10.0.12.0/24"))]
        )
        (change,) = diff_configs(base, changed)
        assert change.kind == "ospf.process"

    def test_ospf_network_statement_change(self, base):
        before = base.copy()
        before.ospf = OspfConfig(
            networks=[OspfNetwork(ipaddress.IPv4Network("10.0.12.0/24"))]
        )
        after = before.copy()
        after.ospf.networks = [OspfNetwork(ipaddress.IPv4Network("10.0.13.0/24"))]
        kinds = [c.kind for c in diff_configs(before, after)]
        assert kinds == ["ospf.network", "ospf.network"]

    def test_credential_change_categorised(self, base):
        changed = base.copy()
        changed.enable_secret = "new"
        (change,) = diff_configs(base, changed)
        assert change.category == "credential"

    def test_summary_readable(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").shutdown = True
        (change,) = diff_configs(base, changed)
        assert "r1:Gi0/0" in change.summary()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ConfigChange("r1", "bogus.kind")


class TestDiffNetworks:
    def test_spans_devices(self, base):
        other = parse_config(BASE, hostname="r2")
        new = {"r1": base.copy(), "r2": other.copy()}
        new["r1"].interface("Gi0/0").shutdown = True
        new["r2"].interface("Gi0/0").ospf_cost = 50
        changes = diff_networks({"r1": base, "r2": other}, new)
        assert {c.device for c in changes} == {"r1", "r2"}

    def test_ignores_devices_missing_from_old(self, base):
        changes = diff_networks({}, {"r1": base})
        assert changes == []


class TestDiffProperties:
    @given(device_configs())
    @settings(max_examples=60, deadline=None)
    def test_self_diff_is_empty(self, config):
        assert diff_configs(config, config.copy()) == []

    @given(device_configs(), device_configs())
    @settings(max_examples=60, deadline=None)
    def test_diff_roundtrip_through_text(self, a, b):
        # Diffing is invariant under serialize/parse of both sides.
        a2 = parse_config(serialize_config(a))
        b2 = parse_config(serialize_config(b))
        b = b.copy()
        b.hostname = a.hostname  # diff keys on the new config's hostname
        b2.hostname = a2.hostname
        assert len(diff_configs(a, b)) == len(diff_configs(a2, b2))
