import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.acl import Acl, AclEntry
from repro.config.diffing import ConfigChange, diff_configs, diff_networks
from repro.config.model import DeviceConfig, OspfConfig, OspfNetwork, StaticRoute
from repro.config.parser import parse_config
from repro.config.serializer import serialize_config

from tests.config.strategies import device_configs

BASE = """\
hostname r1
!
interface Gi0/0
 ip address 10.0.12.1 255.255.255.0
 no shutdown
!
ip access-list extended FW
 deny tcp any host 10.2.0.5 eq www
 permit ip any any
!
ip route 0.0.0.0 0.0.0.0 10.0.12.2
!
"""


# Small pool so sampled entry lists collide: duplicates and reorders are
# the interesting multiset cases, and random entries would rarely produce
# either.
ENTRY_POOL = tuple(AclEntry.parse(line) for line in (
    "permit ip any any",
    "deny ip any any",
    "permit tcp any host 10.2.0.5 eq www",
    "deny tcp any host 10.2.0.5 eq www",
    "permit udp any any eq 53",
))


@pytest.fixture
def base():
    return parse_config(BASE)


class TestDiffConfigs:
    def test_identical_configs_have_no_diff(self, base):
        assert diff_configs(base, base.copy()) == []

    def test_interface_shutdown_change(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").shutdown = True
        (change,) = diff_configs(base, changed)
        assert change.kind == "interface.shutdown"
        assert change.path == "Gi0/0"
        assert change.old is False and change.new is True
        assert change.category == "interface"
        assert change.action == "config.interface.admin"

    def test_interface_address_change(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").address = ipaddress.IPv4Interface("10.0.99.1/24")
        (change,) = diff_configs(base, changed)
        assert change.kind == "interface.address"

    def test_interface_added_and_removed(self, base):
        changed = base.copy()
        changed.interface("Gi0/1", create=True)
        del changed.interfaces["Gi0/0"]
        kinds = {c.kind for c in diff_configs(base, changed)}
        assert kinds == {"interface.added", "interface.removed"}

    def test_acl_entry_flip_is_remove_add_reorder(self, base):
        changed = base.copy()
        changed.acl("FW").entries[0] = AclEntry.parse(
            "permit tcp any host 10.2.0.5 eq www"
        )
        kinds = sorted(c.kind for c in diff_configs(base, changed))
        # The replaced entry must return to position 0, not the tail, so a
        # final authoritative reorder accompanies the remove/add pair.
        assert kinds == ["acl.entry_added", "acl.entry_removed", "acl.reordered"]

    def test_acl_reorder_detected(self, base):
        changed = base.copy()
        changed.acl("FW").entries.reverse()
        (change,) = diff_configs(base, changed)
        assert change.kind == "acl.reordered"
        assert change.category == "acl"

    def test_acl_added_removed(self, base):
        changed = base.copy()
        changed.add_acl(Acl(name="NEW", entries=[AclEntry.parse("permit ip any any")]))
        del changed.acls["FW"]
        kinds = {c.kind for c in diff_configs(base, changed)}
        assert kinds == {"acl.added", "acl.removed"}

    def test_static_route_change(self, base):
        changed = base.copy()
        changed.static_routes[0] = StaticRoute(
            prefix=ipaddress.IPv4Network("0.0.0.0/0"),
            next_hop=ipaddress.IPv4Address("10.0.13.2"),
        )
        kinds = [c.kind for c in diff_configs(base, changed)]
        assert kinds == ["static_route", "static_route"]
        assert {c.category for c in diff_configs(base, changed)} == {"routing"}

    def test_ospf_process_added(self, base):
        changed = base.copy()
        changed.ospf = OspfConfig(
            networks=[OspfNetwork(ipaddress.IPv4Network("10.0.12.0/24"))]
        )
        (change,) = diff_configs(base, changed)
        assert change.kind == "ospf.process"

    def test_ospf_network_statement_change(self, base):
        before = base.copy()
        before.ospf = OspfConfig(
            networks=[OspfNetwork(ipaddress.IPv4Network("10.0.12.0/24"))]
        )
        after = before.copy()
        after.ospf.networks = [OspfNetwork(ipaddress.IPv4Network("10.0.13.0/24"))]
        kinds = [c.kind for c in diff_configs(before, after)]
        assert kinds == ["ospf.network", "ospf.network"]

    def test_credential_change_categorised(self, base):
        changed = base.copy()
        changed.enable_secret = "new"
        (change,) = diff_configs(base, changed)
        assert change.category == "credential"

    def test_summary_readable(self, base):
        changed = base.copy()
        changed.interface("Gi0/0").shutdown = True
        (change,) = diff_configs(base, changed)
        assert "r1:Gi0/0" in change.summary()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ConfigChange("r1", "bogus.kind")


class TestMultisetHelpers:
    """Duplicate-entry semantics of the ACL/route multiset differ."""

    def test_dropping_one_duplicate_removes_exactly_one(self, base):
        dup = AclEntry.parse("permit ip any any")
        before = base.copy()
        before.acl("FW").entries.append(dup)  # FW now ends permit, permit
        after = before.copy()
        after.acl("FW").entries.pop()
        changes = diff_configs(before, after)
        assert [c.kind for c in changes] == ["acl.entry_removed"]
        assert changes[0].old == dup

    def test_adding_a_duplicate_adds_exactly_one(self, base):
        changed = base.copy()
        changed.acl("FW").entries.append(changed.acl("FW").entries[1])
        changes = diff_configs(base, changed)
        assert [c.kind for c in changes] == ["acl.entry_added"]

    def test_multiset_diff_counts_multiplicity(self):
        from repro.config.diffing import _multiset_diff
        removed, added = _multiset_diff(["a", "a", "b"], ["a", "b", "b"])
        assert removed == ["a"]
        assert added == ["b"]

    def test_without_drops_one_occurrence_per_item(self):
        from repro.config.diffing import _without
        assert _without(["a", "a", "b"], ["a"]) == ["a", "b"]
        assert _without(["a", "b"], []) == ["a", "b"]

    def test_moving_a_duplicate_is_a_pure_reorder(self, base):
        dup = AclEntry.parse("deny tcp any host 10.2.0.5 eq www")
        before = base.copy()
        before.acl("FW").entries.append(dup)  # deny X, permit, deny X
        after = before.copy()
        after.acl("FW").entries = [
            dup, before.acl("FW").entries[0], before.acl("FW").entries[1]
        ]
        # Same multiset, different order: the only change is the reorder.
        (change,) = diff_configs(before, after)
        assert change.kind == "acl.reordered"

    @given(
        st.lists(st.sampled_from(ENTRY_POOL), max_size=6),
        st.lists(st.sampled_from(ENTRY_POOL), max_size=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_acl_diff_replay_roundtrip(self, old_entries, new_entries):
        # Replaying the emitted removes, adds, and (when present) the
        # authoritative reorder over the old entry list must reconstruct
        # the new entry list exactly — including duplicate multiplicity.
        from repro.config.diffing import _multiset_diff, _without

        old = DeviceConfig(hostname="r1")
        old.add_acl(Acl(name="FW", entries=list(old_entries)))
        new = DeviceConfig(hostname="r1")
        new.add_acl(Acl(name="FW", entries=list(new_entries)))
        changes = diff_configs(old, new)
        removed = [c.old for c in changes if c.kind == "acl.entry_removed"]
        added = [c.new for c in changes if c.kind == "acl.entry_added"]
        reorders = [c for c in changes if c.kind == "acl.reordered"]
        expected_removed, expected_added = _multiset_diff(
            list(old_entries), list(new_entries)
        )
        assert removed == expected_removed
        assert added == expected_added
        replayed = _without(list(old_entries), removed) + added
        if reorders:
            (reorder,) = reorders
            assert reorder.new == tuple(new_entries)
            replayed = list(reorder.new)
        assert replayed == list(new_entries)


class TestDiffNetworks:
    def test_spans_devices(self, base):
        other = parse_config(BASE, hostname="r2")
        new = {"r1": base.copy(), "r2": other.copy()}
        new["r1"].interface("Gi0/0").shutdown = True
        new["r2"].interface("Gi0/0").ospf_cost = 50
        changes = diff_networks({"r1": base, "r2": other}, new)
        assert {c.device for c in changes} == {"r1", "r2"}

    def test_ignores_devices_missing_from_old(self, base):
        changes = diff_networks({}, {"r1": base})
        assert changes == []


class TestDiffProperties:
    @given(device_configs())
    @settings(max_examples=60, deadline=None)
    def test_self_diff_is_empty(self, config):
        assert diff_configs(config, config.copy()) == []

    @given(device_configs(), device_configs())
    @settings(max_examples=60, deadline=None)
    def test_diff_roundtrip_through_text(self, a, b):
        # Diffing is invariant under serialize/parse of both sides.
        a2 = parse_config(serialize_config(a))
        b2 = parse_config(serialize_config(b))
        b = b.copy()
        b.hostname = a.hostname  # diff keys on the new config's hostname
        b2.hostname = a2.hostname
        assert len(diff_configs(a, b)) == len(diff_configs(a2, b2))
