import ipaddress

import pytest

from repro.config.acl import Acl, AclEntry, PortMatch
from repro.net.flow import Flow
from repro.util.errors import ConfigError


def flow(src, dst, proto="ip", sport=None, dport=None):
    return Flow.make(src, dst, proto, src_port=sport, dst_port=dport)


class TestPortMatch:
    def test_eq(self):
        assert PortMatch("eq", 80).matches(80)
        assert not PortMatch("eq", 80).matches(81)

    def test_gt_lt(self):
        assert PortMatch("gt", 1023).matches(1024)
        assert not PortMatch("gt", 1023).matches(1023)
        assert PortMatch("lt", 1024).matches(1023)

    def test_range_inclusive(self):
        match = PortMatch("range", 8000, 8100)
        assert match.matches(8000)
        assert match.matches(8100)
        assert not match.matches(7999)

    def test_none_port_never_matches(self):
        assert not PortMatch("eq", 80).matches(None)

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            PortMatch("neq", 80)

    def test_range_requires_high(self):
        with pytest.raises(ConfigError):
            PortMatch("range", 80)


class TestAclEntryParsing:
    def test_parse_permit_any_any(self):
        entry = AclEntry.parse("permit ip any any")
        assert entry.action == "permit"
        assert entry.src == ipaddress.IPv4Network("0.0.0.0/0")

    def test_parse_host_and_wildcard(self):
        entry = AclEntry.parse("deny tcp 10.1.0.0 0.0.255.255 host 10.2.0.5 eq 80")
        assert entry.src == ipaddress.IPv4Network("10.1.0.0/16")
        assert entry.dst == ipaddress.IPv4Network("10.2.0.5/32")
        assert entry.dst_port == PortMatch("eq", 80)

    def test_parse_well_known_port_name(self):
        entry = AclEntry.parse("permit tcp any any eq www")
        assert entry.dst_port == PortMatch("eq", 80)

    def test_parse_source_port(self):
        entry = AclEntry.parse("permit udp any eq 53 any")
        assert entry.src_port == PortMatch("eq", 53)
        assert entry.dst_port is None

    def test_parse_range(self):
        entry = AclEntry.parse("permit tcp any any range 8000 8100")
        assert entry.dst_port == PortMatch("range", 8000, 8100)

    def test_parse_standard(self):
        entry = AclEntry.parse("permit 10.0.1.0 0.0.0.255", kind="standard")
        assert entry.protocol == "ip"
        assert entry.src == ipaddress.IPv4Network("10.0.1.0/24")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ConfigError):
            AclEntry.parse("permit ip any any extra")

    def test_truncated_rejected(self):
        with pytest.raises(ConfigError):
            AclEntry.parse("permit tcp any")

    def test_icmp_with_ports_rejected(self):
        with pytest.raises(ConfigError):
            AclEntry(action="permit", protocol="icmp", dst_port=PortMatch("eq", 1))

    def test_text_roundtrip(self):
        texts = [
            "permit ip any any",
            "deny tcp 10.1.0.0 0.0.255.255 host 10.2.0.5 eq www",
            "permit udp any eq domain 10.0.0.0 0.255.255.255",
            "deny tcp any any range 8000 8100",
        ]
        for text in texts:
            entry = AclEntry.parse(text)
            assert AclEntry.parse(entry.to_text()) == entry


class TestAclEntryMatching:
    def test_ip_entry_matches_any_protocol(self):
        entry = AclEntry.parse("permit ip any any")
        assert entry.matches(flow("1.1.1.1", "2.2.2.2", "tcp", dport=80))
        assert entry.matches(flow("1.1.1.1", "2.2.2.2", "icmp"))

    def test_tcp_entry_does_not_match_generic_ip_flow(self):
        entry = AclEntry.parse("permit tcp any any")
        assert not entry.matches(flow("1.1.1.1", "2.2.2.2", "ip"))

    def test_port_entry_requires_port(self):
        entry = AclEntry.parse("permit tcp any any eq 80")
        assert not entry.matches(flow("1.1.1.1", "2.2.2.2", "tcp"))
        assert entry.matches(flow("1.1.1.1", "2.2.2.2", "tcp", dport=80))

    def test_address_containment(self):
        entry = AclEntry.parse("deny ip 10.1.0.0 0.0.255.255 any")
        assert entry.matches(flow("10.1.2.3", "8.8.8.8"))
        assert not entry.matches(flow("10.2.2.3", "8.8.8.8"))


class TestAclEvaluation:
    def test_first_match_wins(self):
        acl = Acl(
            name="T",
            entries=[
                AclEntry.parse("deny tcp any host 10.0.0.5 eq 80"),
                AclEntry.parse("permit ip any any"),
            ],
        )
        assert not acl.permits(flow("1.1.1.1", "10.0.0.5", "tcp", dport=80))
        assert acl.permits(flow("1.1.1.1", "10.0.0.5", "tcp", dport=443))

    def test_implicit_deny(self):
        acl = Acl(name="T", entries=[AclEntry.parse("permit tcp any any eq 22")])
        assert not acl.permits(flow("1.1.1.1", "2.2.2.2", "udp", dport=53))

    def test_empty_acl_denies_everything(self):
        assert not Acl(name="T").permits(flow("1.1.1.1", "2.2.2.2"))

    def test_matching_entry_none_for_implicit_deny(self):
        acl = Acl(name="T", entries=[AclEntry.parse("permit tcp any any eq 22")])
        assert acl.matching_entry(flow("1.1.1.1", "2.2.2.2", "udp")) is None

    def test_copy_is_independent(self):
        acl = Acl(name="T", entries=[AclEntry.parse("permit ip any any")])
        clone = acl.copy()
        clone.entries.append(AclEntry.parse("deny ip any any"))
        assert len(acl.entries) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Acl(name="T", kind="exotic")
