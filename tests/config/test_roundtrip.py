"""Property: serialize -> parse is the identity on well-formed configs."""

from hypothesis import given, settings

from repro.config.parser import parse_config
from repro.config.serializer import config_line_count, serialize_config

from tests.config.strategies import device_configs


@given(device_configs())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip(config):
    text = serialize_config(config)
    assert parse_config(text) == config


@given(device_configs())
@settings(max_examples=50, deadline=None)
def test_serialization_is_deterministic(config):
    assert serialize_config(config) == serialize_config(config)


@given(device_configs())
@settings(max_examples=50, deadline=None)
def test_line_count_counts_only_config_lines(config):
    text = serialize_config(config)
    expected = sum(
        1 for line in text.splitlines() if line.strip() and line.strip() != "!"
    )
    assert config_line_count(config) == expected
    assert config_line_count(config) >= 2  # hostname + at least one interface line
