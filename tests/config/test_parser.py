import ipaddress

import pytest

from repro.config.parser import parse_config
from repro.util.errors import ConfigError

ROUTER_CONFIG = """\
hostname r1
!
vlan 10
 name users
!
interface GigabitEthernet0/0
 description to r2
 ip address 10.0.12.1 255.255.255.0
 ip ospf cost 10
 ip access-group BLOCK_WEB in
 no shutdown
!
interface GigabitEthernet0/1
 ip address 10.0.13.1 255.255.255.0
 shutdown
!
router ospf 1
 network 10.0.12.0 0.0.0.255 area 0
 network 10.0.13.0 0.0.0.255 area 0
 passive-interface GigabitEthernet0/1
 default-information originate
!
ip route 0.0.0.0 0.0.0.0 10.0.12.2
ip route 192.168.0.0 255.255.0.0 10.0.13.2 200
!
ip access-list extended BLOCK_WEB
 deny tcp 10.1.0.0 0.0.255.255 host 10.2.0.5 eq www
 permit ip any any
!
access-list 10 permit 10.0.1.0 0.0.0.255
access-list 101 permit tcp any any eq 443
!
enable secret 5 $1$abcd$xyz
snmp-server community public RO
!
line vty 0 4
 password cisco
 login
!
"""

SWITCH_CONFIG = """\
hostname sw1
!
vlan 10
 name users
vlan 20
 name servers
!
interface FastEthernet0/1
 switchport mode access
 switchport access vlan 10
 no shutdown
!
interface FastEthernet0/24
 switchport mode trunk
 switchport trunk allowed vlan 10,20
 no shutdown
!
"""

HOST_CONFIG = """\
hostname h1
!
interface eth0
 ip address 10.0.1.100 255.255.255.0
 no shutdown
!
ip default-gateway 10.0.1.1
!
"""


@pytest.fixture
def router():
    return parse_config(ROUTER_CONFIG)


class TestRouterParsing:
    def test_hostname(self, router):
        assert router.hostname == "r1"

    def test_hostname_override(self):
        assert parse_config(ROUTER_CONFIG, hostname="alt").hostname == "alt"

    def test_interface_address(self, router):
        iface = router.interface("GigabitEthernet0/0")
        assert iface.address == ipaddress.IPv4Interface("10.0.12.1/24")
        assert iface.description == "to r2"
        assert iface.ospf_cost == 10
        assert iface.access_group_in == "BLOCK_WEB"
        assert not iface.shutdown

    def test_shutdown_interface(self, router):
        assert router.interface("GigabitEthernet0/1").shutdown

    def test_ospf(self, router):
        assert router.ospf.process_id == 1
        assert len(router.ospf.networks) == 2
        assert router.ospf.networks[0].prefix == ipaddress.IPv4Network("10.0.12.0/24")
        assert router.ospf.networks[0].area == 0
        assert "GigabitEthernet0/1" in router.ospf.passive_interfaces
        assert router.ospf.default_information_originate

    def test_static_routes(self, router):
        default, specific = router.static_routes
        assert default.prefix == ipaddress.IPv4Network("0.0.0.0/0")
        assert default.next_hop == ipaddress.IPv4Address("10.0.12.2")
        assert default.distance == 1
        assert specific.distance == 200

    def test_named_acl(self, router):
        acl = router.acl("BLOCK_WEB")
        assert acl.kind == "extended"
        assert len(acl.entries) == 2
        assert acl.entries[0].action == "deny"

    def test_numbered_acls(self, router):
        assert router.acl("10").kind == "standard"
        assert router.acl("101").kind == "extended"

    def test_credentials(self, router):
        assert router.enable_secret == "$1$abcd$xyz"
        assert router.snmp_community == "public"
        assert router.vty_password == "cisco"

    def test_vlan(self, router):
        assert router.vlans[10].name == "users"


class TestSwitchParsing:
    def test_access_port(self):
        sw = parse_config(SWITCH_CONFIG)
        iface = sw.interface("FastEthernet0/1")
        assert iface.switchport_mode == "access"
        assert iface.access_vlan == 10
        assert iface.carries_vlan(10)
        assert not iface.carries_vlan(20)

    def test_trunk_port(self):
        sw = parse_config(SWITCH_CONFIG)
        iface = sw.interface("FastEthernet0/24")
        assert iface.switchport_mode == "trunk"
        assert iface.trunk_vlans == (10, 20)
        assert iface.carries_vlan(10)
        assert not iface.carries_vlan(30)


class TestHostParsing:
    def test_gateway(self):
        host = parse_config(HOST_CONFIG)
        assert host.default_gateway == ipaddress.IPv4Address("10.0.1.1")
        assert host.primary_address == ipaddress.IPv4Interface("10.0.1.100/24")


class TestErrors:
    def test_unknown_top_level_command(self):
        with pytest.raises(ConfigError, match="line 1"):
            parse_config("frobnicate everything\n")

    def test_unknown_interface_command(self):
        text = "interface Gi0/0\n bogus setting\n"
        with pytest.raises(ConfigError, match="line 2"):
            parse_config(text)

    def test_bad_ospf_network(self):
        text = "router ospf 1\n network 10.0.0.0 area 0\n"
        with pytest.raises(ConfigError):
            parse_config(text)

    def test_indented_line_without_section(self):
        # After "!", the section closes; an indented line is then an error
        # because there is no open context to interpret it in.
        text = "interface Gi0/0\n!\n ip address 10.0.0.1 255.255.255.0\n"
        with pytest.raises(ConfigError):
            parse_config(text)

    def test_bad_acl_direction(self):
        text = "interface Gi0/0\n ip access-group FOO sideways\n"
        with pytest.raises(ConfigError):
            parse_config(text)

    def test_comments_and_blanks_ignored(self):
        cfg = parse_config("! a comment\n\nhostname r9\n")
        assert cfg.hostname == "r9"


class TestModelHelpers:
    def test_owns_address(self, router):
        assert router.owns_address("10.0.12.1")
        assert not router.owns_address("10.0.12.2")

    def test_interface_for_address(self, router):
        iface = router.interface_for_address("10.0.12.77")
        assert iface.name == "GigabitEthernet0/0"
        assert router.interface_for_address("172.16.0.1") is None

    def test_copy_is_deep(self, router):
        clone = router.copy()
        clone.interface("GigabitEthernet0/0").shutdown = True
        assert not router.interface("GigabitEthernet0/0").shutdown

    def test_unknown_interface_raises(self, router):
        with pytest.raises(ConfigError):
            router.interface("Loopback99")
