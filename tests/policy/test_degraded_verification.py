"""Parallel verification degrades gracefully when workers die."""

import pytest

from repro import faults, obs
from repro.faults.registry import Rule
from repro.net.flow import Flow
from repro.policy.model import IsolationPolicy, ReachabilityPolicy
from repro.policy.verification import PolicyVerifier
from repro.util import rand

from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()


def _policies():
    flows = [
        ("reach:h1->h2", "10.1.1.100", "10.2.2.100", ReachabilityPolicy),
        ("reach:h1->h4", "10.1.1.100", "10.4.4.100", ReachabilityPolicy),
        ("reach:h2->h4", "10.2.2.100", "10.4.4.100", ReachabilityPolicy),
        ("reach:h4->h3", "10.4.4.100", "10.3.3.100", ReachabilityPolicy),
        ("isolate:h2->h3", "10.2.2.100", "10.3.3.100", IsolationPolicy),
    ]
    return [
        kind(policy_id, Flow.make(src, dst, "icmp"))
        for policy_id, src, dst, kind in flows
    ]


class TestDegradedVerification:
    def test_worker_deaths_do_not_change_the_report(self):
        network = square_network()
        serial = PolicyVerifier(_policies()).verify_network(network)

        faults.arm({"verify.worker": Rule(probability=0.5, times=99)}, seed=7)
        degraded = PolicyVerifier(_policies(), max_workers=4).verify_network(
            network
        )
        assert faults.registry().firings  # some workers really died

        assert [r.policy.policy_id for r in degraded.results] == [
            r.policy.policy_id for r in serial.results
        ]
        assert [r.holds for r in degraded.results] == [
            r.holds for r in serial.results
        ]

    def test_all_workers_dying_still_completes(self):
        network = square_network()
        faults.arm(
            {"verify.worker": Rule(probability=1.0, times=9999)}, seed=7
        )
        report = PolicyVerifier(_policies(), max_workers=4).verify_network(
            network
        )
        assert report.checked_count == len(_policies())
        assert len(faults.registry().firings) == len(_policies())

    def test_degraded_pass_counted_once(self):
        network = square_network()
        obs.reset()
        obs.enable()
        try:
            faults.arm(
                {"verify.worker": Rule(probability=1.0, times=9999)}, seed=7
            )
            PolicyVerifier(_policies(), max_workers=4).verify_network(network)
        finally:
            obs.disable()
        assert obs.registry().get("verify.degraded").value == 1

    def test_serial_verification_never_consults_the_fault(self):
        network = square_network()
        faults.arm(
            {"verify.worker": Rule(probability=1.0, times=9999)}, seed=7
        )
        report = PolicyVerifier(_policies()).verify_network(network)
        assert report.checked_count == len(_policies())
        assert faults.registry().calls("verify.worker") == 0

    def test_worker_deaths_leave_no_sentinel_in_results(self):
        network = square_network()
        faults.arm({"verify.worker": Rule(probability=0.7, times=99)}, seed=3)
        report = PolicyVerifier(_policies(), max_workers=2).verify_network(
            network
        )
        for result in report.results:
            assert hasattr(result, "holds")
