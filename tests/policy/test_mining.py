from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network

from tests.fixtures import square_network


class TestMiningOnSquare:
    def test_mines_reachability_and_isolation(self):
        policies = mine_policies(square_network())
        kinds = {p.kind for p in policies}
        assert kinds == {"reachability", "isolation"}

    def test_isolation_mined_for_acl_block(self):
        policies = mine_policies(square_network())
        isolations = [p for p in policies if p.kind == "isolation"]
        # Exactly the h2-LAN -> h3-LAN block on r3.
        assert len(isolations) == 1
        assert "10.2.2.0/24->10.3.3.0/24" in isolations[0].policy_id

    def test_mined_policies_hold_by_construction(self):
        network = square_network()
        policies = mine_policies(network)
        report = PolicyVerifier(policies).verify_network(network)
        assert report.holds

    def test_deterministic(self):
        a = [p.policy_id for p in mine_policies(square_network())]
        b = [p.policy_id for p in mine_policies(square_network())]
        assert a == b

    def test_lan_granularity_dedupes_same_subnet_hosts(self):
        # All four square hosts are in distinct LANs -> 4*3 pairs.
        policies = mine_policies(square_network(), include_services=False)
        assert len(policies) == 12


class TestMiningOnEnterprise:
    def test_mined_set_holds(self):
        network = build_enterprise_network()
        policies = mine_policies(network)
        assert PolicyVerifier(policies).verify_network(network).holds

    def test_service_policies_present(self):
        policies = mine_policies(build_enterprise_network())
        services = [p for p in policies if p.policy_id.startswith("service:")]
        assert services, "expected service policies from ACL permits"
        # The DB permit (app VLAN -> db1:5432) must be among them.
        assert any("5432" in p.policy_id for p in services)

    def test_include_services_flag(self):
        with_services = mine_policies(build_enterprise_network())
        without = mine_policies(
            build_enterprise_network(), include_services=False
        )
        assert len(with_services) > len(without)

    def test_broken_network_mines_fewer_reachability_policies(self):
        healthy = build_enterprise_network()
        broken = build_enterprise_network()
        broken.config("dist1").interface("Gi0/0").shutdown = True
        healthy_count = len(mine_policies(healthy))
        broken_count = len(mine_policies(broken))
        assert broken_count <= healthy_count


class TestRobustMining:
    def test_square_ring_survives_backbone_failures(self):
        # Every backbone (router-router) link has a ring detour, so the
        # k=1 robust set equals the base set.
        network = square_network()
        base = mine_policies(network, include_services=False)
        robust = mine_policies(
            network, include_services=False, max_failures=1
        )
        assert {p.policy_id for p in robust} == {p.policy_id for p in base}

    def test_single_homed_corridors_drop_under_failures(self):
        # The enterprise network has single-homed corridors (e.g. dept1
        # hangs off dist1 alone): their reachability policies are not
        # 1-failure robust.
        network = build_enterprise_network()
        base = mine_policies(network)
        robust = mine_policies(network, max_failures=1)
        assert len(robust) < len(base)

    def test_isolation_policies_survive_failures(self):
        # Link failures only reduce reachability; they cannot open a path
        # through an ACL, so isolation policies survive the sweep.
        network = build_enterprise_network()
        base_isolation = {
            p.policy_id
            for p in mine_policies(network)
            if p.kind == "isolation"
        }
        robust_isolation = {
            p.policy_id
            for p in mine_policies(network, max_failures=1)
            if p.kind == "isolation"
        }
        assert robust_isolation == base_isolation

    def test_all_scope_fails_access_links_too(self):
        # With failure_scope="all", single-homed hosts keep no
        # reachability policies (their own access link is a failure case).
        network = square_network()
        robust = mine_policies(
            network, include_services=False,
            max_failures=1, failure_scope="all",
        )
        assert all(p.kind == "isolation" for p in robust)

    def test_robust_subset_of_base(self):
        network = build_enterprise_network()
        base_ids = {p.policy_id for p in mine_policies(network)}
        robust_ids = {
            p.policy_id for p in mine_policies(network, max_failures=1)
        }
        assert robust_ids <= base_ids


class TestWaypointMining:
    def test_enterprise_waypoints_at_firewall(self):
        policies = mine_policies(
            build_enterprise_network(), include_waypoints=True
        )
        waypoints = [p for p in policies if p.kind == "waypoint"]
        assert waypoints
        assert all(p.waypoint == "fw" for p in waypoints)
        assert all(not str(p.flow.src_ip).startswith("10.") for p in waypoints)

    def test_waypoints_hold_on_healthy_network(self):
        network = build_enterprise_network()
        policies = mine_policies(network, include_waypoints=True)
        assert PolicyVerifier(policies).verify_network(network).holds

    def test_unbinding_firewall_acls_moves_the_waypoint(self):
        # With fw's ACL bindings removed, fw stops being a filtering device:
        # external traffic spills deeper and the next applied-ACL device
        # (dist1, which carries DB_PROTECT) becomes the implied waypoint.
        network = build_enterprise_network()
        fw = network.config("fw")
        for iface in fw.interfaces.values():
            iface.access_group_in = None
            iface.access_group_out = None
        policies = mine_policies(network, include_waypoints=True)
        waypoints = [p for p in policies if p.kind == "waypoint"]
        assert waypoints
        assert all(p.waypoint != "fw" for p in waypoints)

    def test_off_by_default(self):
        policies = mine_policies(build_enterprise_network())
        assert not [p for p in policies if p.kind == "waypoint"]
