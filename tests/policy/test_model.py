import pytest

from repro.control.builder import build_dataplane
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.net.flow import Flow
from repro.policy.model import (
    IsolationPolicy,
    ReachabilityPolicy,
    WaypointPolicy,
    policy_from_dict,
)
from repro.util.errors import ReproError

from tests.fixtures import square_network


@pytest.fixture
def analyzer():
    return ReachabilityAnalyzer(build_dataplane(square_network()))


def flow(src, dst, proto="icmp"):
    return Flow.make(src, dst, proto)


class TestReachabilityPolicy:
    def test_holds_when_delivered(self, analyzer):
        policy = ReachabilityPolicy("p1", flow("10.1.1.100", "10.2.2.100"))
        assert policy.check(analyzer).holds

    def test_violated_when_dropped(self, analyzer):
        policy = ReachabilityPolicy("p2", flow("10.2.2.100", "10.3.3.100"))
        result = policy.check(analyzer)
        assert not result.holds
        assert "denied-out" in result.detail


class TestIsolationPolicy:
    def test_holds_when_blocked(self, analyzer):
        policy = IsolationPolicy("p3", flow("10.2.2.100", "10.3.3.100"))
        assert policy.check(analyzer).holds

    def test_violated_when_delivered(self, analyzer):
        policy = IsolationPolicy("p4", flow("10.1.1.100", "10.2.2.100"))
        result = policy.check(analyzer)
        assert not result.holds
        assert "delivered" in result.detail


class TestWaypointPolicy:
    def test_holds_when_traversed(self, analyzer):
        policy = WaypointPolicy(
            "p5", flow("10.1.1.100", "10.2.2.100"), waypoint="r2"
        )
        assert policy.check(analyzer).holds

    def test_violated_when_bypassed(self, analyzer):
        policy = WaypointPolicy(
            "p6", flow("10.1.1.100", "10.2.2.100"), waypoint="r3"
        )
        assert not policy.check(analyzer).holds

    def test_vacuously_holds_when_not_delivered(self, analyzer):
        policy = WaypointPolicy(
            "p7", flow("10.2.2.100", "10.3.3.100"), waypoint="r3"
        )
        assert policy.check(analyzer).holds

    def test_requires_waypoint(self):
        with pytest.raises(ReproError):
            WaypointPolicy("p8", flow("10.1.1.100", "10.2.2.100"))


class TestSerialization:
    def test_roundtrip_reachability(self):
        policy = ReachabilityPolicy(
            "p9", Flow.make("10.0.0.1", "10.0.0.2", "tcp", dst_port=80),
            comment="web",
        )
        assert policy_from_dict(policy.to_dict()) == policy

    def test_roundtrip_waypoint(self):
        policy = WaypointPolicy(
            "p10", flow("10.0.0.1", "10.0.0.2"), waypoint="fw"
        )
        restored = policy_from_dict(policy.to_dict())
        assert restored == policy
        assert restored.waypoint == "fw"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            policy_from_dict({"kind": "quantum", "id": "x"})

    def test_result_str(self, analyzer):
        policy = ReachabilityPolicy("p11", flow("10.1.1.100", "10.2.2.100"))
        assert "HOLDS" in str(policy.check(analyzer))
