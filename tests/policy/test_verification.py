import pytest

from repro.control.builder import build_dataplane
from repro.net.flow import Flow
from repro.policy.model import IsolationPolicy, ReachabilityPolicy
from repro.policy.verification import PolicyVerifier

from tests.fixtures import square_network


@pytest.fixture
def network():
    return square_network()


@pytest.fixture
def policies():
    return [
        ReachabilityPolicy("reach:h1->h2", Flow.make("10.1.1.100", "10.2.2.100", "icmp")),
        ReachabilityPolicy("reach:h1->h3", Flow.make("10.1.1.100", "10.3.3.100", "icmp")),
        IsolationPolicy("isolate:h2->h3", Flow.make("10.2.2.100", "10.3.3.100", "icmp")),
    ]


class TestPolicyVerifier:
    def test_all_hold_on_healthy_network(self, network, policies):
        report = PolicyVerifier(policies).verify_network(network)
        assert report.holds
        assert report.checked_count == 3
        assert report.violation_count == 0

    def test_interface_down_violates_reachability(self, network, policies):
        network.config("r3").interface("Gi0/2").shutdown = True
        report = PolicyVerifier(policies).verify_network(network)
        assert not report.holds
        violated = {r.policy.policy_id for r in report.violations}
        assert "reach:h1->h3" in violated
        # Isolation even "holds harder" with the interface down.
        assert "isolate:h2->h3" not in violated

    def test_acl_removal_violates_isolation(self, network, policies):
        del network.config("r3").acls["PROTECT_H3"]
        network.config("r3").interface("Gi0/2").access_group_out = None
        report = PolicyVerifier(policies).verify_network(network)
        violated = {r.policy.policy_id for r in report.violations}
        assert violated == {"isolate:h2->h3"}

    def test_verify_dataplane_equivalent(self, network, policies):
        verifier = PolicyVerifier(policies)
        via_network = verifier.verify_network(network)
        via_dataplane = verifier.verify_dataplane(build_dataplane(network))
        assert [r.holds for r in via_network.results] == [
            r.holds for r in via_dataplane.results
        ]

    def test_summary(self, network, policies):
        report = PolicyVerifier(policies).verify_network(network)
        assert report.summary() == "3/3 policies hold"

    def test_len(self, policies):
        assert len(PolicyVerifier(policies)) == 3


class TestReportAccessors:
    def test_violated_policies(self, network, policies):
        network.config("r3").interface("Gi0/2").shutdown = True
        report = PolicyVerifier(policies).verify_network(network)
        assert all(
            p.policy_id.startswith("reach") for p in report.violated_policies()
        )
