"""Parallel policy verification: same report as serial, thread-safe caches."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.control.builder import build_dataplane
from repro.control.cache import clear_dataplane_cache
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()


@pytest.fixture()
def network():
    return square_network()


@pytest.fixture()
def policies(network):
    mined = mine_policies(network)
    assert len(mined) > 1, "parallel tests need a multi-policy set"
    return mined


def _digest(report):
    return [(r.policy.policy_id, r.holds) for r in report.results]


class TestParallelEquivalence:
    def test_parallel_matches_serial(self, network, policies):
        plane = build_dataplane(network, use_cache=False)
        serial = PolicyVerifier(policies).verify_dataplane(plane)
        parallel = PolicyVerifier(policies, max_workers=4).verify_dataplane(
            plane
        )
        assert _digest(parallel) == _digest(serial)

    def test_report_order_matches_policy_order(self, network, policies):
        plane = build_dataplane(network, use_cache=False)
        report = PolicyVerifier(policies, max_workers=4).verify_dataplane(plane)
        assert [r.policy.policy_id for r in report.results] == [
            policy.policy_id for policy in policies
        ]

    def test_zero_means_cpu_count(self, policies):
        verifier = PolicyVerifier(policies, max_workers=0)
        assert verifier._worker_count() >= 1

    def test_single_policy_stays_serial(self, network, policies):
        plane = build_dataplane(network, use_cache=False)
        report = PolicyVerifier(policies[:1], max_workers=4).verify_dataplane(
            plane
        )
        assert len(report.results) == 1


class TestThreadSafety:
    def test_concurrent_verify_dataplane(self, network, policies):
        """Many verifiers hammering one plane's shared trace cache."""
        plane = build_dataplane(network)
        verifier = PolicyVerifier(policies, max_workers=2)
        with ThreadPoolExecutor(max_workers=8) as pool:
            reports = list(pool.map(
                lambda _: verifier.verify_dataplane(plane), range(16)
            ))
        expected = _digest(PolicyVerifier(policies).verify_dataplane(plane))
        for report in reports:
            assert _digest(report) == expected

    def test_shared_analyzer_populates_one_cache(self, network, policies):
        plane = build_dataplane(network, use_cache=False)
        analyzer = ReachabilityAnalyzer(plane)
        PolicyVerifier(policies, max_workers=4).verify_dataplane(
            plane, analyzer=analyzer
        )
        # The plane-attached cache and the analyzer's are one and the same,
        # and the sweep populated it.
        assert plane.trace_cache
        second = ReachabilityAnalyzer(plane)
        before = len(plane.trace_cache)
        PolicyVerifier(policies).verify_dataplane(plane, analyzer=second)
        assert len(plane.trace_cache) >= before
