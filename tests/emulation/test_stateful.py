"""Stateful property test: emulation snapshots behave like version control.

A hypothesis state machine issues random (valid and invalid) console
commands, takes snapshots, and restores them — checking after every step
that restore really returns to the snapshotted state and that the cached
data plane always reflects the current configs.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.config.serializer import serialize_config
from repro.emulation.network import EmulatedNetwork

from tests.fixtures import square_network

COMMAND_POOL = [
    "show ip route",
    "show running-config",
    "configure terminal",
    "interface Gi0/0",
    "interface Gi0/2",
    "shutdown",
    "no shutdown",
    "ip ospf cost 42",
    "description fuzzed",
    "ip address 10.42.0.1 255.255.255.0",
    "exit",
    "end",
    "garbage command",
    "router ospf 1",
    "passive-interface Gi0/2",
    "no passive-interface Gi0/2",
]


def _fingerprint(emnet):
    return {
        name: serialize_config(config)
        for name, config in emnet.network.configs.items()
    }


class SnapshotMachine(RuleBasedStateMachine):
    @initialize()
    def boot(self):
        self.emnet = EmulatedNetwork(square_network())
        self.consoles = {}
        self.saved = {}  # label -> fingerprint

    def _console(self, device):
        if device not in self.consoles:
            self.consoles[device] = self.emnet.console(device)
        return self.consoles[device]

    @rule(device=st.sampled_from(["r1", "r2"]),
          command=st.sampled_from(COMMAND_POOL))
    def run_command(self, device, command):
        result = self._console(device).execute(command)
        assert isinstance(result.ok, bool)

    @rule(label=st.sampled_from(["a", "b", "c"]))
    def snapshot(self, label):
        self.emnet.snapshot(label)
        self.saved[label] = _fingerprint(self.emnet)

    @rule(label=st.sampled_from(["a", "b", "c"]))
    def restore(self, label):
        if label not in self.saved:
            return
        self.emnet.restore(label)
        # Consoles hold references to replaced configs; drop them like the
        # real system drops sessions on restore.
        self.consoles.clear()
        assert _fingerprint(self.emnet) == self.saved[label]

    @invariant()
    def dataplane_matches_configs(self):
        if not hasattr(self, "emnet"):
            return
        # A freshly compiled data plane over the same configs must agree
        # with whatever the cache serves.
        from repro.control.builder import build_dataplane

        cached = self.emnet.dataplane()
        fresh = build_dataplane(self.emnet.network)
        for device in ("r1", "r2", "r3", "r4"):
            cached_routes = sorted(str(r) for r in cached.fib(device))
            fresh_routes = sorted(str(r) for r in fresh.fib(device))
            assert cached_routes == fresh_routes

    @invariant()
    def node_configs_alias_network_configs(self):
        if not hasattr(self, "emnet"):
            return
        for name, node in self.emnet.nodes.items():
            assert node.config is self.emnet.network.config(name)


TestSnapshotMachine = SnapshotMachine.TestCase
TestSnapshotMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
