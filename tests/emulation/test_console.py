import pytest

from repro.emulation.console import available_commands
from repro.emulation.network import EmulatedNetwork
from repro.net.topology import DeviceKind
from repro.util.errors import EmulationError

from tests.fixtures import square_network, switched_lan


@pytest.fixture
def emnet():
    return EmulatedNetwork(square_network())


@pytest.fixture
def r1(emnet):
    return emnet.console("r1")


def run(console, *commands):
    results = [console.execute(cmd) for cmd in commands]
    for result in results:
        assert result.ok, f"{result.command}: {result.error}"
    return results[-1]


class TestShowCommands:
    def test_show_running_config(self, r1):
        result = run(r1, "show running-config")
        assert "hostname r1" in result.output
        assert result.action == "view.config"
        assert result.resource == "r1"

    def test_show_ip_route(self, r1):
        result = run(r1, "show ip route")
        assert "10.2.2.0/24" in result.output
        assert result.action == "view.route"

    def test_show_ospf_neighbors(self, r1):
        result = run(r1, "show ip ospf neighbor")
        assert "r2" in result.output and "r4" in result.output

    def test_show_interfaces(self, r1):
        result = run(r1, "show interfaces")
        assert "Gi0/0 is up" in result.output

    def test_show_access_lists(self, emnet):
        result = run(emnet.console("r3"), "show access-lists")
        assert "PROTECT_H3" in result.output

    def test_show_vlan_on_switch(self):
        emnet = EmulatedNetwork(switched_lan())
        result = run(emnet.console("sw1"), "show vlan")
        assert "users" in result.output

    def test_show_vlan_rejected_on_router(self, r1):
        result = r1.execute("show vlan")
        assert not result.ok


class TestProbes:
    def test_ping_success(self, emnet):
        result = run(emnet.console("h1"), "ping 10.2.2.100")
        assert "100 percent" in result.output
        assert result.action == "probe.ping"

    def test_ping_failure_reports_disposition(self, emnet):
        result = run(emnet.console("h2"), "ping 10.3.3.100")
        assert "0 percent" in result.output
        assert "denied-out" in result.output

    def test_traceroute_lists_hops(self, emnet):
        result = run(emnet.console("h1"), "traceroute 10.3.3.100")
        assert "r1" in result.output and "r3" in result.output

    def test_ping_requires_argument(self, r1):
        assert not r1.execute("ping").ok


class TestConfigMode:
    def test_mode_transitions(self, r1):
        assert r1.mode == "exec"
        run(r1, "configure terminal")
        assert r1.mode == "config"
        run(r1, "interface Gi0/0")
        assert r1.mode == "config-if"
        run(r1, "exit")
        assert r1.mode == "config"
        run(r1, "end")
        assert r1.mode == "exec"

    def test_config_commands_invalid_in_exec(self, r1):
        assert not r1.execute("interface Gi0/0").ok

    def test_shutdown_interface_changes_dataplane(self, emnet, r1):
        run(r1, "configure terminal", "interface Gi0/2", "shutdown", "end")
        result = run(emnet.console("h2"), "ping 10.1.1.100")
        assert "0 percent" in result.output

    def test_ip_address_change(self, emnet, r1):
        run(
            r1,
            "configure terminal",
            "interface Gi0/0",
            "ip address 10.0.99.1 255.255.255.0",
            "end",
        )
        assert str(emnet.network.config("r1").interface("Gi0/0").address) == (
            "10.0.99.1/24"
        )

    def test_static_route_add_remove(self, emnet, r1):
        run(r1, "configure terminal", "ip route 172.16.0.0 255.255.0.0 10.0.12.2")
        assert len(emnet.network.config("r1").static_routes) == 1
        run(r1, "no ip route 172.16.0.0 255.255.0.0 10.0.12.2", "end")
        assert emnet.network.config("r1").static_routes == []

    def test_ospf_network_statements(self, emnet, r1):
        run(
            r1,
            "configure terminal",
            "router ospf 1",
            "no network 10.0.12.0 0.0.0.3 area 0",
            "end",
        )
        # Statement was /24 in the fixture so "no" of a /30 removes nothing.
        assert len(emnet.network.config("r1").ospf.networks) == 3
        run(
            r1,
            "configure terminal",
            "router ospf 1",
            "no network 10.0.12.0 0.0.0.255 area 0",
            "end",
        )
        assert len(emnet.network.config("r1").ospf.networks) == 2

    def test_acl_editing(self, emnet, r1):
        run(
            r1,
            "configure terminal",
            "ip access-list extended TEST",
            "permit tcp any any eq 80",
            "deny ip any any",
            "end",
        )
        acl = emnet.network.config("r1").acl("TEST")
        assert len(acl.entries) == 2
        run(
            r1,
            "configure terminal",
            "ip access-list extended TEST",
            "no deny ip any any",
            "end",
        )
        assert len(acl.entries) == 1

    def test_numbered_acl(self, emnet, r1):
        run(r1, "configure terminal", "access-list 101 permit ip any any", "end")
        assert emnet.network.config("r1").acl("101").kind == "extended"

    def test_switchport_on_switch(self):
        emnet = EmulatedNetwork(switched_lan())
        console = emnet.console("sw2")
        run(
            console,
            "configure terminal",
            "interface Fa0/2",
            "switchport access vlan 20",
            "end",
        )
        assert emnet.network.config("sw2").interface("Fa0/2").access_vlan == 20

    def test_vlan_declaration(self):
        emnet = EmulatedNetwork(switched_lan())
        console = emnet.console("sw1")
        run(console, "configure terminal", "vlan 30", "name guests", "end")
        assert emnet.network.config("sw1").vlans[30].name == "guests"

    def test_bad_argument_reports_error(self, r1):
        run(r1, "configure terminal", "interface Gi0/0")
        result = r1.execute("ip address 999.1.1.1 255.255.255.0")
        assert not result.ok
        assert result.error.startswith("%")

    def test_description(self, emnet, r1):
        run(r1, "configure terminal", "interface Gi0/0", "description core link")
        iface = emnet.network.config("r1").interface("Gi0/0")
        assert iface.description == "core link"


class TestClassification:
    def test_classify_without_executing(self, emnet, r1):
        action, resource = r1.classify("show running-config")
        assert (action, resource) == ("view.config", "r1")
        # Nothing changed: classification is a dry run.
        assert emnet.network.config("r1").hostname == "r1"

    def test_classify_config_command(self, r1):
        run(r1, "configure terminal", "interface Gi0/0")
        action, resource = r1.classify("shutdown")
        assert action == "config.interface.admin"
        assert resource == "r1:Gi0/0"

    def test_classify_invalid(self, r1):
        assert r1.classify("frobnicate")[0] == "invalid"

    def test_write_memory_is_system_save(self, r1):
        assert r1.classify("write memory")[0] == "system.save"

    def test_reload_bumps_boot_count(self, emnet, r1):
        before = emnet.node("r1").boot_count
        run(r1, "reload")
        assert emnet.node("r1").boot_count == before + 1


class TestNodeState:
    def test_console_on_stopped_node_fails(self, emnet):
        emnet.node("r1").stop()
        with pytest.raises(EmulationError):
            emnet.console("r1").execute("show running-config")

    def test_restart(self, emnet):
        node = emnet.node("r1")
        node.stop()
        node.start()
        assert node.boot_count == 2
        assert emnet.console("r1").execute("show running-config").ok


class TestAvailableCommands:
    def test_host_has_fewer_commands_than_router(self):
        host_cmds = available_commands(DeviceKind.HOST)
        router_cmds = available_commands(DeviceKind.ROUTER)
        assert len(host_cmds) < len(router_cmds)

    def test_switch_has_vlan_commands(self):
        names = {spec.tokens for spec in available_commands(DeviceKind.SWITCH)}
        assert ("show", "vlan") in names
        assert ("router", "ospf") not in names

    def test_every_spec_has_kinds_and_action(self):
        from repro.emulation.console import CONSOLE_COMMANDS

        for spec in CONSOLE_COMMANDS:
            assert spec.kinds
            assert "." in spec.action


class TestInformationalShows:
    def test_show_ip_interface_brief(self, r1):
        result = run(r1, "show ip interface brief")
        assert "Gi0/0" in result.output
        assert "10.0.12.1" in result.output
        assert result.action == "view.interface"

    def test_show_version_reveals_image(self, r1):
        result = run(r1, "show version")
        assert "cisco" in result.output
        assert result.action == "view.system"

    def test_show_version_reflects_boot_count(self, emnet, r1):
        run(r1, "reload")
        result = run(emnet.console("r1"), "show version")
        assert "boot count 2" in result.output


class TestHostConsoles:
    def test_host_interface_admin(self, emnet):
        # Paper §2.1: technicians debug "by bringing a network interface
        # up/down" — on the affected host itself.
        console = emnet.console("h1")
        run(console, "configure terminal", "interface eth0", "shutdown", "end")
        assert emnet.network.config("h1").interface("eth0").shutdown
        run(console, "configure terminal", "interface eth0",
            "no shutdown", "end")
        assert not emnet.network.config("h1").interface("eth0").shutdown

    def test_host_default_gateway(self, emnet):
        console = emnet.console("h1")
        run(console, "configure terminal",
            "ip default-gateway 10.1.1.254", "end")
        assert str(emnet.network.config("h1").default_gateway) == "10.1.1.254"

    def test_host_cannot_run_router_protocols(self, emnet):
        console = emnet.console("h1")
        run(console, "configure terminal")
        assert not console.execute("router ospf 1").ok
        assert not console.execute("ip route 0.0.0.0 0.0.0.0 10.1.1.1").ok

    def test_host_exec_shell(self, emnet):
        result = run(emnet.console("h1"), "exec tar czf /tmp/out.tgz /data")
        assert result.action == "exec.shell"
        assert "executed" in result.output

    def test_exec_requires_command(self, emnet):
        assert not emnet.console("h1").execute("exec").ok

    def test_router_has_no_exec_shell(self, r1):
        assert not r1.execute("exec rm -rf /").ok
