"""Robustness properties of the console: no crashes, honest classification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulation.console import CONSOLE_COMMANDS
from repro.emulation.network import EmulatedNetwork

from tests.fixtures import square_network

# Arbitrary junk plus near-miss fragments of real commands.
junk_commands = st.one_of(
    st.text(
        alphabet="abcdefghijklmnop 0123456789./-", min_size=0, max_size=40
    ),
    st.sampled_from([
        "show", "show ip", "ip address", "interface", "no", "router",
        "configure", "write", "ping", "access-list", "network 10.0.0.0",
        "switchport", "shutdown extra tokens here",
    ]),
)


class TestConsoleRobustness:
    @given(st.lists(junk_commands, min_size=1, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_input_never_raises(self, commands):
        emnet = EmulatedNetwork(square_network())
        console = emnet.console("r1")
        for command in commands:
            result = console.execute(command)
            assert isinstance(result.ok, bool)
            assert result.action

    @given(st.lists(junk_commands, min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_classify_never_mutates(self, commands):
        emnet = EmulatedNetwork(square_network())
        emnet.snapshot("before")
        baseline = emnet.current_configs()
        console = emnet.console("r1")
        for command in commands:
            console.classify(command)
        assert emnet.current_configs() == baseline

    @given(st.lists(junk_commands, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_classification_matches_execution(self, commands):
        # classify() must predict exactly the action/resource execute() uses.
        emnet_a = EmulatedNetwork(square_network())
        emnet_b = EmulatedNetwork(square_network())
        console_a = emnet_a.console("r2")
        console_b = emnet_b.console("r2")
        for command in commands:
            predicted = console_a.classify(command)
            result = console_a.execute(command)
            # Keep console_b in lockstep so both see identical mode state.
            console_b.execute(command)
            if result.action != "invalid":
                assert predicted == (result.action, result.resource)

    def test_failed_commands_leave_config_untouched(self):
        emnet = EmulatedNetwork(square_network())
        emnet.snapshot("before")
        baseline = emnet.current_configs()
        console = emnet.console("r1")
        console.execute("configure terminal")
        console.execute("interface Gi0/0")
        for bad in (
            "ip address banana 255.255.255.0",
            "ip address 10.0.0.1",
            "ip ospf cost",
            "ip access-group ONLY_NAME",
        ):
            result = console.execute(bad)
            assert not result.ok
        console.execute("end")
        assert emnet.current_configs() == baseline


class TestCatalogConsistency:
    def test_modes_are_known(self):
        modes = {
            "exec", "config", "config-if", "config-router", "config-bgp",
            "config-acl", "config-vlan",
        }
        assert {spec.mode for spec in CONSOLE_COMMANDS} <= modes

    def test_no_duplicate_dispatch_entries(self):
        seen = set()
        for spec in CONSOLE_COMMANDS:
            key = (spec.mode, spec.tokens)
            assert key not in seen, key
            seen.add(key)

    def test_every_config_mode_has_end(self):
        for mode in ("config", "config-if", "config-router", "config-bgp",
                     "config-acl", "config-vlan"):
            ends = [
                spec for spec in CONSOLE_COMMANDS
                if spec.mode == mode and spec.tokens == ("end",)
            ]
            assert ends, f"mode {mode} has no 'end'"

    def test_handlers_exist(self):
        from repro.emulation.console import Console

        for spec in CONSOLE_COMMANDS:
            assert hasattr(Console, spec.handler), spec.handler
