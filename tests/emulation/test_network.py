import pytest

from repro.emulation.image import ImageInfo, default_image
from repro.emulation.network import EmulatedNetwork
from repro.net.topology import DeviceKind
from repro.util.errors import EmulationError

from tests.fixtures import square_network


@pytest.fixture
def emnet():
    return EmulatedNetwork(square_network())


class TestIsolation:
    def test_boot_copies_configs(self, emnet):
        original = square_network()
        emnet2 = EmulatedNetwork(original)
        emnet2.console("r1").execute("configure terminal")
        emnet2.console("r1").execute("hostname changed")
        # the console above was a fresh console in exec mode; do it properly
        console = emnet2.console("r1")
        for cmd in ("configure terminal", "hostname changed", "end"):
            console.execute(cmd)
        assert original.config("r1").hostname == "r1"

    def test_nodes_share_config_with_network(self, emnet):
        emnet.node("r1").config.interface("Gi0/0").shutdown = True
        assert emnet.network.config("r1").interface("Gi0/0").shutdown


class TestDataplaneCaching:
    def test_dataplane_cached_until_dirty(self, emnet):
        first = emnet.dataplane()
        assert emnet.dataplane() is first
        emnet.mark_dirty()
        assert emnet.dataplane() is not first

    def test_config_command_invalidates(self, emnet):
        first = emnet.dataplane()
        console = emnet.console("r1")
        for cmd in ("configure terminal", "interface Gi0/0", "shutdown", "end"):
            console.execute(cmd)
        assert emnet.dataplane() is not first

    def test_show_command_does_not_invalidate(self, emnet):
        first = emnet.dataplane()
        emnet.console("r1").execute("show running-config")
        assert emnet.dataplane() is first


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, emnet):
        emnet.snapshot("before")
        console = emnet.console("r1")
        for cmd in ("configure terminal", "interface Gi0/2", "shutdown", "end"):
            console.execute(cmd)
        assert emnet.network.config("r1").interface("Gi0/2").shutdown
        emnet.restore("before")
        assert not emnet.network.config("r1").interface("Gi0/2").shutdown

    def test_restore_rebinds_node_configs(self, emnet):
        emnet.snapshot("before")
        emnet.restore("before")
        node_config = emnet.node("r1").config
        assert node_config is emnet.network.config("r1")

    def test_unknown_snapshot(self, emnet):
        with pytest.raises(EmulationError):
            emnet.restore("nope")

    def test_snapshot_labels(self, emnet):
        emnet.snapshot("a")
        emnet.snapshot("b")
        assert emnet.snapshots() == ["a", "b"]


class TestImages:
    def test_default_images_by_kind(self, emnet):
        assert emnet.node("r1").image == default_image(DeviceKind.ROUTER)
        assert emnet.node("h1").image == default_image(DeviceKind.HOST)

    def test_digest_deterministic(self):
        a = ImageInfo("cisco", "ios-xe", "17.3.4a")
        b = ImageInfo("cisco", "ios-xe", "17.3.4a")
        assert a.digest == b.digest
        assert a.digest != ImageInfo("cisco", "ios-xe", "17.9.1").digest


class TestExports:
    def test_current_configs_are_copies(self, emnet):
        configs = emnet.current_configs()
        configs["r1"].hostname = "tampered"
        assert emnet.network.config("r1").hostname == "r1"

    def test_node_count(self, emnet):
        assert emnet.node_count() == 8

    def test_unknown_node(self, emnet):
        with pytest.raises(EmulationError):
            emnet.node("nope")


class TestStartupConfigSemantics:
    def test_reload_discards_unsaved_changes(self, emnet):
        console = emnet.console("r1")
        for cmd in ("configure terminal", "interface Gi0/2", "shutdown", "end"):
            console.execute(cmd)
        assert emnet.network.config("r1").interface("Gi0/2").shutdown
        assert emnet.node("r1").unsaved_changes()
        console.execute("reload")
        assert not emnet.network.config("r1").interface("Gi0/2").shutdown

    def test_write_memory_persists_across_reload(self, emnet):
        console = emnet.console("r1")
        for cmd in ("configure terminal", "interface Gi0/2", "shutdown", "end",
                    "write memory"):
            console.execute(cmd)
        assert not emnet.node("r1").unsaved_changes()
        console.execute("reload")
        assert emnet.network.config("r1").interface("Gi0/2").shutdown

    def test_show_startup_config_shows_saved_state(self, emnet):
        console = emnet.console("r1")
        for cmd in ("configure terminal", "hostname renamed", "end"):
            console.execute(cmd)
        startup = console.execute("show startup-config").output
        running = console.execute("show running-config").output
        assert "hostname r1" in startup
        assert "hostname renamed" in running

    def test_reload_invalidates_dataplane(self, emnet):
        console = emnet.console("r1")
        for cmd in ("configure terminal", "interface Gi0/2", "shutdown", "end"):
            console.execute(cmd)
        before = emnet.dataplane()
        console.execute("reload")
        assert emnet.dataplane() is not before

    def test_reload_rebinds_node_config(self, emnet):
        console = emnet.console("r1")
        console.execute("reload")
        assert emnet.node("r1").config is emnet.network.config("r1")

    def test_reload_bumps_boot_count(self, emnet):
        before = emnet.node("r1").boot_count
        emnet.console("r1").execute("reload")
        assert emnet.node("r1").boot_count == before + 1
