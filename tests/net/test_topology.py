import pytest

from repro.net.topology import DeviceKind, Interface, Link, Topology
from repro.util.errors import TopologyError


@pytest.fixture
def triangle():
    """r1 -- r2 -- r3 -- r1, with a host off r1."""
    topo = Topology("triangle")
    topo.add_device("r1", DeviceKind.ROUTER)
    topo.add_device("r2", DeviceKind.ROUTER)
    topo.add_device("r3", DeviceKind.ROUTER)
    topo.add_device("h1", DeviceKind.HOST)
    topo.add_link("r1", "Gi0/0", "r2", "Gi0/0")
    topo.add_link("r2", "Gi0/1", "r3", "Gi0/0")
    topo.add_link("r3", "Gi0/1", "r1", "Gi0/1")
    topo.add_link("r1", "Gi0/2", "h1", "eth0")
    return topo


class TestConstruction:
    def test_duplicate_device_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_device("r1", DeviceKind.ROUTER)

    def test_self_link_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link("r1", "Gi0/9", "r1", "Gi0/8")

    def test_double_cabling_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link("r1", "Gi0/0", "r3", "Gi0/9")

    def test_link_to_unknown_device_rejected(self, triangle):
        with pytest.raises(TopologyError):
            triangle.add_link("r1", "Gi0/9", "nope", "Gi0/0")

    def test_interfaces_created_implicitly(self, triangle):
        assert "Gi0/2" in triangle.device("r1").interfaces


class TestQueries:
    def test_neighbors_sorted(self, triangle):
        assert triangle.neighbors("r1") == ["h1", "r2", "r3"]

    def test_peer(self, triangle):
        assert triangle.peer("r1", "Gi0/0") == Interface("r2", "Gi0/0")

    def test_peer_of_uncabled_interface_is_none(self, triangle):
        triangle.device("r1").add_interface("Gi0/9")
        assert triangle.peer("r1", "Gi0/9") is None

    def test_unknown_device_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.device("nope")

    def test_unknown_interface_raises(self, triangle):
        with pytest.raises(TopologyError):
            triangle.device("r1").interface("nope")

    def test_links_of(self, triangle):
        assert len(triangle.links_of("r1")) == 3
        assert len(triangle.links_of("h1")) == 1

    def test_devices_filtered_by_kind(self, triangle):
        assert triangle.device_names(DeviceKind.HOST) == ["h1"]
        assert len(triangle.devices(DeviceKind.ROUTER)) == 3

    def test_summary_counts(self, triangle):
        assert triangle.summary() == {
            "routers": 3,
            "switches": 0,
            "hosts": 1,
            "links": 4,
        }

    def test_link_other_endpoint(self, triangle):
        link = triangle.link_at("r1", "Gi0/0")
        a, b = link.endpoints()
        assert link.other(a) == b
        assert link.other(b) == a

    def test_link_other_rejects_foreign_interface(self, triangle):
        link = triangle.link_at("r1", "Gi0/0")
        with pytest.raises(TopologyError):
            link.other(Interface("r3", "Gi0/0"))


class TestNetworkxExport:
    def test_graph_shape(self, triangle):
        graph = triangle.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph.nodes["h1"]["kind"] == DeviceKind.HOST

    def test_edge_carries_link(self, triangle):
        graph = triangle.to_networkx()
        link = graph.edges["r1", "r2"]["link"]
        assert isinstance(link, Link)
