import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import addressing
from repro.util.errors import ConfigError


class TestNetmask:
    def test_common_masks(self):
        assert addressing.netmask_to_prefixlen("255.255.255.0") == 24
        assert addressing.netmask_to_prefixlen("255.255.255.255") == 32
        assert addressing.netmask_to_prefixlen("0.0.0.0") == 0
        assert addressing.netmask_to_prefixlen("255.255.252.0") == 22

    def test_discontiguous_rejected(self):
        with pytest.raises(ConfigError):
            addressing.netmask_to_prefixlen("255.0.255.0")

    def test_bad_address_rejected(self):
        with pytest.raises(ConfigError):
            addressing.netmask_to_prefixlen("not-an-ip")

    @given(st.integers(min_value=0, max_value=32))
    def test_roundtrip_with_prefixlen_to_netmask(self, prefixlen):
        mask = addressing.prefixlen_to_netmask(prefixlen)
        assert addressing.netmask_to_prefixlen(mask) == prefixlen


class TestWildcard:
    def test_common_wildcards(self):
        assert addressing.wildcard_to_prefixlen("0.0.0.255") == 24
        assert addressing.wildcard_to_prefixlen("0.0.0.0") == 32
        assert addressing.wildcard_to_prefixlen("255.255.255.255") == 0

    def test_discontiguous_rejected(self):
        with pytest.raises(ConfigError):
            addressing.wildcard_to_prefixlen("0.255.0.255")

    @given(st.integers(min_value=0, max_value=32))
    def test_roundtrip_with_prefixlen_to_wildcard(self, prefixlen):
        wildcard = addressing.prefixlen_to_wildcard(prefixlen)
        assert addressing.wildcard_to_prefixlen(wildcard) == prefixlen


class TestNetworkBuilders:
    def test_network_from_netmask_normalises_host_bits(self):
        net = addressing.network_from_netmask("10.0.1.5", "255.255.255.0")
        assert net == ipaddress.IPv4Network("10.0.1.0/24")

    def test_network_from_wildcard(self):
        net = addressing.network_from_wildcard("10.1.0.0", "0.0.255.255")
        assert net == ipaddress.IPv4Network("10.1.0.0/16")

    def test_interface_address_keeps_host_part(self):
        addr = addressing.interface_address("10.0.1.5", "255.255.255.0")
        assert addr == ipaddress.IPv4Interface("10.0.1.5/24")
        assert addr.network == ipaddress.IPv4Network("10.0.1.0/24")
