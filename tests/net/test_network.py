import ipaddress

import pytest

from repro.net.network import Network
from repro.net.topology import DeviceKind, Topology
from repro.util.errors import TopologyError

from tests.fixtures import square_network


class TestConstruction:
    def test_missing_config_rejected(self):
        topo = Topology("t")
        topo.add_device("r1", DeviceKind.ROUTER)
        with pytest.raises(TopologyError, match="without configs"):
            Network(topo, {})

    def test_unknown_config_rejected(self):
        topo = Topology("t")
        topo.add_device("r1", DeviceKind.ROUTER)
        from repro.config.model import DeviceConfig

        with pytest.raises(TopologyError, match="unknown devices"):
            Network(topo, {
                "r1": DeviceConfig("r1"), "ghost": DeviceConfig("ghost"),
            })

    def test_name_comes_from_topology(self):
        assert square_network().name == "square"


class TestQueries:
    def test_kind(self):
        network = square_network()
        assert network.kind("r1") is DeviceKind.ROUTER
        assert network.kind("h1") is DeviceKind.HOST

    def test_role_lists(self):
        network = square_network()
        assert network.routers() == ["r1", "r2", "r3", "r4"]
        assert network.hosts() == ["h1", "h2", "h3", "h4"]
        assert network.switches() == []

    def test_device_owning_ip(self):
        network = square_network()
        assert network.device_owning_ip("10.1.1.100") == "h1"
        assert network.device_owning_ip("10.0.12.1") == "r1"
        assert network.device_owning_ip("203.0.113.99") is None

    def test_host_address(self):
        network = square_network()
        assert network.host_address("h2") == ipaddress.IPv4Address("10.2.2.100")

    def test_host_address_requires_address(self):
        network = square_network()
        network.config("h1").interfaces.clear()
        with pytest.raises(TopologyError):
            network.host_address("h1")

    def test_unknown_device_config(self):
        with pytest.raises(TopologyError):
            square_network().config("nope")


class TestSubset:
    def test_keeps_only_internal_links(self):
        network = square_network()
        sliced = network.subset({"r1", "r2", "h1"})
        assert set(sliced.topology.device_names()) == {"r1", "r2", "h1"}
        # r1-r2 and r1-h1 survive; links to r3/r4 are cut.
        assert len(sliced.topology.links()) == 2

    def test_configs_are_deep_copies(self):
        network = square_network()
        sliced = network.subset({"r1"})
        sliced.config("r1").interface("Gi0/0").shutdown = True
        assert not network.config("r1").interface("Gi0/0").shutdown

    def test_unknown_device_rejected(self):
        with pytest.raises(TopologyError):
            square_network().subset({"r1", "ghost"})

    def test_interfaces_preserved_even_if_uncabled(self):
        network = square_network()
        sliced = network.subset({"r1"})
        # All of r1's interfaces still exist (configs reference them).
        assert set(sliced.topology.device("r1").interfaces) == set(
            network.topology.device("r1").interfaces
        )


class TestCopy:
    def test_copy_isolates_configs(self):
        network = square_network()
        clone = network.copy()
        clone.config("r1").interface("Gi0/0").shutdown = True
        assert not network.config("r1").interface("Gi0/0").shutdown

    def test_copy_shares_topology(self):
        network = square_network()
        assert network.copy().topology is network.topology

    def test_summary_includes_config_lines(self):
        summary = square_network().summary()
        assert summary["config_lines"] > 0
        assert summary["links"] == 8
