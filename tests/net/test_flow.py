import ipaddress

import pytest

from repro.net.flow import Flow


class TestFlow:
    def test_make_from_strings(self):
        flow = Flow.make("10.0.0.1", "10.0.0.2", "tcp", dst_port=80)
        assert flow.src_ip == ipaddress.IPv4Address("10.0.0.1")
        assert flow.dst_port == 80

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            Flow.make("10.0.0.1", "10.0.0.2", "gre")

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            Flow.make("10.0.0.1", "10.0.0.2", "tcp", dst_port=70000)

    def test_reversed_swaps_endpoints_and_ports(self):
        flow = Flow.make("10.0.0.1", "10.0.0.2", "tcp", src_port=1234, dst_port=80)
        back = flow.reversed()
        assert back.src_ip == flow.dst_ip
        assert back.dst_ip == flow.src_ip
        assert back.src_port == 80
        assert back.dst_port == 1234

    def test_reversed_is_involution(self):
        flow = Flow.make("10.0.0.1", "10.0.0.2", "udp", dst_port=53)
        assert flow.reversed().reversed() == flow

    def test_flows_are_hashable(self):
        a = Flow.make("10.0.0.1", "10.0.0.2")
        b = Flow.make("10.0.0.1", "10.0.0.2")
        assert len({a, b}) == 1

    def test_str_includes_ports_when_present(self):
        flow = Flow.make("10.0.0.1", "10.0.0.2", "tcp", dst_port=80)
        assert "80" in str(flow)
