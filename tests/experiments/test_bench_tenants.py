"""The tenants benchmark (``bench --tenants``) and its regression gate."""

import pytest

from repro.experiments import bench_check
from repro.experiments.bench_check import compare, tenants_metrics
from repro.experiments.bench_tenants import (
    OVERHEAD_TARGET,
    run_tenants_bench,
    tenants_acceptance,
)
from repro.util import rand
from repro.util.errors import ReproError


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    rand.reset()


@pytest.fixture(scope="module")
def small_report():
    return run_tenants_bench(sessions=4, orgs=2, seed=7)


class TestBench:
    def test_small_run_holds_every_invariant(self, small_report):
        assert small_report["ok"], small_report["invariants"]
        assert small_report["sessions"] == 4
        assert small_report["orgs"] == 2
        assert small_report["frontdoor"]["imported"] == 4
        assert small_report["direct"]["imported"] == 4
        assert small_report["violations"] == 0
        assert small_report["overhead_ratio"] is not None

    def test_flood_phase_sheds_typed_with_finite_retry(self, small_report):
        flood = small_report["flood"]
        assert flood["shed"]
        assert flood["first_admission"] == "ran"
        assert flood["retry_after_s"] is not None
        assert flood["retry_after_s"] > 0

    def test_acceptance_carries_the_gated_target(self, small_report):
        acceptance = small_report["acceptance"]
        assert acceptance["target"] == OVERHEAD_TARGET == 1.3
        assert tenants_acceptance(small_report) == {
            "tenants.overhead_ratio": small_report["overhead_ratio"],
        }

    def test_bad_shapes_rejected(self):
        with pytest.raises(ReproError):
            run_tenants_bench(sessions=1, orgs=2)
        with pytest.raises(ReproError):
            run_tenants_bench(sessions=2, orgs=0)
        with pytest.raises(ReproError):
            run_tenants_bench(sessions=2, orgs=1, network="nope")


class TestGate:
    def test_metrics_extraction(self):
        report = {
            "overhead_ratio": 1.1,
            "acceptance": {"target": 1.3, "pass": True},
        }
        assert tenants_metrics(report) == {
            "tenants.overhead_ratio": (1.1, False, 1.3),
        }
        assert tenants_metrics({}) == {}

    def test_target_loosens_the_committed_bound(self):
        # Committed 1.0, fresh 1.5: over the committed-relative ceiling
        # (1.2) but under the target-relative one (1.3 * 1.2 = 1.56) —
        # drift inside the acceptance envelope never fails the build.
        committed = {"tenants.overhead_ratio": (1.0, False, 1.3)}
        assert compare(committed, {"tenants.overhead_ratio": (1.5, False, 1.3)}) == []
        assert compare(committed, {"tenants.overhead_ratio": (1.6, False, 1.3)})

    def test_check_never_reads_the_scale_smoke_report(self):
        # make bench-scale writes its throwaway smoke report to /tmp;
        # the gate must only ever read the committed BENCH_*.json set.
        reports = {
            bench_check.DATAPLANE_REPORT, bench_check.ROLLOUT_REPORT,
            bench_check.SCALE_REPORT, bench_check.TENANTS_REPORT,
        }
        assert reports == {
            "BENCH_dataplane.json", "BENCH_rollout.json",
            "BENCH_scale.json", "BENCH_tenants.json",
        }
        assert "smoke" not in " ".join(sorted(reports))
