"""The bench --check regression gate: metric extraction and comparison."""

from repro.experiments.bench_check import (
    compare,
    dataplane_metrics,
    rollout_metrics,
)

DATAPLANE_REPORT = {
    "networks": {
        "university": {
            "compile": {"cold_ms": 20.0, "incremental_ms": 8.0},
            "verify": {
                "ospf": {"speedup": 4.0},
                "vlan": {"speedup": 3.2},
            },
        },
    },
    "acceptance": {
        "university_single_device_verify_speedup": 3.2,
        "target": 3.0,
    },
}

ROLLOUT_REPORT = {
    "networks": {
        "enterprise": {
            "push": {"probe_overhead_x": 2.1, "probe_speedup": 4.5},
        },
    },
}


class TestMetricExtraction:
    def test_dataplane_metrics(self):
        metrics = dataplane_metrics(DATAPLANE_REPORT)
        assert metrics["university.compile.speedup"] == (2.5, True, 2.0)
        assert metrics["university.verify.min_speedup"] == (3.2, True, 3.0)

    def test_rollout_metrics(self):
        metrics = rollout_metrics(ROLLOUT_REPORT)
        assert metrics["enterprise.push.probe_overhead_x"] == (2.1, False, 3.0)
        assert metrics["enterprise.push.probe_speedup"] == (4.5, True, None)


class TestCompare:
    def test_within_tolerance_passes(self):
        committed = {"m": (4.0, True, None)}
        assert compare(committed, {"m": (3.3, True, None)}) == []

    def test_higher_better_regression_fails(self):
        committed = {"m": (4.0, True, None)}
        failures = compare(committed, {"m": (3.0, True, None)})
        assert len(failures) == 1 and "m:" in failures[0]

    def test_lower_better_regression_fails(self):
        committed = {"m": (2.0, False, None)}
        assert compare(committed, {"m": (2.6, False, None)})
        assert compare(committed, {"m": (2.3, False, None)}) == []

    def test_acceptance_target_loosens_the_bound(self):
        # Committed 2.1 with a 3.0 ceiling: the gate allows up to
        # 3.0 * 1.2, not 2.1 * 1.2 — drift inside the acceptance
        # envelope is not a regression.
        committed = {"m": (2.1, False, 3.0)}
        assert compare(committed, {"m": (2.9, False, 3.0)}) == []
        assert compare(committed, {"m": (3.7, False, 3.0)})
        # And symmetrically for floors: committed 4.0, target 3.0.
        committed = {"m": (4.0, True, 3.0)}
        assert compare(committed, {"m": (2.5, True, 3.0)}) == []
        assert compare(committed, {"m": (2.3, True, 3.0)})

    def test_only_shared_metrics_are_gated(self):
        committed = {"gone": (4.0, True, None)}
        assert compare(committed, {"new": (1.0, True, None)}) == []

    def test_improvements_pass(self):
        committed = {"m": (4.0, True, None), "n": (2.0, False, None)}
        fresh = {"m": (9.0, True, None), "n": (0.5, False, None)}
        assert compare(committed, fresh) == []
