"""Smoke + shape tests for the experiment drivers (repro.experiments)."""

import pytest

from repro.experiments import (
    continuous_vs_deferred,
    figure7,
    figure89,
    scheduler_ablation,
    scoping_ablation,
    table1,
    verification_latency_curve,
)
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import interface_down_issues


@pytest.fixture(scope="module")
def enterprise():
    return build_enterprise_network()


@pytest.fixture(scope="module")
def enterprise_policies(enterprise):
    return mine_policies(enterprise)


@pytest.fixture(scope="module")
def few_issues(enterprise):
    return interface_down_issues(enterprise, devices=["gw", "dist1"])


class TestTable1:
    def test_rows_match_topology(self, enterprise):
        (row,) = table1({"enterprise": enterprise})
        assert row.routers == 9
        assert row.links == 22
        assert row.paper["links"] == 22

    def test_cells_structure(self, enterprise):
        (row,) = table1({"enterprise": enterprise})
        labels = [label for label, _m, _p in row.cells()]
        assert labels == [
            "#routers", "#hosts", "#links", "#policies", "config lines"
        ]


class TestFigure7:
    def test_single_issue_run(self, enterprise_policies):
        result = figure7("enterprise", issue_ids=("isp",),
                         policies=enterprise_policies)
        (row,) = result.rows
        assert row.resolved
        assert row.overhead_s > 0
        assert result.average_overhead_s == row.overhead_s

    def test_breakdowns_sum_to_duration(self, enterprise_policies):
        result = figure7("enterprise", issue_ids=("ospf",),
                         policies=enterprise_policies)
        (row,) = result.rows
        assert sum(row.current_breakdown.values()) == pytest.approx(
            row.current_s
        )
        assert sum(row.heimdall_breakdown.values()) == pytest.approx(
            row.heimdall_s
        )


class TestFigure89:
    def test_approach_order_and_bounds(self, enterprise, enterprise_policies,
                                       few_issues):
        results = figure89("enterprise", network=enterprise,
                           policies=enterprise_policies, issues=few_issues)
        assert [r.approach for r in results] == ["All", "Neighbor", "Heimdall"]
        for result in results:
            assert 0 <= result.feasibility_pct <= 100
            assert 0 <= result.attack_surface_pct <= 100
            assert len(result.per_issue) == len(few_issues)


class TestLatency:
    def test_curve_hits_paper_point(self):
        curve = dict(verification_latency_curve())
        assert curve[175] == 25.0

    def test_continuous_vs_deferred_rows(self, enterprise_policies):
        rows = continuous_vs_deferred(policies=enterprise_policies)
        assert {row.issue_id for row in rows} == {"ospf", "isp", "vlan"}
        assert all(row.ratio >= 1 for row in rows)


class TestAblations:
    def test_scoping_rows(self, enterprise, enterprise_policies, few_issues):
        rows = scoping_ablation(network=enterprise,
                                policies=enterprise_policies,
                                issues=few_issues)
        names = {row.strategy for row in rows}
        assert names == {"all", "neighbor", "path", "heimdall"}
        by_name = {row.strategy: row for row in rows}
        assert by_name["all"].mean_exposed == len(
            enterprise.topology.devices()
        )

    def test_scheduler_rows(self, enterprise_policies):
        rows = scheduler_ablation(policies=enterprise_policies)
        by_name = {row.strategy: row for row in rows}
        assert by_name["ordered (Heimdall)"].transient_violations == 0
        assert by_name["naive per-device"].transient_violations > 0


class TestGuardAblation:
    def test_guards_reduce_surface_without_feasibility_cost(
        self, enterprise, enterprise_policies, few_issues
    ):
        from repro.experiments import guard_rules_ablation

        rows = guard_rules_ablation(
            network=enterprise, policies=enterprise_policies,
            issues=few_issues,
        )
        by_name = {row.variant: row for row in rows}
        assert by_name["profile + guards"].attack_surface_pct <= (
            by_name["profile only"].attack_surface_pct
        )
        assert by_name["profile + guards"].feasibility_pct == (
            by_name["profile only"].feasibility_pct
        )


class TestReportHelpers:
    def test_md_table_shapes_markdown(self):
        import io

        from repro.experiments.report import _md_table

        out = io.StringIO()
        _md_table(out, ("a", "b"), [(1, 2), (3, 4)])
        lines = out.getvalue().splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert lines[3] == "| 3 | 4 |"

    def test_university_figure7_also_resolves(self):
        # The paper omits the university plot "due to similarity"; verify
        # the similarity claim: all three issues resolve there too.
        from repro.experiments import figure7

        result = figure7("university", issue_ids=("isp",))
        assert all(row.resolved for row in result.rows)
        assert result.average_overhead_s > 0
