"""docs/SCALING.md must track the generator, shard, and benchmark code.

The handbook documents public constants, CLI flags, and every key of
``BENCH_scale.json``; this check (part of ``make docs-check``) fails when
code moves and the handbook doesn't.
"""

import json
import re
from pathlib import Path

import pytest

from repro.control.shard import DEFAULT_SHARD_SIZE
from repro.experiments.bench_scale import SPEEDUP_TARGET, run_scale_benchmark
from repro.scenarios.generate import SHAPES

ROOT = Path(__file__).resolve().parents[2]
DOCS = ROOT / "docs" / "SCALING.md"
REPORT = ROOT / "BENCH_scale.json"


def report_keys():
    """Every key path of the scale report, committed or freshly built."""
    if REPORT.exists():
        report = json.loads(REPORT.read_text())
    else:  # first run on a branch that never produced one
        report = run_scale_benchmark(size=60, shape="hub-spoke", repeats=1)
    keys = set()
    for section, value in report.items():
        keys.add(section)
        if isinstance(value, dict):
            keys.update(value)
    return keys


@pytest.mark.docs_check
class TestScalingHandbook:
    def test_exists(self):
        assert DOCS.exists(), "docs/SCALING.md missing"

    def test_every_shape_documented(self):
        text = DOCS.read_text()
        for shape in SHAPES:
            assert f"`{shape}`" in text, f"shape {shape} not documented"

    def test_constants_current(self):
        text = DOCS.read_text()
        assert f"default {DEFAULT_SHARD_SIZE}" in text, (
            "documented default shard size is stale"
        )
        assert f"{SPEEDUP_TARGET:.1f}x" in text, (
            "documented acceptance target is stale"
        )

    def test_every_report_key_documented(self):
        text = DOCS.read_text()
        documented = set(re.findall(r"`([a-z_.]+)`", text))
        missing = report_keys() - documented
        assert not missing, f"BENCH_scale.json keys not in handbook: {missing}"

    def test_instrumentation_cross_referenced(self):
        text = DOCS.read_text()
        assert "scale.shard.crash" in text
        assert "scale.shard.degraded" in text
