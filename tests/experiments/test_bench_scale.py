"""The scale benchmark: report structure, gate metrics, and serialization."""

import json

import pytest

from repro.experiments.bench_check import scale_metrics
from repro.experiments.bench_scale import (
    SPEEDUP_TARGET,
    run_scale_benchmark,
    write_report,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def report():
    # Small and single-repeat: structure is what's under test here; the
    # committed BENCH_scale.json carries the real 500-device numbers.
    return run_scale_benchmark(
        size=60, shape="hub-spoke", seed=3, repeats=1, shard_size=3,
    )


class TestRunScaleBenchmark:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            run_scale_benchmark(shape="torus")
        with pytest.raises(ReproError):
            run_scale_benchmark(repeats=0)

    def test_report_sections(self, report):
        assert set(report) >= {
            "generated", "sharding", "compile", "verify", "acceptance",
            "repeats",
        }
        generated = report["generated"]
        assert generated["shape"] == "hub-spoke"
        assert generated["requested_size"] == 60
        assert generated["devices"] > 0
        assert generated["policies"] > 0

    def test_sharding_reports_requested_and_effective_workers(self, report):
        sharding = report["sharding"]
        assert sharding["shards"] > 0
        # The knob as passed (None = auto) and what the pool actually
        # forked — effective is cpu-resolved, never more than shard count.
        assert sharding["workers_requested"] is None
        assert 1 <= sharding["workers_effective"] <= sharding["shards"]

    def test_explicit_worker_request_is_recorded(self):
        report = run_scale_benchmark(
            size=40, shape="hub-spoke", seed=3, repeats=1, shard_size=3,
            workers=2,
        )
        sharding = report["sharding"]
        assert sharding["workers_requested"] == 2
        assert sharding["workers_effective"] <= 2

    def test_ratios_positive(self, report):
        compile_ = report["compile"]
        assert compile_["single_ms"] > 0
        assert compile_["sharded_ms"] > 0
        assert compile_["sharded_speedup"] > 0
        assert compile_["incremental_speedup"] > 0
        assert report["verify"]["policies_per_s"] > 0

    def test_acceptance_gate_only_applies_at_scale(self, report):
        acceptance = report["acceptance"]
        assert acceptance["target"] == SPEEDUP_TARGET
        assert acceptance["applies"] is False  # 60 devices < 500
        assert acceptance["pass"] is True  # sub-scale runs never fail


class TestScaleMetrics:
    def test_extracts_gated_ratios(self):
        committed = {
            "compile": {"sharded_speedup": 2.4, "incremental_speedup": 1.9},
            "acceptance": {"applies": True},
        }
        metrics = scale_metrics(committed)
        assert metrics["scale.compile.sharded_speedup"] == (
            2.4, True, SPEEDUP_TARGET,
        )
        assert metrics["scale.compile.incremental_speedup"] == (
            1.9, True, None,
        )

    def test_no_target_below_scale(self):
        committed = {
            "compile": {"sharded_speedup": 1.5},
            "acceptance": {"applies": False},
        }
        metrics = scale_metrics(committed)
        assert metrics["scale.compile.sharded_speedup"] == (1.5, True, None)

    def test_empty_report_no_metrics(self):
        assert scale_metrics({}) == {}


class TestWriteReport:
    def test_round_trips_stable_json(self, report, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        write_report(report, str(path))
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == report
