"""Observability across the full pipeline: one traced ticket, correlated.

The acceptance contract from the observability PR: resolving a standard
scenario issue with `repro.obs` enabled produces (a) a span tree covering
both the twin-monitor phase and the enforcer phase, (b) audit-trail entries
stamped with trace/span ids that resolve back into that tree, and (c)
populated pipeline metrics — while with observability disabled nothing is
recorded at all.
"""

import pytest

from repro import obs
from repro.control.cache import clear_dataplane_cache
from repro.core.enforcer.rollout import RolloutConfig
from repro.core.heimdall import Heimdall
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import FixStep, standard_issues
from repro.scenarios.university import build_university_network


@pytest.fixture(scope="module")
def traced_run():
    """One university ticket resolved end-to-end with observability on."""
    obs.reset()
    clear_dataplane_cache()  # other tests warm the process-global cache
    obs.enable()
    try:
        production = build_university_network()
        policies = mine_policies(production)
        issue = standard_issues("university")["ospf"]
        issue.inject(production)

        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
    finally:
        obs.disable()
    yield heimdall, outcome
    obs.reset()


class TestSpanTree:
    def test_one_session_trace_covering_both_phases(self, traced_run):
        heimdall, outcome = traced_run
        assert outcome.resolved and outcome.approved

        roots = obs.tracer().traces()
        sessions = [r for r in roots if r.name == "heimdall.session"]
        assert len(sessions) == 1
        (root,) = sessions

        # Twin-monitor phase and enforcer phase live in the same tree.
        for name in ("ticket.open", "twin.scope", "privilege.generate",
                     "twin.boot", "monitor.execute", "enforcer.enforce",
                     "enforcer.verify", "verify.policies",
                     "production.import"):
            assert root.find(name) is not None, f"missing span {name}"

    def test_session_root_is_finished_with_attrs(self, traced_run):
        heimdall, _ = traced_run
        (root,) = [
            r for r in obs.tracer().traces() if r.name == "heimdall.session"
        ]
        assert root.duration_s is not None
        assert root.attrs["approved"] is True
        assert root.attrs["resolved"] is True

    def test_monitor_spans_nest_under_commands(self, traced_run):
        (root,) = [
            r for r in obs.tracer().traces() if r.name == "heimdall.session"
        ]
        executes = [s for s in root.walk() if s.name == "monitor.execute"]
        assert executes
        by_id = {s.span_id: s for s in root.walk()}
        for span in executes:
            assert by_id[span.parent_id].name == "twin.command"
            assert span.attrs["allowed"] in (True, False)
            assert span.attrs["action"]  # the classified action name


class TestAuditCorrelation:
    def test_records_resolve_to_the_session_trace(self, traced_run):
        heimdall, _ = traced_run
        records = heimdall.audit.records
        assert records
        stamped = [r for r in records if r.trace_id]
        assert stamped, "no audit record captured a trace id"

        for record in stamped:
            trace = obs.tracer().find_trace(record.trace_id)
            assert trace is not None, record.trace_id
            assert record.span_id in trace.span_ids()

    def test_correlation_spans_monitor_and_enforcer(self, traced_run):
        heimdall, _ = traced_run
        (root,) = [
            r for r in obs.tracer().traces() if r.name == "heimdall.session"
        ]
        by_id = {s.span_id: s.name for s in root.walk()}
        correlated = {
            by_id[r.span_id]
            for r in heimdall.audit.records
            if r.span_id in by_id
        }
        assert "monitor.execute" in correlated
        assert correlated & {"enforcer.enforce", "production.import"}

    def test_chain_still_tamper_evident(self, traced_run):
        heimdall, _ = traced_run
        assert heimdall.audit.verify()

    def test_trace_fields_covered_by_mac(self, traced_run):
        import dataclasses

        heimdall, _ = traced_run
        index = next(
            i for i, r in enumerate(heimdall.audit.records) if r.trace_id
        )
        original = heimdall.audit.records[index]
        heimdall.audit.records[index] = dataclasses.replace(
            original, trace_id="T-9999"
        )
        try:
            assert not heimdall.audit.verify()
        finally:
            heimdall.audit.records[index] = original
        assert heimdall.audit.verify()


class TestMetrics:
    def test_pipeline_metrics_populated(self, traced_run):
        snap = obs.registry().snapshot()
        assert snap["monitor.commands"]["value"] > 0
        assert snap["monitor.allowed"]["value"] > 0
        assert snap["policy.checks"]["value"] > 0
        assert snap["enforcer.verifications"]["value"] >= 1
        assert snap["enforcer.approved"]["value"] >= 1
        assert snap["enforcer.changes.committed"]["value"] >= 1
        assert snap["fib.lookups"]["value"] > 0
        assert snap["dataplane.cache.misses"]["value"] > 0
        assert snap["policy.verify.ms"]["count"] >= 1
        assert snap["dataplane.build.ms"]["count"] >= 1

    def test_monitor_accounting_adds_up(self, traced_run):
        snap = obs.registry().snapshot()
        assert (
            snap["monitor.commands"]["value"]
            == snap["monitor.allowed"]["value"]
            + snap["monitor.denied"]["value"]
        )


@pytest.fixture(scope="module")
def staged_run():
    """One enterprise ticket imported as a two-wave staged rollout, traced.

    The fix script plus a benign static-route rider on a second device
    yields two per-device waves, so the trail carries one wave record per
    wave alongside the usual session records.
    """
    obs.reset()
    clear_dataplane_cache()
    obs.enable()
    try:
        production = build_enterprise_network()
        policies = mine_policies(production)
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)

        heimdall = Heimdall(
            production, policies=policies, rollout=RolloutConfig()
        )
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        session.run_fix_script((FixStep("dist2", (
            "configure terminal",
            "ip route 10.99.0.0 255.255.0.0 10.0.7.1",
            "end",
            "write memory",
        )),))
        outcome = session.submit()
    finally:
        obs.disable()
    yield heimdall, outcome
    obs.reset()


class TestStagedRolloutCorrelation:
    def test_staged_push_resolves_over_two_waves(self, staged_run):
        heimdall, outcome = staged_run
        assert outcome.resolved and outcome.approved
        push_report = outcome.decision.push_report
        assert push_report.committed
        assert push_report.waves == 2
        assert all(probe.healthy for probe in push_report.probes)

    def test_wave_records_carry_wave_index_and_correlate(self, staged_run):
        heimdall, _ = staged_run
        waves = [
            r for r in heimdall.audit.records if r.action == "enforcer.wave"
        ]
        assert [r.resource for r in waves] == [
            "production:wave:0", "production:wave:1",
        ]
        assert all(r.allowed for r in waves)
        # The command string states the wave's position in the rollout.
        assert "wave 1/2" in waves[0].command
        assert "wave 2/2" in waves[1].command

        (root,) = [
            r for r in obs.tracer().traces() if r.name == "heimdall.session"
        ]
        by_id = {s.span_id: s.name for s in root.walk()}
        for record in waves:
            assert record.trace_id == root.trace_id
            assert by_id[record.span_id] == "rollout.wave"

    def test_rollout_spans_nest_in_the_session_tree(self, staged_run):
        (root,) = [
            r for r in obs.tracer().traces() if r.name == "heimdall.session"
        ]
        wave_spans = [s for s in root.walk() if s.name == "rollout.wave"]
        probe_spans = [s for s in root.walk() if s.name == "rollout.probe"]
        assert len(wave_spans) == 2
        assert len(probe_spans) == 2
        assert all(s.attrs["status"] == "committed" for s in wave_spans)
        assert all(s.attrs["healthy"] is True for s in probe_spans)

    def test_commit_record_reports_the_wave_count(self, staged_run):
        heimdall, _ = staged_run
        commit = next(
            r for r in heimdall.audit.records
            if r.action == "enforcer.commit"
        )
        assert "over 2 waves" in commit.command
        assert "2 probed healthy" in commit.command
        assert heimdall.audit.verify()

    def test_rollout_metrics_populated(self, staged_run):
        snap = obs.registry().snapshot()
        assert snap["rollout.waves"]["value"] == 2
        assert snap["rollout.probes"]["value"] == 2
        assert snap["rollout.probe.violations"]["value"] == 0
        assert snap["rollout.quarantined"]["value"] == 0


class TestDisabledIsSilent:
    def test_disabled_run_records_nothing(self):
        obs.disable()
        obs.reset()
        production = build_university_network()
        policies = mine_policies(production)
        issue = standard_issues("university")["ospf"]
        issue.inject(production)

        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        assert outcome.resolved

        assert obs.tracer().traces() == []
        snap = obs.registry().snapshot()
        assert all(
            inst.get("value", inst.get("count", 0)) == 0
            for inst in snap.values()
        )
        assert all(not r.trace_id and not r.span_id
                   for r in heimdall.audit.records)
        obs.reset()
