"""A BGP border incident through the full Heimdall pipeline.

Exercises the newest substrate (eBGP) end to end: mine policies on a
multi-AS chain, break the peering, open a ticket, fix it inside a twin with
BGP console commands, and import through the enforcer.
"""

import pytest

from repro.core.heimdall import Heimdall
from repro.policy.mining import mine_policies
from repro.scenarios.issues import FixStep, Issue

from tests.control.test_bgp import bgp_chain


def bgp_issue():
    """The provider's neighbor statement for the customer went missing."""

    def inject(network):
        bgp = network.config("pe").bgp
        bgp.neighbors = [
            n for n in bgp.neighbors if str(n.address) != "192.0.2.1"
        ]

    return Issue(
        issue_id="bgp-peering",
        title="eBGP session to the customer edge is down",
        description=(
            "h-cust (10.10.0.100) lost connectivity beyond its LAN; "
            "pe shows the 192.0.2.1 session in Active."
        ),
        src_host="h-cust",
        dst_host="h-far",
        root_cause_device="pe",
        complexity="moderate",
        fix_script=[
            FixStep("pe", (
                "show ip bgp summary",
                "configure terminal",
                "router bgp 65010",
                "neighbor 192.0.2.1 remote-as 65001",
                "end",
                "ping 10.10.0.100",
                "write memory",
            )),
        ],
        _inject=inject,
    )


@pytest.fixture
def setting():
    healthy = bgp_chain()
    policies = mine_policies(healthy)
    production = bgp_chain()
    issue = bgp_issue()
    issue.inject(production)
    return production, issue, policies


class TestBgpTicket:
    def test_issue_manifests(self, setting):
        production, issue, _ = setting
        assert issue.is_broken(production)

    def test_heimdall_resolves_it(self, setting):
        production, issue, policies = setting
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue, profile="routing")
        assert issue.root_cause_device in session.twin.scope

        results = session.run_fix_script(issue.fix_script)
        assert all(r.ok for r in results), [
            (r.command, r.error) for r in results if not r.ok
        ]
        assert session.twin.issue_resolved()

        outcome = session.submit()
        assert outcome.approved
        assert outcome.resolved
        # The imported change is exactly the neighbor statement.
        kinds = {change.kind for change in outcome.changes}
        assert kinds == {"bgp.neighbor"}

    def test_routing_profile_covers_bgp_but_not_acl(self, setting):
        production, issue, policies = setting
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue, profile="routing")
        console = session.console("pe")
        console.execute("configure terminal")
        result = console.execute("ip access-list extended EVIL")
        result = console.execute("permit ip any any")
        assert not result.ok  # acl edits are outside the routing profile

    def test_policies_hold_after_import(self, setting):
        from repro.policy.verification import PolicyVerifier

        production, issue, policies = setting
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue, profile="routing")
        session.run_fix_script(issue.fix_script)
        session.submit()
        assert PolicyVerifier(policies).verify_network(production).holds
