"""Two technicians, two twins, one production network.

The enforcer verifies every change set against the production state *at
submit time*, so concurrent sessions are safe by construction: a change set
that conflicts with an earlier import is re-judged against the
already-updated network.
"""

import pytest

from repro.core.heimdall import Heimdall
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues


@pytest.fixture
def deployment():
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    return production, Heimdall(production, policies=policies)


class TestConcurrentSessions:
    def test_disjoint_tickets_both_land(self, deployment):
        production, heimdall = deployment
        issues = standard_issues("enterprise")
        issues["isp"].inject(production)
        issues["vlan"].inject(production)

        # Both sessions open against the same (doubly broken) production.
        session_a = heimdall.open_ticket(issues["isp"])
        session_b = heimdall.open_ticket(issues["vlan"])

        session_a.run_fix_script(issues["isp"].fix_script)
        session_b.run_fix_script(issues["vlan"].fix_script)

        outcome_a = session_a.submit()
        outcome_b = session_b.submit()
        assert outcome_a.approved and outcome_a.resolved
        assert outcome_b.approved and outcome_b.resolved
        assert heimdall.audit.verify()

    def test_stale_duplicate_fix_is_a_no_op(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)

        session_a = heimdall.open_ticket(issue)
        session_b = heimdall.open_ticket(issue)
        session_a.run_fix_script(issue.fix_script)
        session_b.run_fix_script(issue.fix_script)

        outcome_a = session_a.submit()
        assert outcome_a.resolved
        # The second submit proposes the change production already has: the
        # diff against its own baseline is identical, applying it is
        # idempotent, and no policy breaks.
        outcome_b = session_b.submit()
        assert outcome_b.approved
        assert issue.is_resolved(production)

    def test_conflicting_stale_change_rejected(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)

        # Session A fixes the issue properly.
        session_a = heimdall.open_ticket(issue)
        session_a.run_fix_script(issue.fix_script)
        assert session_a.submit().resolved

        # Session B was opened against the broken state and proposes a
        # harmful "fix": bouncing the database LAN port (Gi0/3, which has no
        # redundancy). By the time it submits, production is healthy — the
        # verifier judges the change against reality and rejects the
        # regression. (The admin exemption is what lets the command reach
        # the twin at all; the enforcer is the final line.)
        session_b = heimdall.open_ticket(issue, profile="interface",
                                         exempt_devices=("dist1",))
        console = session_b.console("dist1")
        for command in ("configure terminal", "interface Gi0/3",
                        "shutdown", "end"):
            console.execute(command)
        outcome_b = session_b.submit()
        assert not outcome_b.approved
        assert not production.config("dist1").interface("Gi0/3").shutdown
