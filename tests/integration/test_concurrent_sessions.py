"""Two technicians, two twins, one production network.

The enforcer verifies every change set against the production state *at
submit time*, so concurrent sessions are safe by construction: a change set
that conflicts with an earlier import is re-judged against the
already-updated network.
"""

import threading

import pytest

from repro.core.heimdall import Heimdall
from repro.core.sessions import SessionManager
from repro.experiments.bench_concurrent import run_concurrent_bench
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.util import rand


@pytest.fixture
def deployment():
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    return production, Heimdall(production, policies=policies)


class TestConcurrentSessions:
    def test_disjoint_tickets_both_land(self, deployment):
        production, heimdall = deployment
        issues = standard_issues("enterprise")
        issues["isp"].inject(production)
        issues["vlan"].inject(production)

        # Both sessions open against the same (doubly broken) production.
        session_a = heimdall.open_ticket(issues["isp"])
        session_b = heimdall.open_ticket(issues["vlan"])

        session_a.run_fix_script(issues["isp"].fix_script)
        session_b.run_fix_script(issues["vlan"].fix_script)

        outcome_a = session_a.submit()
        outcome_b = session_b.submit()
        assert outcome_a.approved and outcome_a.resolved
        assert outcome_b.approved and outcome_b.resolved
        assert heimdall.audit.verify()

    def test_stale_duplicate_fix_is_a_no_op(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)

        session_a = heimdall.open_ticket(issue)
        session_b = heimdall.open_ticket(issue)
        session_a.run_fix_script(issue.fix_script)
        session_b.run_fix_script(issue.fix_script)

        outcome_a = session_a.submit()
        assert outcome_a.resolved
        # The second submit proposes the change production already has: the
        # diff against its own baseline is identical, applying it is
        # idempotent, and no policy breaks.
        outcome_b = session_b.submit()
        assert outcome_b.approved
        assert issue.is_resolved(production)

    def test_conflicting_stale_change_rejected(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)

        # Session A fixes the issue properly.
        session_a = heimdall.open_ticket(issue)
        session_a.run_fix_script(issue.fix_script)
        assert session_a.submit().resolved

        # Session B was opened against the broken state and proposes a
        # harmful "fix": bouncing the database LAN port (Gi0/3, which has no
        # redundancy). By the time it submits, production is healthy — the
        # verifier judges the change against reality and rejects the
        # regression. (The admin exemption is what lets the command reach
        # the twin at all; the enforcer is the final line.)
        session_b = heimdall.open_ticket(issue, profile="interface",
                                         exempt_devices=("dist1",))
        console = session_b.console("dist1")
        for command in ("configure terminal", "interface Gi0/3",
                        "shutdown", "end"):
            console.execute(command)
        outcome_b = session_b.submit()
        assert not outcome_b.approved
        assert not production.config("dist1").interface("Gi0/3").shutdown


class TestManagedSessions:
    """The same deployment driven through repro.core.sessions, threaded.

    The sequential drift-classification matrix lives in
    tests/core/test_sessions.py; these tests exercise the real thing —
    multiple technician threads racing open/submit — and pin the
    acceptance property: two sessions editing the same element never both
    import their original candidates.
    """

    def test_same_issue_race_has_exactly_one_importer(self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)
        manager = SessionManager(heimdall)
        outcomes = [None, None]
        errors = []
        opened = threading.Barrier(2)

        def technician(slot):
            try:
                session = manager.open_ticket(issue, mode="optimistic")
                session.run_fix_script(issue.fix_script)
                opened.wait(timeout=60)  # both branch from the broken base
                outcomes[slot] = session.submit()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
                opened.abort()

        threads = [
            threading.Thread(target=technician, args=(slot,))
            for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        statuses = sorted(outcome.status for outcome in outcomes)
        assert statuses == ["clean", "conflict"]
        assert sum(1 for outcome in outcomes if outcome.imported) == 1
        assert issue.is_resolved(production)
        assert heimdall.audit.verify()
        assert manager.live_sessions() == []

    def test_write_lease_blocks_second_session_until_release(
            self, deployment):
        production, heimdall = deployment
        issue = standard_issues("enterprise")["ospf"]
        issue.inject(production)
        manager = SessionManager(heimdall)

        first = manager.open_ticket(issue, mode="lease")
        first.run_fix_script(issue.fix_script)
        second_opened = threading.Event()
        second_outcome = []

        def technician():
            session = manager.open_ticket(
                issue, mode="lease", lease_timeout_s=60
            )
            second_opened.set()
            session.run_fix_script(issue.fix_script)
            second_outcome.append(session.submit())

        blocked = threading.Thread(target=technician)
        blocked.start()
        # The write lease on dist1 is held: the second open must not
        # complete while the first session is live.
        assert not second_opened.wait(timeout=0.3)
        outcome_first = first.submit()
        blocked.join(timeout=120)
        assert second_opened.is_set()
        assert outcome_first.imported
        # The second session branched from the already-fixed production:
        # clean base, empty (or idempotent) change set, nothing torn.
        assert second_outcome and second_outcome[0].status == "clean"
        assert issue.is_resolved(production)
        assert heimdall.audit.verify()

    def test_bounded_stress_bench_holds_all_invariants(self):
        rand.reset()
        report = run_concurrent_bench(sessions=4, network="enterprise",
                                      seed=7)
        assert report["ok"], report["invariants"]
        assert not report["errors"]
        assert sum(report["outcomes"].values()) == 4
        for row in report["per_issue"].values():
            assert row["imported"] == 1
        rand.reset()
