"""The paper's running example (Figures 5 and 6), reproduced literally.

The square fixture is the paper's Figure 5 network: host2 cannot
communicate with host4, router3 is misconfigured, host3 is sensitive. These
tests walk the exact arguments the figures make:

* Figure 5b — cloning everything is feasible but exposes every node;
* Figure 5c — cloning only the endpoints' neighbourhood hides the
  misconfigured router3, making the ticket unsolvable;
* Figure 5d — the decoupled twin (Heimdall scoping + reference monitor)
  is feasible with a partial view;
* Figure 6  — the benign fix (remove the bad Deny for host4) and the
  malicious twin of it (also removing host3's protection) look alike at
  the command level; the policy enforcer tells them apart.
"""

import pytest

from repro.config.acl import Acl, AclEntry
from repro.core.heimdall import Heimdall
from repro.core.twin.scoping import scope_all, scope_heimdall, scope_neighbor
from repro.policy.mining import mine_policies
from repro.scenarios.issues import FixStep, Issue

from tests.fixtures import square_network

# The misconfiguration: an over-broad deny on router3's transit ACL.
BAD_ENTRY = "deny ip 10.2.2.0 0.0.0.255 10.4.4.0 0.0.0.255"


def figure5_network():
    """The square network with host2->host4 traffic steered through router3.

    router3 carries a (initially permissive) transit ACL toward router4 —
    the object the figure's misconfiguration lands in — and keeps host3's
    protection ACL exactly as in the fixture.
    """
    network = square_network()
    # Steer h2 -> h4 over r3 (costs make r2-r3-r4 the best path).
    network.config("r2").interface("Gi0/0").ospf_cost = 10
    network.config("r3").add_acl(
        Acl(name="TRANSIT", entries=[AclEntry.parse("permit ip any any")])
    )
    network.config("r3").interface("Gi0/1").access_group_out = "TRANSIT"
    return network


def figure5_issue():
    """host2 cannot communicate with host4; root cause is router3."""

    def inject(network):
        acl = network.config("r3").acl("TRANSIT")
        acl.entries.insert(0, AclEntry.parse(BAD_ENTRY))

    return Issue(
        issue_id="fig5",
        title="host2 cannot communicate with host4",
        description="host2 (10.2.2.100) cannot reach host4 (10.4.4.100).",
        src_host="h2",
        dst_host="h4",
        root_cause_device="r3",
        complexity="moderate",
        fix_script=[
            FixStep("r3", (
                "show access-lists",
                "configure terminal",
                "ip access-list extended TRANSIT",
                f"no {BAD_ENTRY}",
                "end",
                "write memory",
            )),
        ],
        _inject=inject,
    )


@pytest.fixture
def setting():
    healthy = figure5_network()
    policies = mine_policies(healthy)
    production = figure5_network()
    issue = figure5_issue()
    issue.inject(production)
    assert issue.is_broken(production)
    return production, issue, policies


class TestFigure5:
    def test_fault_manifests_at_router3(self, setting):
        production, issue, _ = setting
        from repro.control.builder import build_dataplane
        from repro.dataplane.forwarding import trace_flow

        trace = trace_flow(
            build_dataplane(production), issue.ticket_flow(production),
            start_device="h2",
        )
        assert trace.last_device == "r3"
        assert "TRANSIT" in trace.hops[-1].note

    def test_5b_all_feasible_but_total_exposure(self, setting):
        production, issue, _ = setting
        scope = scope_all(production, issue)
        assert issue.root_cause_device in scope  # feasible ...
        assert scope == set(production.topology.device_names())  # full cost

    def test_5c_neighbor_hides_the_root_cause(self, setting):
        production, issue, _ = setting
        scope = scope_neighbor(production, issue)
        # host2's neighbour is r2; host4's is r4 — router3 is invisible,
        # so the ticket cannot be solved (the figure's point).
        assert issue.root_cause_device not in scope

    def test_5d_heimdall_feasible_with_partial_view(self, setting):
        production, issue, _ = setting
        # On this 8-node example the tight ellipse (slack=1) shows the
        # partial-view property; the root cause stays in scope.
        scope = scope_heimdall(production, issue, slack=1)
        assert issue.root_cause_device in scope
        assert scope < set(production.topology.device_names())
        # The uninvolved stub hosts are exactly what gets hidden.
        assert "h1" not in scope and "h3" not in scope

    def test_5d_fix_works_through_the_twin(self, setting):
        production, issue, policies = setting
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(
            issue, profile="acl", exempt_devices=("r3",)
        )
        session.run_fix_script(issue.fix_script)
        assert session.twin.issue_resolved()
        outcome = session.submit()
        assert outcome.approved and outcome.resolved


class TestFigure6:
    """Benign and malicious actions appear similar — the verifier decides."""

    MALICIOUS = (
        "configure terminal",
        "ip access-list extended PROTECT_H3",
        # ... the technician ALSO opens host2 -> sensitive host3:
        "no deny ip 10.2.2.0 0.0.0.255 10.3.3.0 0.0.0.255",
        "end",
    )

    def _session(self, production, issue, policies):
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(
            issue, profile="acl", exempt_devices=("r3",)
        )
        return session, heimdall

    def test_benign_fix_approved(self, setting):
        production, issue, policies = setting
        session, _ = self._session(production, issue, policies)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        assert outcome.approved
        assert outcome.resolved

    def test_malicious_variant_rejected(self, setting):
        production, issue, policies = setting
        session, heimdall = self._session(production, issue, policies)
        session.run_fix_script(issue.fix_script)  # the cover story
        console = session.console("r3")
        for command in self.MALICIOUS:
            result = console.execute(command)
            assert result.ok  # same command class as the fix: monitor allows
        outcome = session.submit()
        # The commands looked legitimate; the enforcer caught the effect.
        assert not outcome.approved
        violated = {
            r.policy.policy_id
            for r in outcome.decision.new_policy_violations
        }
        assert any("10.3.3" in policy_id for policy_id in violated)
        # Production still isolates the sensitive host.
        acl = heimdall.production.config("r3").acl("PROTECT_H3")
        assert any(entry.action == "deny" for entry in acl.entries)

    def test_malicious_variant_visible_in_impact_analysis(self, setting):
        production, issue, policies = setting
        session, _ = self._session(production, issue, policies)
        session.run_fix_script(issue.fix_script)
        console = session.console("r3")
        for command in self.MALICIOUS:
            console.execute(command)
        outcome = session.submit()
        newly = {
            (str(d.flow.src_ip), str(d.flow.dst_ip))
            for d in outcome.decision.impact.newly_delivered
        }
        assert ("10.2.2.100", "10.3.3.100") in newly
