"""Full-stack integration: ticket in, verified fix out, on both networks."""

import pytest

from repro.core.heimdall import Heimdall
from repro.msp.ticketing import TicketState, TicketSystem
from repro.msp.workflows import CurrentWorkflow, HeimdallWorkflow
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network

BUILDERS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}


@pytest.mark.parametrize("network_name", ["enterprise", "university"])
@pytest.mark.parametrize("issue_id", ["ospf", "isp", "vlan"])
class TestBothWorkflowsBothNetworks:
    def test_heimdall_resolves_and_preserves_policies(
        self, network_name, issue_id
    ):
        builder = BUILDERS[network_name]
        policies = mine_policies(builder())
        production = builder()
        issue = standard_issues(network_name)[issue_id]
        issue.inject(production)

        result = HeimdallWorkflow(policies=policies).resolve(production, issue)
        assert result.resolved
        assert result.detail.approved
        # After the import, every mined policy holds again.
        report = PolicyVerifier(policies).verify_network(production)
        assert report.holds, [str(v) for v in report.violations]

    def test_current_workflow_resolves(self, network_name, issue_id):
        builder = BUILDERS[network_name]
        production = builder()
        issue = standard_issues(network_name)[issue_id]
        issue.inject(production)
        result = CurrentWorkflow().resolve(production, issue)
        assert result.resolved


class TestTicketLifecycleIntegration:
    def test_full_ticket_path(self):
        """Admin opens a ticket, technician fixes it on a twin, ticket closes."""
        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        issue = standard_issues("enterprise")["vlan"]
        issue.inject(production)

        tickets = TicketSystem()
        ticket = tickets.open(issue)
        tickets.assign(ticket.ticket_id, "tech-1")

        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        outcome = session.submit()
        assert outcome.resolved

        tickets.resolve(ticket.ticket_id, note="moved Fa0/2 back to VLAN 10")
        tickets.close(ticket.ticket_id)
        assert ticket.state is TicketState.CLOSED

        # The customer can audit everything that happened.
        assert heimdall.audit.verify()
        allowed = heimdall.audit.query(allowed=True)
        assert any("switchport" in r.command for r in allowed)


class TestSequentialTickets:
    def test_two_tickets_one_deployment(self):
        """The same Heimdall instance handles consecutive tickets."""
        healthy = build_enterprise_network()
        policies = mine_policies(healthy)
        production = build_enterprise_network()
        issues = standard_issues("enterprise")
        heimdall = Heimdall(production, policies=policies)

        issues["isp"].inject(production)
        session1 = heimdall.open_ticket(issues["isp"])
        session1.run_fix_script(issues["isp"].fix_script)
        assert session1.submit().resolved

        issues["vlan"].inject(production)
        session2 = heimdall.open_ticket(issues["vlan"])
        session2.run_fix_script(issues["vlan"].fix_script)
        assert session2.submit().resolved

        # One continuous, verifiable audit history across sessions.
        assert heimdall.audit.verify()
        assert session1.session_id != session2.session_id
        actors = {record.actor for record in heimdall.audit.records}
        assert {session1.session_id, session2.session_id} <= actors
