"""A ticket that needs mid-flight privilege escalation (paper §7).

Scenario: a connectivity ticket is filed as a routing problem, but the root
cause turns out to be a broken ACL entry. The technician's initial
``routing`` profile cannot touch ACLs; they escalate (routing -> acl is a
valid ladder step), and — because the broken ACL lives on a guarded
enforcement point — the fix additionally requires the admin to exempt that
device when (re)opening the ticket. Every stage is audited.
"""

import ipaddress

import pytest

from repro.config.acl import AclEntry
from repro.core.heimdall import Heimdall
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import FixStep, Issue
from repro.util.errors import PrivilegeError


def make_acl_issue():
    """Someone inserted a deny above the app-VLAN permits in DB_PROTECT."""
    bad_entry = "deny ip 10.5.20.0 0.0.0.255 10.7.1.0 0.0.0.255"

    def inject(network):
        acl = network.config("dist1").acl("DB_PROTECT")
        acl.entries.insert(0, AclEntry.parse(bad_entry))

    return Issue(
        issue_id="acl-regression",
        title="App VLAN lost access to the database",
        description=(
            "app1 (10.5.20.100) can no longer reach db1 (10.7.1.100); "
            "started after last night's change window."
        ),
        src_host="app1",
        dst_host="db1",
        root_cause_device="dist1",
        complexity="moderate",
        fix_script=[
            FixStep("dist1", (
                "show access-lists",
                "configure terminal",
                "ip access-list extended DB_PROTECT",
                f"no {bad_entry}",
                "end",
                "write memory",
            )),
        ],
        _inject=inject,
    )


@pytest.fixture
def setup():
    healthy = build_enterprise_network()
    policies = mine_policies(healthy)
    production = build_enterprise_network()
    issue = make_acl_issue()
    issue.inject(production)
    return production, policies, issue


class TestEscalationScenario:
    def test_routing_profile_cannot_fix_acl_issue(self, setup):
        production, policies, issue = setup
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue, profile="routing")
        results = session.run_fix_script(issue.fix_script)
        denied = [r for r in results if not r.ok]
        assert denied, "ACL edits must be refused under the routing profile"
        assert not session.twin.issue_resolved()
        session.abandon("wrong profile")

    def test_escalation_alone_blocked_by_policy_guards(self, setup):
        # dist1 enforces live isolation policies, so guard rules outrank
        # even a validly escalated acl profile.
        production, policies, issue = setup
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(issue, profile="routing")
        session.request_escalation("acl", "routing is clean; suspect the ACL")
        results = session.run_fix_script(issue.fix_script)
        assert any(not r.ok for r in results)
        assert not session.twin.issue_resolved()
        session.abandon("guarded device")

    def test_escalation_plus_admin_exemption_fixes_it(self, setup):
        production, policies, issue = setup
        heimdall = Heimdall(production, policies=policies)
        # The admin re-opens the ticket releasing dist1 from the guards —
        # the conscious decision the paper's §7 discussion calls for.
        session = heimdall.open_ticket(
            issue, profile="routing", exempt_devices=("dist1",)
        )
        session.request_escalation("acl", "confirmed ACL regression")
        results = session.run_fix_script(issue.fix_script)
        assert all(r.ok for r in results), [r.error for r in results if not r.ok]
        assert session.twin.issue_resolved()

        outcome = session.submit()
        assert outcome.approved
        assert outcome.resolved

        # Production ACL restored: the bad deny is gone, protections intact.
        acl = production.config("dist1").acl("DB_PROTECT")
        assert all(
            "10.5.20.0" not in entry.to_text() or entry.action == "permit"
            for entry in acl.entries
        )

    def test_every_stage_audited(self, setup):
        production, policies, issue = setup
        heimdall = Heimdall(production, policies=policies)
        session = heimdall.open_ticket(
            issue, profile="routing", exempt_devices=("dist1",)
        )
        with pytest.raises(PrivilegeError):
            session.request_escalation("connectivity", "skip the ladder")
        session.request_escalation("acl", "valid step")
        session.run_fix_script(issue.fix_script)
        session.submit()

        escalations = heimdall.audit.query(action_prefix="privilege.escalation")
        assert len(escalations) == 2
        assert [record.allowed for record in escalations] == [False, True]
        assert heimdall.audit.verify()
