"""The ``tenants`` chaos campaign: zero cross-tenant leaks, ever.

Each scenario drives two isolated org deployments through the shared
front door with a fault armed; the judge (repro/faults/tenants.py)
requires every expected refusal to be MAC-audited on the victim's chain,
every unaffected org to end byte-identical to its baseline, and the shed
count to match exactly.
"""

import pytest

from repro.faults.chaos import campaign_names, run_campaign


@pytest.fixture(scope="module")
def tenants_report():
    return run_campaign("tenants", seed=7)


def scenario(report, label):
    return next(o for o in report.scenarios if o.label == label)


class TestCampaign:
    def test_registered_in_the_catalog(self):
        assert "tenants" in campaign_names()

    def test_campaign_passes(self, tenants_report):
        failed = [
            outcome.label for outcome in tenants_report.scenarios
            if not outcome.ok
        ]
        assert not failed, f"scenarios failed: {failed}"
        assert len(tenants_report.scenarios) == 9

    def test_every_scenario_keeps_the_tenant_invariant(self, tenants_report):
        for outcome in tenants_report.scenarios:
            assert outcome.tenant_ok, outcome.label
            assert outcome.audit_intact, outcome.label


class TestScenarios:
    def test_clean_isolation_has_zero_violations(self, tenants_report):
        outcome = scenario(tenants_report, "clean-isolation")
        assert outcome.outcome == "committed"
        assert outcome.violations == 0
        assert outcome.shed == 0

    def test_cross_tenant_access_is_refused_and_audited(self, tenants_report):
        outcome = scenario(tenants_report, "cross-tenant-denied")
        assert outcome.violations == 2
        assert outcome.outcome == "committed"  # the legit work still lands

    def test_token_theft_is_a_violation(self, tenants_report):
        outcome = scenario(tenants_report, "token-theft-refused")
        assert outcome.faults_fired
        assert outcome.violations == 1

    def test_replay_and_expiry_races_deny(self, tenants_report):
        for label in ("token-replay-refused", "expired-token-race"):
            outcome = scenario(tenants_report, label)
            assert outcome.faults_fired, label
            assert outcome.outcome == "committed", label

    def test_registry_crash_fails_closed(self, tenants_report):
        outcome = scenario(tenants_report, "registry-crash-fail-closed")
        assert outcome.faults_fired
        assert outcome.tenant_ok

    def test_queue_flood_sheds_exactly(self, tenants_report):
        outcome = scenario(tenants_report, "queue-flood-sheds")
        assert outcome.shed == 3
        assert outcome.outcome == "committed"

    def test_noisy_neighbor_stays_in_its_bulkhead(self, tenants_report):
        outcome = scenario(tenants_report, "noisy-neighbor-isolated")
        assert outcome.shed == 2
        assert outcome.violations == 0
        assert outcome.outcome == "committed"  # the quiet org's fix landed

    def test_break_glass_elevation_commits_flagged(self, tenants_report):
        outcome = scenario(tenants_report, "break-glass-elevation")
        assert outcome.outcome == "committed"
        assert outcome.tenant_ok

    def test_metrics_surface_the_isolation_machinery(self, tenants_report):
        metrics = tenants_report.metrics
        assert metrics["tenancy.violation"] >= 3
        assert metrics["tenancy.tokens.issued"] > 0
        assert metrics["tenancy.tokens.denied"] >= 3
        assert metrics["tenancy.break_glass"] >= 1
        assert metrics["frontdoor.admitted"] > 0
        assert metrics["frontdoor.shed"] >= 5


class TestReproducibility:
    def test_same_seed_same_report(self, tenants_report):
        again = run_campaign("tenants", seed=7)
        assert tenants_report.to_dict() == again.to_dict()

    def test_second_seed_also_passes(self):
        report = run_campaign("tenants", seed=8)
        assert report.ok
