"""The fault-point registry: off-by-default, seeded, reproducible."""

import pytest

from repro import faults, obs
from repro.faults.registry import FaultRegistry, Rule
from repro.util.errors import ReproError, TransientDeviceError


class BoomError(ReproError):
    pass


@pytest.fixture
def registry():
    return FaultRegistry()


@pytest.fixture
def point(registry):
    return registry.point("test.boom", error=BoomError, help="a test point")


class TestRegistration:
    def test_registration_is_idempotent(self, registry, point):
        again = registry.point("test.boom", error=BoomError)
        assert again is point

    def test_conflicting_error_type_rejected(self, registry, point):
        with pytest.raises(ReproError):
            registry.point("test.boom", error=TransientDeviceError)

    def test_names_sorted(self, registry, point):
        registry.point("test.alpha", error=BoomError)
        assert registry.names() == ["test.alpha", "test.boom"]


class TestArming:
    def test_unarmed_fire_is_noop(self, point):
        point.fire(device="r1")  # no raise

    def test_unknown_point_in_plan_rejected(self, registry, point):
        with pytest.raises(ReproError, match="unknown fault points"):
            registry.arm({"test.ghost": Rule(nth=1)})

    def test_nth_trigger(self, registry, point):
        registry.arm({"test.boom": Rule(nth=3)}, seed=7)
        point.fire()
        point.fire()
        with pytest.raises(BoomError):
            point.fire()
        # times defaults to 1 for nth rules: no further firings.
        point.fire()

    def test_times_bounds_triggers(self, registry, point):
        registry.arm({"test.boom": Rule(nth=1, times=2)}, seed=7)
        with pytest.raises(BoomError):
            point.fire()
        with pytest.raises(BoomError):
            point.fire()
        point.fire()

    def test_probability_zero_never_fires(self, registry, point):
        registry.arm({"test.boom": Rule(probability=0.0, times=99)}, seed=7)
        for _ in range(100):
            point.fire()

    def test_probability_one_always_fires(self, registry, point):
        registry.arm({"test.boom": Rule(probability=1.0, times=99)}, seed=7)
        for _ in range(3):
            with pytest.raises(BoomError):
                point.fire()

    def test_disarm_stops_firing(self, registry, point):
        registry.arm({"test.boom": Rule(nth=1)}, seed=7)
        registry.disarm()
        point.fire()

    def test_firings_logged_with_context(self, registry, point):
        registry.arm({"test.boom": Rule(nth=2)}, seed=7)
        point.fire(device="r1")
        with pytest.raises(BoomError):
            point.fire(device="r2")
        (firing,) = registry.firings
        assert firing.point == "test.boom"
        assert firing.call_index == 2
        assert firing.context == {"device": "r2"}

    def test_rule_error_override(self, registry, point):
        registry.arm(
            {"test.boom": Rule(nth=1, error=TransientDeviceError)}, seed=7
        )
        with pytest.raises(TransientDeviceError):
            point.fire()


class TestDeterminism:
    def _firing_pattern(self, seed, calls=200, probability=0.1):
        registry = FaultRegistry()
        point = registry.point("test.coin", error=BoomError)
        registry.arm(
            {"test.coin": Rule(probability=probability, times=calls)},
            seed=seed,
        )
        pattern = []
        for index in range(calls):
            try:
                point.fire()
            except BoomError:
                pattern.append(index)
        return pattern

    def test_same_seed_same_firing_pattern(self):
        assert self._firing_pattern(7) == self._firing_pattern(7)

    def test_different_seed_different_pattern(self):
        assert self._firing_pattern(7) != self._firing_pattern(8)

    def test_probabilistic_pattern_actually_fires(self):
        assert len(self._firing_pattern(7)) > 0


class TestRuleValidation:
    def test_needs_exactly_one_trigger(self):
        with pytest.raises(ReproError):
            Rule()
        with pytest.raises(ReproError):
            Rule(nth=1, probability=0.5)

    def test_nth_must_be_positive(self):
        with pytest.raises(ReproError):
            Rule(nth=0)

    def test_probability_range(self):
        with pytest.raises(ReproError):
            Rule(probability=1.5)


class TestMetrics:
    def test_injected_counter(self, registry, point):
        obs.reset()
        obs.enable()
        try:
            registry.arm({"test.boom": Rule(nth=1, times=3)}, seed=7)
            for _ in range(3):
                with pytest.raises(BoomError):
                    point.fire()
        finally:
            obs.disable()
        assert obs.registry().get("faults.injected").value == 3
