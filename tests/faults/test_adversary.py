"""Adversarial-technician campaign: seeded attacks, every one stopped.

The campaign's contract is the paper's least-privilege claim run as a red
team: a malicious operator riding a legitimate cover ticket must be stopped
by the reference monitor (deny-with-reason) or by invariant verification
(candidate never imported) — with the legitimate fix still landing where
one runs. The judge in :mod:`repro.faults.chaos` enforces the two-state
invariant on top, so a "blocked" attack that still mutated production
would fail the scenario.
"""

import pytest

from repro.faults.adversary import KINDS, Attack, generate_attacks
from repro.faults.chaos import run_campaign


class TestGenerateAttacks:
    def test_same_seed_same_attacks(self):
        assert generate_attacks(7) == generate_attacks(7)

    def test_seeds_vary_the_instances(self):
        # Variant pools are small, so any one field may collide between
        # two seeds; across a sweep the campaign must not degenerate to a
        # single instance.
        sweeps = {generate_attacks(seed) for seed in range(7, 15)}
        assert len(sweeps) > 1

    def test_every_kind_appears(self):
        attacks = generate_attacks(7)
        assert {attack.kind for attack in attacks} == set(KINDS)

    def test_every_attack_names_its_blocking_layer(self):
        for seed in (7, 11, 23):
            for attack in generate_attacks(seed):
                assert attack.expect_blocked_by in ("monitor", "verifier")
                assert attack.kind in KINDS
                assert attack.cover_issue in ("isp", "vlan")
                assert attack.script, attack.label

    def test_only_the_probe_expects_a_commit(self):
        # Every attack either never imports or (privilege-probe) rides a
        # fix that lands while its own commands are denied. Nothing in the
        # pools expects an attack payload to reach production.
        for attack in generate_attacks(7):
            if attack.kind == "privilege-probe":
                assert attack.expect == "committed"
                assert attack.min_denied >= 3
            else:
                assert attack.expect == "not-imported"


class TestAdversarialCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign("adversarial", seed=7)

    def test_campaign_passes(self, report):
        failed = [
            outcome.label for outcome in report.scenarios if not outcome.ok
        ]
        assert not failed, f"scenarios failed: {failed}"
        assert len(report.scenarios) == len(generate_attacks(7))

    def test_every_attack_reports_its_defense(self, report):
        for outcome in report.scenarios:
            assert outcome.attack_kind in KINDS
            assert outcome.attack_ok, outcome.label
            assert outcome.blocked_by in ("monitor", "verifier")

    def test_monitor_blocked_attacks_drew_denials(self, report):
        denied = [
            outcome for outcome in report.scenarios
            if outcome.blocked_by == "monitor"
        ]
        assert denied
        for outcome in denied:
            assert outcome.denied_commands > 0, outcome.label

    def test_escalation_probes_were_refused(self, report):
        probe = next(
            outcome for outcome in report.scenarios
            if outcome.attack_kind == "privilege-probe"
        )
        assert probe.escalations_refused == 2
        assert probe.outcome == "committed"  # the cover fix still landed

    def test_state_invariant_holds_under_attack(self, report):
        for outcome in report.scenarios:
            assert outcome.outcome in ("committed", "not-imported"), (
                f"{outcome.label}: {outcome.outcome}"
            )
            assert outcome.state_invariant, outcome.label
            assert outcome.audit_intact, outcome.label

    def test_same_seed_same_report(self, report):
        again = run_campaign("adversarial", seed=7)
        assert report.to_dict() == again.to_dict()


class TestAttackModel:
    def test_attack_is_frozen(self):
        attack = generate_attacks(7)[0]
        with pytest.raises(Exception):
            attack.label = "renamed"

    def test_defaults_describe_a_verifier_block(self):
        attack = Attack(
            label="x", kind="vlan-leak", description="d", cover_issue="vlan"
        )
        assert attack.expect == "not-imported"
        assert attack.expect_blocked_by == "verifier"
        assert attack.run_fix
