"""Seeded chaos campaigns: reproducible, and every scenario two-state."""

import pytest

from repro.faults.chaos import campaign_names, run_campaign
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def push_failures_report():
    return run_campaign("push-failures", seed=7)


class TestCampaignCatalog:
    def test_names(self):
        assert campaign_names() == [
            "adversarial", "approvals", "canary", "monitor-timeouts",
            "push-failures", "smoke", "tenants", "verify-degraded",
        ]

    def test_unknown_campaign_rejected(self):
        with pytest.raises(ReproError, match="unknown campaign"):
            run_campaign("nope", seed=7)


class TestPushFailures:
    def test_campaign_passes(self, push_failures_report):
        failed = [
            outcome.label for outcome in push_failures_report.scenarios
            if not outcome.ok
        ]
        assert not failed, f"scenarios failed: {failed}"

    def test_every_scenario_is_two_state(self, push_failures_report):
        for outcome in push_failures_report.scenarios:
            assert outcome.outcome in ("committed", "rolled-back"), (
                f"{outcome.label}: third outcome {outcome.outcome!r}"
            )
            assert outcome.state_invariant, outcome.label
            assert outcome.audit_intact, outcome.label

    def test_transient_fault_is_retried_to_commit(self, push_failures_report):
        outcome = self._scenario(push_failures_report, "transient-retried")
        assert outcome.outcome == "committed"
        assert outcome.resolved
        assert outcome.faults_fired  # the fault really fired

    def test_fatal_fault_rolls_back(self, push_failures_report):
        outcome = self._scenario(push_failures_report, "fatal-rollback")
        assert outcome.outcome == "rolled-back"
        assert not outcome.resolved
        assert outcome.rollback_reason

    def test_crash_is_resumed_to_commit(self, push_failures_report):
        outcome = self._scenario(push_failures_report, "crash-mid-push-resume")
        assert outcome.crashed
        assert outcome.resumed
        assert outcome.outcome == "committed"
        assert outcome.resolved

    def test_audit_failure_fails_closed(self, push_failures_report):
        outcome = self._scenario(push_failures_report, "audit-fail-closed")
        assert outcome.outcome == "rolled-back"
        assert outcome.audit_intact

    def test_metrics_surface_fault_paths(self, push_failures_report):
        metrics = push_failures_report.metrics
        assert metrics["faults.injected"] > 0
        assert metrics["push.rollbacks"] >= 2
        assert metrics["push.resumes"] >= 1
        assert metrics["retry.attempts"] > 0

    @staticmethod
    def _scenario(report, label):
        return next(o for o in report.scenarios if o.label == label)


class TestReproducibility:
    def test_same_seed_same_report(self):
        first = run_campaign("monitor-timeouts", seed=7)
        second = run_campaign("monitor-timeouts", seed=7)
        assert first.to_dict() == second.to_dict()

    def test_probabilistic_campaign_is_seed_deterministic(self):
        first = run_campaign("verify-degraded", seed=11)
        second = run_campaign("verify-degraded", seed=11)
        assert first.to_dict() == second.to_dict()
        assert first.ok


class TestSmoke:
    def test_smoke_campaign_passes(self):
        report = run_campaign("smoke", seed=7)
        assert report.ok
        assert len(report.scenarios) == 8


class TestApprovals:
    @pytest.fixture(scope="class")
    def approvals_report(self):
        return run_campaign("approvals", seed=7)

    def test_campaign_passes(self, approvals_report):
        failed = [
            outcome.label for outcome in approvals_report.scenarios
            if not outcome.ok
        ]
        assert not failed, f"scenarios failed: {failed}"
        assert len(approvals_report.scenarios) == 11

    def test_clean_quorum_commits_with_intact_replicas(
        self, approvals_report,
    ):
        outcome = self._scenario(approvals_report, "quorum-approves-clean")
        assert outcome.outcome == "committed"
        assert outcome.resolved
        assert outcome.audit_status == "intact"
        assert outcome.approval_ok

    def test_unresponsive_quorum_never_pushes(self, approvals_report):
        outcome = self._scenario(approvals_report, "quorum-timeout-denies")
        assert outcome.outcome == "not-imported"
        assert outcome.state_invariant  # byte-identical to pre-push
        assert not outcome.resolved

    def test_break_glass_override_commits_flagged(self, approvals_report):
        outcome = self._scenario(approvals_report, "break-glass-override")
        assert outcome.outcome == "committed"
        assert outcome.faults_fired  # the approvers really crashed
        assert approvals_report.metrics["approvals.break_glass"] >= 1

    def test_crash_after_approval_resumes_without_rerequest(
        self, approvals_report,
    ):
        outcome = self._scenario(
            approvals_report, "crash-after-approval-resume"
        )
        assert outcome.crashed
        assert outcome.resumed
        assert outcome.outcome == "committed"
        assert outcome.approval_ok  # exactly one proposed record

    def test_tampered_minority_is_detected_and_served_around(
        self, approvals_report,
    ):
        outcome = self._scenario(approvals_report, "replica-tamper-minority")
        assert outcome.outcome == "committed"
        assert outcome.audit_status == "degraded"
        assert outcome.audit_flagged  # detection IS the success condition
        assert any("chain broken" in flag for flag in outcome.audit_flagged)

    def test_quorum_loss_fails_closed(self, approvals_report):
        outcome = self._scenario(approvals_report, "replica-crash-quorum-lost")
        assert outcome.outcome == "not-imported"
        assert outcome.audit_status == "lost"
        assert outcome.state_invariant

    def test_metrics_surface_the_gate(self, approvals_report):
        metrics = approvals_report.metrics
        assert metrics["approvals.requested"] >= 10
        assert metrics["approvals.granted"] > 0
        assert metrics["approvals.denied"] >= 3
        assert metrics["approvals.mediated"] >= 1
        assert metrics["approvals.timeouts"] >= 2
        assert metrics["audit.replica.appends"] > 0
        assert metrics["audit.replica.flagged"] > 0
        assert metrics["audit.replica.quorum_lost"] >= 1

    def test_same_seed_same_report(self, approvals_report):
        again = run_campaign("approvals", seed=7)
        assert approvals_report.to_dict() == again.to_dict()

    @staticmethod
    def _scenario(report, label):
        return next(o for o in report.scenarios if o.label == label)


class TestCanary:
    @pytest.fixture(scope="class")
    def canary_report(self):
        return run_campaign("canary", seed=7)

    def test_campaign_passes(self, canary_report):
        failed = [
            outcome.label for outcome in canary_report.scenarios
            if not outcome.ok
        ]
        assert not failed, f"scenarios failed: {failed}"

    def test_clean_push_commits_every_wave(self, canary_report):
        outcome = self._scenario(canary_report, "canary-clean")
        assert outcome.outcome == "committed"
        assert outcome.resolved
        assert outcome.waves == 2
        assert outcome.wave_records_ok
        assert not outcome.quarantined

    def test_probe_failure_quarantines_and_rolls_back(self, canary_report):
        outcome = self._scenario(canary_report, "probe-fail-quarantine")
        assert outcome.outcome == "rolled-back"
        assert outcome.state_invariant  # byte-identical to pre-push
        assert outcome.quarantined
        assert "HealthProbeError" in outcome.rollback_reason

    def test_breaker_trip_quarantines_the_flapper(self, canary_report):
        outcome = self._scenario(canary_report, "device-flap-breaker")
        assert outcome.outcome == "rolled-back"
        assert outcome.quarantined
        assert "CircuitOpenError" in outcome.rollback_reason

    def test_flaps_within_budget_still_commit(self, canary_report):
        outcome = self._scenario(canary_report, "flap-within-budget")
        assert outcome.outcome == "committed"
        assert outcome.resolved
        assert not outcome.quarantined
        assert outcome.faults_fired  # the flaps really happened

    def test_midwave_crash_resumes_to_commit(self, canary_report):
        outcome = self._scenario(canary_report, "crash-midwave-resume")
        assert outcome.crashed
        assert outcome.resumed
        assert outcome.outcome == "committed"
        assert outcome.resolved
        # Every wave — including the one replayed by resume() — left an
        # allowed audit record.
        assert outcome.wave_records_ok

    def test_rollout_metrics_surface(self, canary_report):
        metrics = canary_report.metrics
        assert metrics["rollout.waves"] > 0
        assert metrics["rollout.probes"] > 0
        assert metrics["rollout.quarantined"] >= 2
        assert metrics["rollout.breaker.trips"] >= 1

    def test_same_seed_same_report(self, canary_report):
        again = run_campaign("canary", seed=7)
        assert canary_report.to_dict() == again.to_dict()

    @staticmethod
    def _scenario(report, label):
        return next(o for o in report.scenarios if o.label == label)
