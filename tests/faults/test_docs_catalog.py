"""docs/ROBUSTNESS.md's fault-point catalog must match the live registry.

Fault points register at import time under their final names (the same
pattern as the metrics registry), so importing **every** ``repro`` module
(a :mod:`pkgutil` walk — no hand-maintained list to forget to extend) and
diffing against the parsed markdown table is a complete consistency
check. Run via ``make docs-check`` or ``pytest -m docs_check``.
"""

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro
from repro.faults import registry

# Import the whole package for the registration side effect: any module
# anywhere in repro that registers a fault point is covered automatically.
for _info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
    if _info.name.rsplit(".", 1)[-1] == "__main__":
        continue
    importlib.import_module(_info.name)

DOCS = Path(__file__).resolve().parents[2] / "docs" / "ROBUSTNESS.md"

# One catalog row: | `point.name` | `ErrorType` | `module` | effect |
ROW = re.compile(
    r"^\|\s*`(?P<name>[a-z0-9_.]+)`\s*"
    r"\|\s*`(?P<error>[A-Za-z]+)`\s*"
    r"\|\s*`(?P<module>[a-z_.]+)`\s*"
    r"\|\s*(?P<effect>[^|]+?)\s*\|$",
    re.MULTILINE,
)


def documented_points():
    text = DOCS.read_text()
    return {
        match.group("name"): match.group("error")
        for match in ROW.finditer(text)
    }


def registered_points():
    # Test modules may register ad-hoc `test.*` points in the process-wide
    # registry; the catalog covers the pipeline's only.
    return {
        point.name: point.error.__name__
        for point in registry().points()
        if not point.name.startswith("test.")
    }


@pytest.mark.docs_check
class TestFaultCatalog:
    def test_catalog_parses(self):
        docs = documented_points()
        assert len(docs) >= 6, "fault catalog table missing or unparseable"

    def test_every_registered_point_is_documented(self):
        missing = set(registered_points()) - set(documented_points())
        assert not missing, (
            f"fault points registered but not in docs/ROBUSTNESS.md: "
            f"{sorted(missing)}"
        )

    def test_every_documented_point_is_registered(self):
        stale = set(documented_points()) - set(registered_points())
        assert not stale, (
            f"fault points documented but not registered: {sorted(stale)}"
        )

    def test_error_types_match(self):
        docs = documented_points()
        live = registered_points()
        wrong = {
            name: (docs[name], live[name])
            for name in set(docs) & set(live)
            if docs[name] != live[name]
        }
        assert not wrong, f"catalog error types disagree with code: {wrong}"

    def test_every_point_has_help(self):
        unhelped = [
            point.name for point in registry().points()
            if not point.name.startswith("test.") and not point.help
        ]
        assert not unhelped, f"fault points without help text: {unhelped}"
