"""Keep the process-wide fault registry and PRNG clean between tests."""

import pytest

from repro import faults, obs
from repro.util import rand


@pytest.fixture(autouse=True)
def _clean_fault_state():
    yield
    faults.disarm()
    rand.reset()
    obs.disable()
    obs.reset()
