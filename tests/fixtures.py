"""Shared small networks used across the test suite.

``square_network`` mirrors the paper's running example (Figures 5 and 6):
host2 talks to host4 across a ring of four routers, router3 carries an ACL,
and host3 is the sensitive host that must stay isolated.

Layout (subnets on the links)::

    h1 --- r1 ========== r2 --- h2
            |  10.0.12    |
    10.0.14 |             | 10.0.23
            |  10.0.34    |
    h4 --- r4 ========== r3 --- h3 (sensitive)

LANs: h1 10.1.1.0/24, h2 10.2.2.0/24, h3 10.3.3.0/24, h4 10.4.4.0/24.
An ACL on r3 denies h2's LAN from reaching h3's LAN but permits the rest.
"""

from repro.scenarios.builder import NetworkBuilder


def square_network():
    builder = NetworkBuilder("square")
    for name in ("r1", "r2", "r3", "r4"):
        builder.router(name)
    for name in ("h1", "h2", "h3", "h4"):
        builder.host(name)

    builder.p2p("r1", "Gi0/0", "r2", "Gi0/0", "10.0.12.0/24")
    builder.p2p("r2", "Gi0/1", "r3", "Gi0/0", "10.0.23.0/24")
    builder.p2p("r3", "Gi0/1", "r4", "Gi0/0", "10.0.34.0/24")
    builder.p2p("r4", "Gi0/1", "r1", "Gi0/1", "10.0.14.0/24")

    builder.attach_host("h1", "eth0", "r1", "Gi0/2", "10.1.1.0/24")
    builder.attach_host("h2", "eth0", "r2", "Gi0/2", "10.2.2.0/24")
    builder.attach_host("h3", "eth0", "r3", "Gi0/2", "10.3.3.0/24")
    builder.attach_host("h4", "eth0", "r4", "Gi0/2", "10.4.4.0/24")

    for name in ("r1", "r2", "r3", "r4"):
        builder.enable_ospf(name, passive=("Gi0/2",))
        builder.credentials(
            name, enable_secret=f"secret-{name}", vty_password="vty-pass",
            snmp_community="private",
        )

    # Protect the sensitive host LAN (10.3.3.0/24) from h2's LAN.
    builder.acl(
        "r3",
        "PROTECT_H3",
        [
            "deny ip 10.2.2.0 0.0.0.255 10.3.3.0 0.0.0.255",
            "permit ip any any",
        ],
    )
    builder.apply_acl("r3", "Gi0/2", "PROTECT_H3", direction="out")
    return builder.build()


def switched_lan():
    """Two switches trunked together; hosts in VLANs 10 and 20; r1 as gateway.

    ::

        hA(v10) -- sw1 ===trunk(10,20)=== sw2 -- hB(v10)
        r1(gw) ----/                        \\---- hC(v20)

    VLAN 10 is 192.168.10.0/24 (gateway r1); VLAN 20 has no gateway, so hC
    is L2-isolated from VLAN 10.
    """
    builder = NetworkBuilder("switched-lan")
    builder.router("r1").switch("sw1").switch("sw2")
    for name in ("hA", "hB", "hC"):
        builder.host(name)
    for switch in ("sw1", "sw2"):
        builder.vlan(switch, 10, "users").vlan(switch, 20, "iot")

    builder.access_link("r1", "Gi0/0", "sw1", "Fa0/1", 10)
    builder.address("r1", "Gi0/0", "192.168.10.1/24")
    builder.access_link("hA", "eth0", "sw1", "Fa0/2", 10)
    builder.lan_host("hA", "eth0", "192.168.10.11/24", "192.168.10.1")
    builder.access_link("hB", "eth0", "sw2", "Fa0/2", 10)
    builder.lan_host("hB", "eth0", "192.168.10.12/24", "192.168.10.1")
    builder.access_link("hC", "eth0", "sw2", "Fa0/3", 20)
    builder.lan_host("hC", "eth0", "192.168.10.13/24", "192.168.10.1")
    builder.trunk_link("sw1", "Fa0/24", "sw2", "Fa0/24", vlans=(10, 20))
    return builder.build()
