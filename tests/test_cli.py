"""CLI tests (python -m repro ...)."""

import io

import pytest

from repro.cli import main


def run(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestShow:
    def test_enterprise_summary(self):
        code, text = run("show", "--network", "enterprise")
        assert code == 0
        assert "routers: 9" in text
        assert "links: 22" in text
        assert "gw" in text

    def test_unknown_network(self):
        code, text = run("show", "--network", "atlantis")
        assert code == 2
        assert "error:" in text

    def test_snapshot_directory_input(self, tmp_path):
        code, _ = run("snapshot", "--network", "enterprise", str(tmp_path / "s"))
        assert code == 0
        code, text = run("show", "--network", str(tmp_path / "s"))
        assert code == 0
        assert "routers: 9" in text


class TestPolicies:
    def test_lists_policies(self):
        code, text = run("policies", "--network", "enterprise")
        assert code == 0
        assert "policies mined" in text
        assert "[reachability" in text
        assert "[isolation" in text

    def test_waypoints_flag(self):
        code, text = run("policies", "--network", "enterprise", "--waypoints")
        assert code == 0
        assert "[waypoint" in text

    def test_robust_flag_reduces_count(self):
        _, base = run("policies", "--network", "enterprise")
        _, robust = run("policies", "--network", "enterprise", "--robust")
        base_count = int(base.split()[0])
        robust_count = int(robust.split()[0])
        assert robust_count < base_count


class TestIssues:
    def test_lists_three(self):
        code, text = run("issues", "--network", "enterprise")
        assert code == 0
        for issue_id in ("ospf", "isp", "vlan"):
            assert issue_id in text


class TestResolve:
    @pytest.mark.parametrize("workflow", ["current", "heimdall"])
    def test_resolves_isp_issue(self, workflow):
        code, text = run(
            "resolve", "--network", "enterprise",
            "--issue", "isp", "--workflow", workflow,
        )
        assert code == 0
        assert "resolved: True" in text

    def test_heimdall_reports_steps(self):
        code, text = run("resolve", "--network", "enterprise", "--issue", "isp")
        assert "twin setup" in text
        assert "changes imported" in text

    def test_unknown_issue(self):
        code, text = run("resolve", "--network", "enterprise",
                         "--issue", "gremlins")
        assert code == 1
        assert "unknown issue" in text


class TestSnapshot:
    def test_writes_directory(self, tmp_path):
        target = tmp_path / "snap"
        code, text = run("snapshot", "--network", "enterprise", str(target))
        assert code == 0
        assert (target / "topology.json").exists()
        assert (target / "configs" / "gw.cfg").exists()


class TestObsReport:
    def test_human_report(self):
        code, text = run("obs", "report", "--network", "enterprise",
                         "--issue", "ospf")
        assert code == 0
        assert "resolved=True" in text
        assert "traces: 1" in text
        assert "heimdall.session" in text
        assert "monitor.execute" in text
        assert "enforcer.verify" in text
        assert "monitor.commands" in text
        assert "chain intact" in text

    def test_json_report(self):
        import json

        code, text = run("obs", "report", "--network", "enterprise",
                         "--issue", "ospf", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["scenario"]["resolved"] is True
        assert payload["audit"]["chain_intact"] is True
        assert payload["audit"]["correlated"] > 0
        (trace,) = payload["traces"]
        assert trace["name"] == "heimdall.session"
        assert trace["children"]
        assert payload["metrics"]["monitor.commands"]["value"] > 0

    def test_writes_json_file(self, tmp_path):
        import json

        target = tmp_path / "obs.json"
        code, text = run("obs", "report", "--network", "enterprise",
                         "--issue", "vlan", "-o", str(target))
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["scenario"]["issue"] == "vlan"

    def test_unknown_issue(self):
        code, text = run("obs", "report", "--network", "enterprise",
                         "--issue", "gremlins")
        assert code == 1
        assert "unknown issue" in text

    def test_observability_left_disabled(self):
        from repro import obs

        run("obs", "report", "--network", "enterprise", "--issue", "ospf")
        assert not obs.enabled()
        obs.reset()


class TestBenchConcurrent:
    def test_stress_smoke_writes_report(self, tmp_path):
        import json

        from repro.util import rand

        out_path = tmp_path / "stress.json"
        code, text = run(
            "bench", "--concurrent", "2", "--seed", "7",
            "-o", str(out_path),
        )
        rand.reset()
        assert code == 0
        assert "[ok" in text and "[FAIL" not in text
        report = json.loads(out_path.read_text())
        assert report["ok"] is True
        assert report["sessions"] == 2

    def test_rejects_bad_session_count(self):
        code, text = run("bench", "--concurrent", "0")
        # 0 means "perf bench" by flag default; explicit negatives error.
        code, text = run("bench", "--concurrent", "-3")
        assert code != 0


class TestChaosCli:
    def test_list_names_only(self):
        from repro.faults.chaos import campaign_names

        code, text = run("chaos", "--list")
        assert code == 0
        assert text.splitlines() == [
            "adversarial", "approvals", "canary", "monitor-timeouts",
            "push-failures", "smoke", "tenants", "verify-degraded",
        ]
        assert text.splitlines() == campaign_names()

    def test_list_campaigns_shows_scenarios(self):
        from repro.faults.chaos import campaign_names

        code, text = run("chaos", "--list-campaigns")
        assert code == 0
        assert "canary (5 scenarios)" in text
        assert "probe-fail-quarantine [staged]: expect rolled-back" in text
        assert "push-failures (5 scenarios)" in text
        # Monolithic scenarios are not marked staged.
        assert "transient-retried: expect committed" in text
        # The quorum-approvals campaign and its headline scenarios.
        assert "approvals (11 scenarios)" in text
        assert "quorum-timeout-denies: expect not-imported" in text
        assert "replica-tamper-minority: expect committed" in text
        # Every registered campaign appears in the listing.
        for name in campaign_names():
            assert f"{name} (" in text

    def test_matrix_sweeps_every_campaign_across_seeds(self, monkeypatch):
        import repro.faults.chaos as chaos_module

        ran = []

        class _StubOutcome:
            ok = True

        class _StubReport:
            ok = True
            scenarios = [_StubOutcome()]

        def fake_run_campaign(name, seed):
            ran.append((name, seed))
            return _StubReport()

        monkeypatch.setattr(
            chaos_module, "campaign_names", lambda: ["alpha", "beta"]
        )
        monkeypatch.setattr(chaos_module, "run_campaign", fake_run_campaign)
        code, text = run("chaos", "--matrix", "--seed", "3", "--seeds", "2")
        assert code == 0
        assert ran == [
            ("alpha", 3), ("alpha", 4), ("beta", 3), ("beta", 4),
        ]
        assert "matrix PASSED: 2 campaigns x 2 seeds" in text

    def test_matrix_fails_when_any_cell_fails(self, monkeypatch):
        import repro.faults.chaos as chaos_module

        class _StubOutcome:
            ok = False

        class _StubReport:
            ok = False
            scenarios = [_StubOutcome()]

        monkeypatch.setattr(
            chaos_module, "campaign_names", lambda: ["alpha"]
        )
        monkeypatch.setattr(
            chaos_module, "run_campaign", lambda name, seed: _StubReport()
        )
        code, text = run("chaos", "--matrix", "--seeds", "1")
        assert code == 1
        assert "matrix FAILED: alpha@7" in text


class TestAuditCli:
    def test_export_then_verify_replicated_chains(self, tmp_path):
        import json

        target = tmp_path / "chains.json"
        code, text = run(
            "audit", "export", "--network", "enterprise", "--issue", "ospf",
            "--replicas", "3", "-o", str(target),
        )
        assert code == 0
        assert "exported 3 chains" in text
        payload = json.loads(target.read_text())
        assert payload["quorum"] == 2
        assert len(payload["replicas"]) == 3

        code, text = run("audit", "verify", str(target))
        assert code == 0
        assert text.count("[ok    ]") == 3
        assert "quorum verdict: intact (3/3 chains agree, quorum 2)" in text

    def test_tampered_replica_is_caught_offline(self, tmp_path):
        target = tmp_path / "tampered.json"
        code, _ = run(
            "audit", "export", "--network", "enterprise", "--issue", "ospf",
            "--replicas", "3", "--tamper", "1", "-o", str(target),
        )
        assert code == 0
        code, text = run("audit", "verify", str(target))
        assert code == 1
        assert "[BROKEN] audit-replica-1: first broken MAC link" in text
        assert "quorum verdict: degraded (2/3 chains agree" in text

    def test_single_chain_export_verifies(self, tmp_path):
        target = tmp_path / "single.json"
        code, text = run(
            "audit", "export", "--network", "enterprise", "--issue", "ospf",
            "-o", str(target),
        )
        assert code == 0
        assert "exported 1 chain " in text
        code, text = run("audit", "verify", str(target))
        assert code == 0
        assert "quorum verdict: intact (1/1 chains agree, quorum 1)" in text

    def test_unknown_issue(self, tmp_path):
        code, text = run(
            "audit", "export", "--network", "enterprise",
            "--issue", "gremlins", "-o", str(tmp_path / "x.json"),
        )
        assert code == 1
        assert "unknown issue" in text


class TestBenchRollout:
    def test_rollout_bench_writes_report(self, tmp_path):
        import json

        out_path = tmp_path / "rollout.json"
        code, text = run(
            "bench", "--rollout", "--repeats", "1", "-o", str(out_path),
        )
        assert code == 0
        assert "monolithic" in text and "canary" in text
        report = json.loads(out_path.read_text())
        rows = report["networks"]["enterprise"]
        assert rows["waves"] == 2
        assert rows["probes_per_push"] == 2
        push = rows["push"]
        assert push["monolithic_ms"] > 0
        assert push["canary_incremental_ms"] > 0
        assert push["canary_cold_ms"] > 0
