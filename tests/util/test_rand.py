"""The confined-randomness gateway (repro.util.rand)."""

import pytest

from repro.util import rand


@pytest.fixture(autouse=True)
def _reset_rand():
    yield
    rand.reset()


class TestSeeding:
    def test_same_seed_same_stream(self):
        rand.seed(42)
        a = [rand.rng().random() for _ in range(5)]
        rand.seed(42)
        b = [rand.rng().random() for _ in range(5)]
        assert a == b

    def test_different_seeds_differ(self):
        rand.seed(1)
        a = rand.rng().random()
        rand.seed(2)
        b = rand.rng().random()
        assert a != b

    def test_get_seed_tracks(self):
        rand.seed(99)
        assert rand.get_seed() == 99
        rand.reset()
        assert rand.get_seed() == 0


class TestDerivedStreams:
    def test_derive_is_deterministic_per_name(self):
        rand.seed(7)
        assert (
            rand.derive("faults").random()
            == rand.derive("faults").random()
        )

    def test_derived_streams_are_independent(self):
        rand.seed(7)
        before = rand.derive("retry").random()
        # Drain another stream; a fresh "retry" stream must be unaffected.
        faults = rand.derive("faults")
        for _ in range(100):
            faults.random()
        assert rand.derive("retry").random() == before

    def test_derived_names_differ(self):
        rand.seed(7)
        assert rand.derive("a").random() != rand.derive("b").random()

    def test_string_seeds_accepted(self):
        rand.seed("7:0:label")
        assert 0.0 <= rand.derive("x").random() < 1.0
