"""Lint: the wall clock is reachable only through ``repro.util.clock``.

CONTRIBUTING.md: determinism is a feature. All real-time reads — benchmark
timing, span durations — must go through the two sanctioned gateways
(`monotonic_s`, `wall_s`) so they are auditable in one place. This test
greps the source tree for direct clock access anywhere else.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
SANCTIONED = SRC / "util"

FORBIDDEN = (
    re.compile(r"\btime\.time\s*\("),
    re.compile(r"\btime\.monotonic(?:_ns)?\s*\("),
    re.compile(r"\btime\.perf_counter(?:_ns)?\s*\("),
    re.compile(r"\btime\.process_time(?:_ns)?\s*\("),
    re.compile(r"\bdatetime\.(?:now|utcnow|today)\s*\("),
    re.compile(r"^\s*(?:import time\b|from time import\b)", re.MULTILINE),
)


def test_no_direct_wallclock_outside_util():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if SANCTIONED in path.parents:
            continue
        text = path.read_text()
        for pattern in FORBIDDEN:
            for match in pattern.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                offenders.append(
                    f"{path.relative_to(SRC.parent)}:{line}: "
                    f"{match.group(0).strip()}"
                )
    assert not offenders, (
        "direct wall-clock access outside repro/util/ "
        "(use repro.util.clock.monotonic_s / wall_s):\n"
        + "\n".join(offenders)
    )


def test_gateways_exist():
    from repro.util.clock import monotonic_s, wall_s

    assert isinstance(monotonic_s(), float)
    assert isinstance(wall_s(), float)
