"""Bounded retry with seeded backoff (repro.util.retry)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.util import rand
from repro.util.clock import SimulatedClock
from repro.util.errors import FatalApplyError, TransientDeviceError
from repro.util.retry import RetryPolicy, retry_call


@pytest.fixture(autouse=True)
def _reset():
    yield
    rand.reset()
    obs.disable()
    obs.reset()


def flaky(failures, error=TransientDeviceError):
    """A callable failing ``failures`` times, then returning 'ok'."""
    state = {"left": failures}

    def call():
        if state["left"] > 0:
            state["left"] -= 1
            raise error("transient")
        return "ok"

    return call


class TestRetryCall:
    def test_first_try_success_costs_nothing(self):
        clock = SimulatedClock()
        assert retry_call(flaky(0), clock=clock) == "ok"
        assert clock.now == 0.0

    def test_transient_failures_are_retried(self):
        assert retry_call(flaky(2)) == "ok"

    def test_attempts_budget_exhausts(self):
        with pytest.raises(TransientDeviceError):
            retry_call(flaky(10), policy=RetryPolicy(max_attempts=3))

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def fatal():
            calls.append(1)
            raise FatalApplyError("broken")

        with pytest.raises(FatalApplyError):
            retry_call(fatal)
        assert len(calls) == 1

    def test_backoff_charges_simulated_clock(self):
        clock = SimulatedClock()
        rand.seed(7)
        retry_call(flaky(2), clock=clock)
        assert clock.now > 0.0
        assert "retry backoff" in clock.breakdown()

    def test_backoff_is_deterministic_under_seed(self):
        rand.seed(7)
        clock_a = SimulatedClock()
        retry_call(flaky(3), clock=clock_a)
        rand.seed(7)
        clock_b = SimulatedClock()
        retry_call(flaky(3), clock=clock_b)
        assert clock_a.now == clock_b.now

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=4.0, jitter=0.0)
        rng = rand.derive("retry")
        delays = [policy.delay_s(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_deadline_bounds_total_delay(self):
        policy = RetryPolicy(
            max_attempts=100, base_delay_s=1.0, max_delay_s=1.0,
            deadline_s=2.5, jitter=0.0,
        )
        clock = SimulatedClock()
        with pytest.raises(TransientDeviceError):
            retry_call(flaky(10), policy=policy, clock=clock)
        assert clock.now <= 2.5

    def test_on_retry_callback_sees_each_attempt(self):
        seen = []
        retry_call(
            flaky(2),
            on_retry=lambda attempt, exc, delay: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_jitter_streams_are_keyed_per_operation(self):
        # Distinct operations must not share one jitter sequence.
        def delays(key):
            rand.seed(7)
            seen = []
            retry_call(
                flaky(3), jitter_key=key,
                on_retry=lambda attempt, exc, delay: seen.append(delay),
            )
            return seen

        assert delays("push-1:r1") == delays("push-1:r1")
        assert delays("push-1:r1") != delays("push-2:r2")

    def test_default_key_keeps_the_legacy_stream(self):
        rand.seed(7)
        rng = rand.derive("retry")
        policy = RetryPolicy()
        expected = [policy.delay_s(attempt, rng) for attempt in (1, 2)]
        rand.seed(7)
        seen = []
        retry_call(
            flaky(2),
            on_retry=lambda attempt, exc, delay: seen.append(delay),
        )
        assert seen == expected

    def test_interleaved_retries_see_the_same_delays_as_alone(self):
        # The regression this PR fixes: two concurrent retrying pushes must
        # each observe exactly the backoff schedule they would running
        # alone — a shared stream would hand delays out in arrival order.
        import threading

        def solo(key):
            rand.seed(7)
            seen = []
            retry_call(
                flaky(3), jitter_key=key,
                on_retry=lambda attempt, exc, delay: seen.append(delay),
            )
            return seen

        alone = {key: solo(key) for key in ("push-a:r1", "push-b:r2")}

        rand.seed(7)
        interleaved = {}

        def run(key):
            seen = []
            retry_call(
                flaky(3), jitter_key=key,
                on_retry=lambda attempt, exc, delay: seen.append(delay),
            )
            interleaved[key] = seen

        threads = [
            threading.Thread(target=run, args=(key,)) for key in alone
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert interleaved == alone

    def test_metrics_count_attempts_and_exhaustion(self):
        obs.reset()
        obs.enable()
        try:
            retry_call(flaky(2))
            with pytest.raises(TransientDeviceError):
                retry_call(flaky(10), policy=RetryPolicy(max_attempts=2))
        finally:
            obs.disable()
        assert obs.registry().get("retry.attempts").value == 3
        assert obs.registry().get("retry.exhausted").value == 1


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -0.1},
        {"base_delay_s": 2.0, "max_delay_s": 1.0},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"deadline_s": 0.0},
    ])
    def test_bad_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_max_total_delay_is_the_smaller_budget(self):
        by_attempts = RetryPolicy(
            max_attempts=3, max_delay_s=4.0, deadline_s=100.0
        )
        assert by_attempts.max_total_delay_s == 8.0  # 2 delays x 4 s
        by_deadline = RetryPolicy(
            max_attempts=100, max_delay_s=4.0, deadline_s=10.0
        )
        assert by_deadline.max_total_delay_s == 10.0


class TestBackoffProperties:
    """Seeded schedules are bounded and deterministic — the property the
    backoff-cap fix guarantees (jitter is applied *before* the hard cap)."""

    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        base=st.floats(min_value=0.01, max_value=4.0),
        spread=st.floats(min_value=1.0, max_value=8.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_every_seeded_delay_respects_the_hard_cap(
        self, base, spread, jitter, seed,
    ):
        policy = RetryPolicy(
            base_delay_s=base, max_delay_s=base * spread, jitter=jitter,
        )
        rand.seed(seed)
        rng = rand.derive("retry")
        delays = [policy.delay_s(attempt, rng) for attempt in range(1, 9)]
        assert all(0.0 <= delay <= policy.max_delay_s for delay in delays)
        # Same seed, same schedule — byte-for-byte.
        rand.seed(seed)
        rng = rand.derive("retry")
        assert delays == [
            policy.delay_s(attempt, rng) for attempt in range(1, 9)
        ]

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        attempts=st.integers(min_value=1, max_value=6),
        deadline_s=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_total_backoff_never_exceeds_the_budget(
        self, seed, attempts, deadline_s,
    ):
        policy = RetryPolicy(max_attempts=attempts, deadline_s=deadline_s)
        rand.seed(seed)
        clock = SimulatedClock()
        with pytest.raises(TransientDeviceError):
            retry_call(flaky(100), policy=policy, clock=clock)
        assert clock.now <= policy.max_total_delay_s + 1e-9
