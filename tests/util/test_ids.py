import threading

from repro.util.ids import IdAllocator


class TestIdAllocator:
    def test_sequential_per_prefix(self):
        ids = IdAllocator()
        assert ids.allocate("TICKET") == "TICKET-0001"
        assert ids.allocate("TICKET") == "TICKET-0002"

    def test_prefixes_are_independent(self):
        ids = IdAllocator()
        ids.allocate("TICKET")
        assert ids.allocate("AUDIT") == "AUDIT-0001"

    def test_peek_does_not_advance(self):
        ids = IdAllocator()
        assert ids.peek("X") == "X-0001"
        assert ids.peek("X") == "X-0001"
        assert ids.allocate("X") == "X-0001"
        assert ids.peek("X") == "X-0002"

    def test_two_allocators_are_independent(self):
        a, b = IdAllocator(), IdAllocator()
        a.allocate("T")
        assert b.allocate("T") == "T-0001"

    def test_concurrent_allocation_never_duplicates(self):
        # Concurrent sessions allocate ticket/lease ids from one shared
        # allocator; the unlocked read-modify-write used to be able to hand
        # two threads the same id.
        ids = IdAllocator()
        per_thread = 200
        results = [[] for _ in range(8)]

        def allocate(bucket):
            for _ in range(per_thread):
                bucket.append(ids.allocate("T"))

        threads = [
            threading.Thread(target=allocate, args=(bucket,))
            for bucket in results
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        allocated = [value for bucket in results for value in bucket]
        assert len(allocated) == len(set(allocated)) == 8 * per_thread
        assert ids.peek("T") == f"T-{8 * per_thread + 1:04d}"
