from repro.util.ids import IdAllocator


class TestIdAllocator:
    def test_sequential_per_prefix(self):
        ids = IdAllocator()
        assert ids.allocate("TICKET") == "TICKET-0001"
        assert ids.allocate("TICKET") == "TICKET-0002"

    def test_prefixes_are_independent(self):
        ids = IdAllocator()
        ids.allocate("TICKET")
        assert ids.allocate("AUDIT") == "AUDIT-0001"

    def test_peek_does_not_advance(self):
        ids = IdAllocator()
        assert ids.peek("X") == "X-0001"
        assert ids.peek("X") == "X-0001"
        assert ids.allocate("X") == "X-0001"
        assert ids.peek("X") == "X-0002"

    def test_two_allocators_are_independent(self):
        a, b = IdAllocator(), IdAllocator()
        a.allocate("T")
        assert b.allocate("T") == "T-0001"
