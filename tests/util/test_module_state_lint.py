"""Lint: module-level mutable state in ``src/`` must be accounted for.

The concurrency model (docs/ARCHITECTURE.md) assumes shared mutable state
is lock-guarded — process-wide singletons like the compile cache, the
metrics registry, and the fault registry all take a lock internally. A
bare module-level ``dict``/``list``/``set`` is invisible shared state: any
session thread can mutate it with no lock, which is exactly the class of
bug the session layer flushed out of ``IdAllocator`` and ``AuditTrail``.

This test walks every module's top level with ``ast`` (the same pattern as
``test_no_random.py``) and fails on any mutable-container binding that is
not on the allowlist below. Everything currently listed is a read-only
lookup table populated once at import time; adding new *mutable* module
state means either moving it behind a locked class or consciously adding
it here with a justification.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# Builders of mutable containers when called at module level.
MUTABLE_CALLS = {
    "dict", "list", "set", "bytearray",
    "defaultdict", "OrderedDict", "deque", "Counter",
}

# "path-relative-to-src : name" -> why it is safe. Every entry must be
# treated as frozen after import; none may be mutated at runtime.
ALLOWED = {
    "repro/cli.py:_SCENARIOS": "scenario-name -> builder table",
    "repro/config/acl.py:_WELL_KNOWN_PORTS": "port-name constants",
    "repro/config/acl.py:_PORT_NAMES": "reverse port-name constants",
    "repro/config/apply.py:_HANDLERS": "change-kind dispatch table",
    "repro/config/diffing.py:_KIND_TABLE": "diff-kind metadata",
    "repro/config/diffing.py:_CATEGORY_BY_KIND": "derived diff metadata",
    "repro/config/semdiff.py:_SECTION_BY_KIND": "kind -> section table",
    "repro/control/routes.py:ADMIN_DISTANCE": "protocol preference table",
    "repro/core/enforcer/risk.py:DEFAULT_WEIGHTS":
        "config-section risk weight table",
    "repro/core/heimdall.py:ESCALATION_LADDER": "profile ordering",
    "repro/core/privilege/generator.py:TASK_PROFILES": "profile catalog",
    "repro/core/privilege/generator.py:PROFILE_BY_ISSUE":
        "issue-kind -> profile table",
    "repro/core/twin/scoping.py:SCOPING_STRATEGIES": "strategy registry",
    "repro/emulation/image.py:_DEFAULTS": "image default attributes",
    "repro/experiments/bench_dataplane.py:NETWORKS": "network builders",
    "repro/experiments/bench_rollout.py:_EXTRA_STEPS":
        "per-network benign rider scripts (frozen FixStep tuples)",
    "repro/experiments/fig7.py:PAPER_FIG7": "published figure data",
    "repro/experiments/fig7.py:_BUILDERS": "network builders",
    "repro/experiments/fig89.py:PAPER_FIG89": "published figure data",
    "repro/experiments/fig89.py:_BUILDERS": "network builders",
    "repro/experiments/latency.py:PAPER_X1": "published figure data",
    "repro/experiments/table1.py:PAPER_TABLE1": "published table data",
    "repro/faults/chaos.py:_BUILDERS": "network builders",
    "repro/faults/chaos.py:_CANARY_EXTRA":
        "per-network benign rider scripts (frozen FixStep tuples)",
    "repro/policy/model.py:_KINDS": "policy-kind registry",
    "repro/scenarios/files.py:_SENSITIVE_FILES": "fixture file list",
}

# Dunder module metadata (__all__ et al.) is conventionally a literal list
# and never mutated; flagging it would be noise.
IGNORED_NAMES = {"__all__"}


def _is_mutable_container(node):
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in MUTABLE_CALLS
    return False


def _module_level_mutables():
    found = {}
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text())
        rel = path.relative_to(SRC.parent).as_posix()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                names = [
                    target.id for target in node.targets
                    if isinstance(target, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name) and node.value is not None:
                names = [node.target.id]
                value = node.value
            else:
                continue
            if not _is_mutable_container(value):
                continue
            for name in names:
                if name in IGNORED_NAMES:
                    continue
                found[f"{rel}:{name}"] = node.lineno
    return found


def test_module_level_mutable_state_is_allowlisted():
    found = _module_level_mutables()
    offenders = sorted(set(found) - set(ALLOWED))
    assert not offenders, (
        "module-level mutable containers outside the allowlist "
        "(wrap in a locked class, or add here with a justification):\n"
        + "\n".join(f"{key} (line {found[key]})" for key in offenders)
    )


def test_allowlist_carries_no_stale_entries():
    found = _module_level_mutables()
    stale = sorted(set(ALLOWED) - set(found))
    assert not stale, f"allowlist entries no longer in src/: {stale}"
