"""Lint: randomness is reachable only through ``repro.util.rand``.

docs/ROBUSTNESS.md: chaos campaigns replay from a single seed, so every
random draw — fault triggers, backoff jitter — must come from the one
seeded gateway. This test greps the source tree for direct ``random`` /
``secrets`` use anywhere else, the same pattern as the wall-clock lint in
``test_no_wallclock.py``.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
SANCTIONED = SRC / "util" / "rand.py"

FORBIDDEN = (
    re.compile(r"^\s*(?:import random\b|from random import\b)", re.MULTILINE),
    re.compile(r"^\s*(?:import secrets\b|from secrets import\b)", re.MULTILINE),
    re.compile(r"\brandom\.(?:random|randint|randrange|choice|shuffle|"
               r"uniform|sample|seed|Random)\s*\("),
    re.compile(r"\bsecrets\.(?:token_bytes|token_hex|token_urlsafe|"
               r"randbelow|choice)\s*\("),
)


def test_no_direct_random_outside_gateway():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path == SANCTIONED:
            continue
        text = path.read_text()
        for pattern in FORBIDDEN:
            for match in pattern.finditer(text):
                line = text.count("\n", 0, match.start()) + 1
                offenders.append(
                    f"{path.relative_to(SRC.parent)}:{line}: "
                    f"{match.group(0).strip()}"
                )
    assert not offenders, (
        "direct random/secrets use outside repro/util/rand.py "
        "(use repro.util.rand.seed / rng / derive):\n"
        + "\n".join(offenders)
    )


def test_gateway_exists_and_is_deterministic():
    from repro.util import rand

    rand.seed(1234)
    first = [rand.derive("stream").random() for _ in range(3)]
    rand.seed(1234)
    second = [rand.derive("stream").random() for _ in range(3)]
    assert first == second
    rand.reset()
