import pytest

from repro.util.clock import CostModel, SimulatedClock, StepTimer


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_breakdown_attributes_costs_per_step(self):
        clock = SimulatedClock()
        clock.advance(2.0, step="connect")
        clock.advance(3.0, step="operate")
        clock.advance(1.0, step="connect")
        assert clock.breakdown() == {"connect": 3.0, "operate": 3.0}

    def test_breakdown_preserves_first_charge_order(self):
        clock = SimulatedClock()
        clock.advance(1.0, step="b")
        clock.advance(1.0, step="a")
        clock.advance(1.0, step="b")
        assert list(clock.breakdown()) == ["b", "a"]

    def test_unattributed_advance_not_in_breakdown(self):
        clock = SimulatedClock()
        clock.advance(5.0)
        assert clock.breakdown() == {}
        assert clock.now == 5.0

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(5.0, step="x")
        clock.reset()
        assert clock.now == 0.0
        assert clock.breakdown() == {}


class TestStepTimer:
    def test_charges_on_exit(self):
        clock = SimulatedClock()
        with StepTimer(clock, "connect", 2.0):
            assert clock.now == 0.0
        assert clock.now == 2.0
        assert clock.breakdown() == {"connect": 2.0}

    def test_charges_even_on_exception(self):
        clock = SimulatedClock()
        with pytest.raises(RuntimeError):
            with StepTimer(clock, "operate", 1.0):
                raise RuntimeError("boom")
        assert clock.now == 1.0


class TestCostModel:
    def test_twin_boot_scales_with_node_count(self):
        model = CostModel(twin_boot_base_s=4.0, twin_boot_per_node_s=1.0)
        assert model.twin_boot_s(0) == 4.0
        assert model.twin_boot_s(10) == 14.0

    def test_verify_cost_matches_paper_calibration(self):
        # Paper: ~25 seconds to check 175 constraints.
        model = CostModel()
        assert model.verify_s(175) == pytest.approx(25.0)

    def test_verify_cost_linear(self):
        model = CostModel()
        assert model.verify_s(350) == pytest.approx(2 * model.verify_s(175))
