import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.routes import ADMIN_DISTANCE, Route, select_best_routes


def route(prefix, protocol="static", metric=0, next_hop="10.0.0.1", distance=None):
    return Route(
        prefix=ipaddress.IPv4Network(prefix),
        protocol=protocol,
        out_interface="Gi0/0",
        next_hop=ipaddress.IPv4Address(next_hop),
        metric=metric,
        distance=distance,
    )


class TestRoute:
    def test_default_distance_from_protocol(self):
        assert route("10.0.0.0/24", "ospf").distance == 110
        assert route("10.0.0.0/24", "static").distance == 1

    def test_explicit_distance_wins(self):
        assert route("10.0.0.0/24", "static", distance=200).distance == 200

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            route("10.0.0.0/24", "rip")

    def test_str_is_informative(self):
        text = str(route("10.0.0.0/24", "ospf", metric=20))
        assert "10.0.0.0/24" in text and "110" in text


class TestSelection:
    def test_lower_distance_wins(self):
        static = route("10.0.0.0/24", "static")
        ospf = route("10.0.0.0/24", "ospf")
        assert select_best_routes([ospf, static]) == [static]

    def test_lower_metric_breaks_distance_tie(self):
        slow = route("10.0.0.0/24", "ospf", metric=30)
        fast = route("10.0.0.0/24", "ospf", metric=10, next_hop="10.0.0.9")
        assert select_best_routes([slow, fast]) == [fast]

    def test_distinct_prefixes_all_kept(self):
        routes = [route("10.0.0.0/24"), route("10.0.1.0/24")]
        assert len(select_best_routes(routes)) == 2

    def test_deterministic_next_hop_tiebreak(self):
        a = route("10.0.0.0/24", "ospf", metric=10, next_hop="10.0.0.2")
        b = route("10.0.0.0/24", "ospf", metric=10, next_hop="10.0.0.1")
        assert select_best_routes([a, b]) == [b]
        assert select_best_routes([b, a]) == [b]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(list(ADMIN_DISTANCE)),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_selection_returns_minimum(self, specs):
        candidates = [
            route("10.0.0.0/24", protocol, metric=metric)
            for protocol, metric in specs
        ]
        (winner,) = select_best_routes(candidates)
        assert winner.sort_key() == min(c.sort_key() for c in candidates)
