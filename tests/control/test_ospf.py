import ipaddress

from repro.config.model import StaticRoute
from repro.control.builder import build_dataplane
from repro.control.l2 import compute_segments
from repro.control.ospf import compute_ospf_routes

from tests.fixtures import square_network


def net(prefix):
    return ipaddress.IPv4Network(prefix)


class TestAdjacency:
    def test_ring_forms_eight_adjacency_records(self):
        network = square_network()
        segments = compute_segments(network)
        result = compute_ospf_routes(network, segments)
        # 4 links x 2 directions.
        assert len(result.neighbors) == 8

    def test_neighbors_of(self):
        network = square_network()
        result = compute_ospf_routes(network, compute_segments(network))
        peers = {n.remote_device for n in result.neighbors_of("r1")}
        assert peers == {"r2", "r4"}

    def test_passive_interface_forms_no_adjacency(self):
        network = square_network()
        # Host-facing interfaces are passive; make a core one passive too.
        network.config("r1").ospf.passive_interfaces.add("Gi0/0")
        network.config("r2").ospf.passive_interfaces.add("Gi0/0")
        result = compute_ospf_routes(network, compute_segments(network))
        pairs = {(n.local_device, n.remote_device) for n in result.neighbors}
        assert ("r1", "r2") not in pairs

    def test_shutdown_interface_breaks_adjacency(self):
        network = square_network()
        network.config("r1").interface("Gi0/0").shutdown = True
        result = compute_ospf_routes(network, compute_segments(network))
        pairs = {(n.local_device, n.remote_device) for n in result.neighbors}
        assert ("r1", "r2") not in pairs
        assert ("r1", "r4") in pairs

    def test_subnet_mismatch_breaks_adjacency(self):
        network = square_network()
        network.config("r1").interface("Gi0/0").address = (
            ipaddress.IPv4Interface("10.0.99.1/24")
        )
        result = compute_ospf_routes(network, compute_segments(network))
        pairs = {(n.local_device, n.remote_device) for n in result.neighbors}
        assert ("r1", "r2") not in pairs

    def test_network_statement_gap_breaks_adjacency(self):
        network = square_network()
        ospf = network.config("r1").ospf
        ospf.networks = [
            statement
            for statement in ospf.networks
            if statement.prefix != net("10.0.12.0/24")
        ]
        result = compute_ospf_routes(network, compute_segments(network))
        pairs = {(n.local_device, n.remote_device) for n in result.neighbors}
        assert ("r1", "r2") not in pairs

    def test_area_mismatch_breaks_adjacency(self):
        network = square_network()
        ospf = network.config("r1").ospf
        ospf.networks = [
            type(s)(prefix=s.prefix, area=5)
            if s.prefix == net("10.0.12.0/24")
            else s
            for s in ospf.networks
        ]
        result = compute_ospf_routes(network, compute_segments(network))
        pairs = {(n.local_device, n.remote_device) for n in result.neighbors}
        assert ("r1", "r2") not in pairs


class TestRoutes:
    def test_learns_remote_lans(self):
        network = square_network()
        result = compute_ospf_routes(network, compute_segments(network))
        prefixes = {r.prefix for r in result.routes_by_device["r1"]}
        assert net("10.2.2.0/24") in prefixes
        assert net("10.3.3.0/24") in prefixes
        assert net("10.0.23.0/24") in prefixes

    def test_own_prefixes_not_learned(self):
        network = square_network()
        result = compute_ospf_routes(network, compute_segments(network))
        prefixes = {r.prefix for r in result.routes_by_device["r1"]}
        assert net("10.1.1.0/24") not in prefixes
        assert net("10.0.12.0/24") not in prefixes

    def test_shortest_path_chosen(self):
        network = square_network()
        result = compute_ospf_routes(network, compute_segments(network))
        # r1 -> h3 LAN: r1-r2-r3 and r1-r4-r3 both cost 2 hops + stub;
        # deterministic tie-break must pick one consistently.
        route = next(
            r
            for r in result.routes_by_device["r1"]
            if r.prefix == net("10.3.3.0/24")
        )
        assert route.out_interface in ("Gi0/0", "Gi0/1")
        assert route.metric == 3  # two transit hops + stub interface cost

    def test_cost_steers_path(self):
        network = square_network()
        # Make r1->r2 expensive: traffic to h2's LAN should go via r4, r3.
        network.config("r1").interface("Gi0/0").ospf_cost = 100
        result = compute_ospf_routes(network, compute_segments(network))
        route = next(
            r
            for r in result.routes_by_device["r1"]
            if r.prefix == net("10.2.2.0/24")
        )
        assert route.out_interface == "Gi0/1"  # toward r4
        assert route.metric == 4

    def test_default_information_originate(self):
        network = square_network()
        network.config("r2").ospf.default_information_originate = True
        result = compute_ospf_routes(network, compute_segments(network))
        prefixes = {r.prefix for r in result.routes_by_device["r4"]}
        assert net("0.0.0.0/0") in prefixes

    def test_router_without_ospf_gets_no_routes(self):
        network = square_network()
        network.config("r4").ospf = None
        result = compute_ospf_routes(network, compute_segments(network))
        assert result.routes_by_device["r4"] == []


class TestBuilderIntegration:
    def test_dataplane_fib_prefers_connected(self):
        network = square_network()
        dataplane = build_dataplane(network)
        route = dataplane.fib("r1").lookup(ipaddress.IPv4Address("10.0.12.2"))
        assert route.protocol == "connected"

    def test_dataplane_fib_has_ospf_routes(self):
        network = square_network()
        dataplane = build_dataplane(network)
        route = dataplane.fib("r1").lookup(ipaddress.IPv4Address("10.3.3.100"))
        assert route.protocol == "ospf"

    def test_host_default_route(self):
        network = square_network()
        dataplane = build_dataplane(network)
        route = dataplane.fib("h1").lookup(ipaddress.IPv4Address("8.8.8.8"))
        assert route is not None
        assert route.next_hop == ipaddress.IPv4Address("10.1.1.1")

    def test_switch_fib_empty(self):
        from tests.fixtures import switched_lan

        dataplane = build_dataplane(switched_lan())
        assert len(dataplane.fib("sw1")) == 0

    def test_static_route_with_dead_next_hop_not_installed(self):
        network = square_network()
        network.config("r1").static_routes.append(
            StaticRoute(
                prefix=net("172.16.0.0/16"),
                next_hop=ipaddress.IPv4Address("192.0.2.1"),
            )
        )
        dataplane = build_dataplane(network)
        assert dataplane.fib("r1").lookup(ipaddress.IPv4Address("172.16.0.1")) is None
