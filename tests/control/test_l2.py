from repro.control.l2 import compute_segments

from tests.fixtures import square_network, switched_lan


class TestPointToPointSegments:
    def test_each_link_is_a_segment(self):
        network = square_network()
        segments = compute_segments(network)
        # 4 router-router links + 4 router-host links = 8 segments.
        assert len(segments) == 8

    def test_link_endpoints_share_segment(self):
        segments = compute_segments(square_network())
        assert segments.same_segment(("r1", "Gi0/0"), ("r2", "Gi0/0"))
        assert not segments.same_segment(("r1", "Gi0/0"), ("r3", "Gi0/0"))

    def test_host_attaches_to_router(self):
        segments = compute_segments(square_network())
        assert segments.same_segment(("h1", "eth0"), ("r1", "Gi0/2"))

    def test_shutdown_interface_leaves_segment(self):
        network = square_network()
        network.config("r1").interface("Gi0/0").shutdown = True
        segments = compute_segments(network)
        assert segments.segment_of("r1", "Gi0/0") is None
        # The far end is now alone in its segment.
        assert segments.adjacent_endpoints("r2", "Gi0/0") == []

    def test_adjacent_endpoints(self):
        segments = compute_segments(square_network())
        assert segments.adjacent_endpoints("r1", "Gi0/0") == [("r2", "Gi0/0")]


class TestSwitchedSegments:
    def test_vlan10_spans_trunk(self):
        segments = compute_segments(switched_lan())
        assert segments.same_segment(("hA", "eth0"), ("hB", "eth0"))
        assert segments.same_segment(("hA", "eth0"), ("r1", "Gi0/0"))

    def test_vlan20_is_isolated_from_vlan10(self):
        segments = compute_segments(switched_lan())
        assert not segments.same_segment(("hC", "eth0"), ("hA", "eth0"))
        assert not segments.same_segment(("hC", "eth0"), ("r1", "Gi0/0"))

    def test_wrong_access_vlan_isolates_host(self):
        network = switched_lan()
        # The classic misconfiguration: hB's access port lands in VLAN 20.
        network.config("sw2").interface("Fa0/2").access_vlan = 20
        segments = compute_segments(network)
        assert not segments.same_segment(("hB", "eth0"), ("hA", "eth0"))
        # ... and now shares a domain with hC instead.
        assert segments.same_segment(("hB", "eth0"), ("hC", "eth0"))

    def test_trunk_pruning_breaks_vlan(self):
        network = switched_lan()
        network.config("sw1").interface("Fa0/24").trunk_vlans = (20,)
        segments = compute_segments(network)
        assert not segments.same_segment(("hA", "eth0"), ("hB", "eth0"))

    def test_shutdown_trunk_splits_lan(self):
        network = switched_lan()
        network.config("sw2").interface("Fa0/24").shutdown = True
        segments = compute_segments(network)
        assert not segments.same_segment(("hA", "eth0"), ("hB", "eth0"))
        assert segments.same_segment(("hA", "eth0"), ("r1", "Gi0/0"))

    def test_access_to_access_cross_connect(self):
        # Two switches cabled via access ports in different VLANs splice
        # those VLANs (untagged frames cross).
        network = switched_lan()
        sw1_port = network.config("sw1").interface("Fa0/24")
        sw2_port = network.config("sw2").interface("Fa0/24")
        sw1_port.switchport_mode = "access"
        sw1_port.access_vlan = 10
        sw1_port.trunk_vlans = None
        sw2_port.switchport_mode = "access"
        sw2_port.access_vlan = 20
        sw2_port.trunk_vlans = None
        segments = compute_segments(network)
        assert segments.same_segment(("hA", "eth0"), ("hC", "eth0"))
        assert not segments.same_segment(("hA", "eth0"), ("hB", "eth0"))


class TestSegmentQueries:
    def test_segment_devices_sorted(self):
        segments = compute_segments(switched_lan())
        segment = segments.segment_of("hA", "eth0")
        assert segment.devices() == ["hA", "hB", "r1"]

    def test_contains(self):
        segments = compute_segments(switched_lan())
        segment = segments.segment_of("hA", "eth0")
        assert ("hB", "eth0") in segment
        assert ("hC", "eth0") not in segment
