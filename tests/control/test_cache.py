"""Snapshot fingerprinting and the process-wide compile cache."""

import pytest

from repro.control.builder import build_dataplane
from repro.control.cache import (
    CompiledDataplane,
    DataplaneCache,
    clear_dataplane_cache,
    dataplane_cache,
    snapshot_fingerprint,
)
from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()


class TestSnapshotFingerprint:
    def test_deterministic_across_equal_networks(self):
        fp_a, topo_a, devices_a = snapshot_fingerprint(square_network())
        fp_b, topo_b, devices_b = snapshot_fingerprint(square_network())
        assert fp_a == fp_b
        assert topo_a == topo_b
        assert devices_a == devices_b

    def test_copy_preserves_fingerprint(self):
        network = square_network()
        assert snapshot_fingerprint(network.copy())[0] == \
            snapshot_fingerprint(network)[0]

    def test_config_edit_changes_only_that_device(self):
        network = square_network()
        fp_before, _, devices_before = snapshot_fingerprint(network)
        network.config("r1").interface("Gi0/2").shutdown = True
        fp_after, _, devices_after = snapshot_fingerprint(network)
        assert fp_after != fp_before
        assert devices_after["r1"] != devices_before["r1"]
        unchanged = set(devices_before) - {"r1"}
        assert all(
            devices_after[name] == devices_before[name] for name in unchanged
        )

    def test_covers_every_device(self):
        network = square_network()
        _, _, device_fps = snapshot_fingerprint(network)
        assert set(device_fps) == set(network.configs)


class TestDataplaneCache:
    def _entry(self, tag):
        return CompiledDataplane(
            fingerprint=tag, topology_fingerprint="t",
            device_fingerprints={}, segments=None, fibs={}, ospf=None,
            bgp=None,
        )

    def test_get_put_roundtrip(self):
        cache = DataplaneCache(maxsize=4)
        entry = self._entry("a")
        cache.put("a", entry)
        assert cache.get("a") is entry
        assert "a" in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = DataplaneCache(maxsize=2)
        cache.put("a", self._entry("a"))
        cache.put("b", self._entry("b"))
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", self._entry("c"))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_stats_track_hits_and_misses(self):
        cache = DataplaneCache(maxsize=2)
        cache.put("a", self._entry("a"))
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_discard_and_clear(self):
        cache = DataplaneCache(maxsize=4)
        cache.put("a", self._entry("a"))
        cache.put("b", self._entry("b"))
        cache.discard("a")
        assert "a" not in cache
        cache.clear()
        assert len(cache) == 0


class TestBuildDataplaneCache:
    def test_cache_hit_shares_artifacts(self):
        network = square_network()
        first = build_dataplane(network)
        second = build_dataplane(network)
        assert second.fingerprint == first.fingerprint
        assert second.segments is first.segments
        for device in network.configs:
            assert second.fib(device) is first.fib(device)
        assert second.trace_cache is first.trace_cache

    def test_cache_hit_rebinds_to_caller_network(self):
        # An equal-content but distinct Network must get a plane bound to
        # *its* object, not the one that populated the cache.
        network_a = square_network()
        network_b = square_network()
        build_dataplane(network_a)
        plane_b = build_dataplane(network_b)
        assert plane_b.network is network_b

    def test_use_cache_false_bypasses_cache(self):
        network = square_network()
        build_dataplane(network, use_cache=False)
        assert len(dataplane_cache()) == 0

    def test_mutation_changes_fingerprint(self):
        network = square_network()
        before = build_dataplane(network)
        network.config("r3").acls.pop("PROTECT_H3")
        network.config("r3").interface("Gi0/2").access_group_out = None
        after = build_dataplane(network)
        assert after.fingerprint != before.fingerprint
        assert len(dataplane_cache()) == 2

    def test_plane_without_cache_still_traces(self):
        network = square_network()
        plane = build_dataplane(network, use_cache=False)
        assert plane.fingerprint is not None
        assert plane.fib("r1").lookup(network.host_address("h3")) is not None


class TestDerivedFingerprint:
    def test_copy_except_shares_and_isolates(self):
        network = square_network()
        copied = network.copy_except({"r1"})
        assert copied.config("r1") is not network.config("r1")
        assert copied.config("r2") is network.config("r2")
        copied.config("r1").interface("Gi0/2").shutdown = True
        assert not network.config("r1").interface("Gi0/2").shutdown

    def test_same_except_matches_full_fingerprint(self):
        # The enforcer's shortcut (re-hash only the devices it edited) must
        # land on exactly the fingerprint a full scan computes, or cache
        # keys would diverge between the two paths.
        network = square_network()
        baseline = build_dataplane(network, use_cache=False)
        candidate = network.copy_except({"r1"})
        candidate.config("r1").interface("Gi0/2").shutdown = True
        plane = build_dataplane(
            candidate, baseline=baseline, same_except={"r1"}, use_cache=False
        )
        assert plane.fingerprint == snapshot_fingerprint(candidate)[0]
        assert plane.device_fingerprints == snapshot_fingerprint(candidate)[2]
