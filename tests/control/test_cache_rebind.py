"""Regression: in-place config mutation must not poison the shared caches.

``build_dataplane`` rebinds compile-cache artifacts to the caller's Network
object, and equal-fingerprint planes share one trace cache. Forwarding reads
ACLs from the *live* configs, so a session that mutates its network in place
(without recompiling) computes traces that reflect state no other session
has — before this fix those traces were installed into the shared cache and
served, stale, to every equal-fingerprint analyzer in the process.
"""

import pytest

from repro import obs
from repro.config.diffing import diff_networks
from repro.control.builder import build_dataplane
from repro.control.cache import clear_dataplane_cache
from repro.core.enforcer.verifier import ChangeVerifier
from repro.dataplane.plane import DataPlane
from repro.dataplane.reachability import ReachabilityAnalyzer, host_flow
from tests.fixtures import square_network


@pytest.fixture(autouse=True)
def _clean_state():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()
    obs.disable()
    obs.reset()


def _drop_acl(network):
    """Mutate in place: open h2 -> h3, which the compiled plane denies."""
    network.config("r3").acls.pop("PROTECT_H3")
    network.config("r3").interface("Gi0/2").access_group_out = None


class TestRebindDriftGuard:
    def test_drifted_trace_stays_out_of_the_shared_cache(self):
        network_a = square_network()
        plane_a = build_dataplane(network_a)
        network_b = square_network()
        plane_b = build_dataplane(network_b)
        assert plane_b.trace_cache is plane_a.trace_cache

        _drop_acl(network_b)
        flow = host_flow(network_b, "h2", "h3")
        trace = ReachabilityAnalyzer(plane_b).trace(flow, start_device="h2")
        # The mutating session still gets its own (live-config) answer ...
        assert trace.success
        # ... but the shared cache never sees it: session A's analyzer
        # re-traces against the clean configs and keeps the denial.
        assert (flow, "h2") not in plane_a.trace_cache
        assert ReachabilityAnalyzer(plane_a).hosts_reachable(
            "h2", "h3") is False

    def test_drift_is_counted(self):
        network_a = square_network()
        build_dataplane(network_a)
        network_b = square_network()
        plane_b = build_dataplane(network_b)
        _drop_acl(network_b)
        obs.reset()
        obs.enable()
        try:
            ReachabilityAnalyzer(plane_b).hosts_reachable("h2", "h3")
        finally:
            obs.disable()
        assert obs.registry().get("dataplane.trace.drift").value == 1

    def test_intact_bindings_still_share_traces(self):
        network_a = square_network()
        plane_a = build_dataplane(network_a)
        network_b = square_network()
        plane_b = build_dataplane(network_b)
        flow = host_flow(network_b, "h2", "h3")
        trace = ReachabilityAnalyzer(plane_b).trace(flow, start_device="h2")
        assert plane_a.trace_cache[(flow, "h2")] is trace

    def test_restored_config_traces_normally_on_a_fresh_plane(self):
        network_a = square_network()
        build_dataplane(network_a)
        network_b = square_network()
        plane_b = build_dataplane(network_b)
        acl = network_b.config("r3").acls.pop("PROTECT_H3")
        network_b.config("r3").interface("Gi0/2").access_group_out = None
        ReachabilityAnalyzer(plane_b).hosts_reachable("h2", "h3")

        # Undo the drift; a freshly rebound plane (binding memos are
        # per-plane) matches the artifacts again and shares traces.
        network_b.config("r3").acls["PROTECT_H3"] = acl
        network_b.config("r3").interface("Gi0/2").access_group_out = (
            "PROTECT_H3"
        )
        plane_c = build_dataplane(network_b)
        assert plane_c.binding_intact(set(network_b.configs))
        analyzer = ReachabilityAnalyzer(plane_c)
        assert analyzer.hosts_reachable("h2", "h3") is False
        flow = host_flow(network_b, "h2", "h3")
        assert (flow, "h2") in plane_c.trace_cache


class TestBindingAssertion:
    """An owner that promises no in-place mutation skips the re-hash guard.

    The guard costs one config serialize + hash per device per traced path
    per plane — ~10% of an incremental ``ChangeVerifier.verify`` — so the
    enforcer, which owns its planes for the duration of a pass, asserts
    instead of re-proving what the compile just fingerprinted.
    """

    def test_asserted_plane_installs_shared_traces_without_hashing(
        self, monkeypatch
    ):
        network = square_network()
        plane = build_dataplane(network)
        plane.assert_binding_intact()

        def boom(config):
            raise AssertionError("drift guard re-hashed an asserted plane")

        monkeypatch.setattr("repro.control.cache.config_fingerprint", boom)
        flow = host_flow(network, "h2", "h3")
        ReachabilityAnalyzer(plane).trace(flow, start_device="h2")
        assert (flow, "h2") in plane.trace_cache

    def test_enforcer_verify_asserts_every_shared_plane(self, monkeypatch):
        """Each shared-cache install inside verify() short-circuits the guard."""
        consulted = []
        original = DataPlane.binding_intact

        def spy(self, devices):
            consulted.append(self._binding_asserted)
            return original(self, devices)

        monkeypatch.setattr(DataPlane, "binding_intact", spy)
        production = square_network()
        modified = production.copy()
        modified.config("r1").interface("Gi0/0").description = "updated"
        changes = diff_networks(production.configs, modified.configs)
        verifier = ChangeVerifier(_policies())
        decision = verifier.verify(production, changes)
        assert decision.approved
        assert consulted, "expected shared-cache trace installs"
        assert all(consulted)

    def test_unasserted_analyzers_still_guarded(self):
        network_a = square_network()
        plane_a = build_dataplane(network_a)
        network_b = square_network()
        plane_b = build_dataplane(network_b)
        _drop_acl(network_b)
        flow = host_flow(network_b, "h2", "h3")
        ReachabilityAnalyzer(plane_b).trace(flow, start_device="h2")
        assert (flow, "h2") not in plane_a.trace_cache


def _policies():
    from repro.net.flow import Flow
    from repro.policy.model import ReachabilityPolicy

    return [
        ReachabilityPolicy(
            "reach:h1->h2", Flow.make("10.1.1.100", "10.2.2.100", "icmp")
        )
    ]
