"""eBGP tests: session establishment, propagation, and FIB integration.

Fixture: a three-AS chain with a stub LAN at each end and dual paths in the
middle::

    h-cust -- ce (AS 65001) ==== pe1 (AS 65010) ==== pe2 (AS 65010 via OSPF)
                                   \\                   |
                                    ===== px (AS 65020) ===== farside (AS 65030) -- h-far

Actually kept simpler below: ce(65001) -- pe(65010) -- far(65020), each
originating its LAN.
"""

import ipaddress

import pytest

from repro.control.builder import build_dataplane
from repro.control.bgp import compute_bgp_routes
from repro.control.l2 import compute_segments
from repro.dataplane.forwarding import Disposition, trace_flow
from repro.net.flow import Flow
from repro.scenarios.builder import NetworkBuilder


def bgp_chain():
    """ce (AS 65001) -- pe (AS 65010) -- far (AS 65020), one LAN each."""
    builder = NetworkBuilder("bgp-chain")
    builder.router("ce").router("pe").router("far")
    builder.host("h-cust").host("h-mid").host("h-far")

    builder.p2p("ce", "Gi0/0", "pe", "Gi0/0", "192.0.2.0/30")
    builder.p2p("pe", "Gi0/1", "far", "Gi0/0", "192.0.2.4/30")
    builder.attach_host("h-cust", "eth0", "ce", "Gi0/1", "10.10.0.0/24")
    builder.attach_host("h-mid", "eth0", "pe", "Gi0/2", "10.20.0.0/24")
    builder.attach_host("h-far", "eth0", "far", "Gi0/1", "10.30.0.0/24")

    builder.enable_bgp("ce", 65001,
                       neighbors=[("192.0.2.2", 65010)],
                       networks=["10.10.0.0/24"])
    builder.enable_bgp("pe", 65010,
                       neighbors=[("192.0.2.1", 65001), ("192.0.2.6", 65020)],
                       networks=["10.20.0.0/24"])
    builder.enable_bgp("far", 65020,
                       neighbors=[("192.0.2.5", 65010)],
                       networks=["10.30.0.0/24"])
    return builder.build()


@pytest.fixture
def chain():
    return bgp_chain()


def net(prefix):
    return ipaddress.IPv4Network(prefix)


class TestSessions:
    def test_sessions_establish_both_ways(self, chain):
        result = compute_bgp_routes(chain, compute_segments(chain))
        pairs = {(s.local_device, s.remote_device) for s in result.sessions}
        assert ("ce", "pe") in pairs and ("pe", "ce") in pairs
        assert ("pe", "far") in pairs and ("far", "pe") in pairs
        assert ("ce", "far") not in pairs  # not adjacent

    def test_as_mismatch_blocks_session(self, chain):
        chain.config("ce").bgp.neighbors[0] = type(
            chain.config("ce").bgp.neighbors[0]
        )(address=ipaddress.IPv4Address("192.0.2.2"), remote_as=64999)
        result = compute_bgp_routes(chain, compute_segments(chain))
        pairs = {(s.local_device, s.remote_device) for s in result.sessions}
        assert ("ce", "pe") not in pairs

    def test_interface_down_kills_session(self, chain):
        chain.config("pe").interface("Gi0/0").shutdown = True
        result = compute_bgp_routes(chain, compute_segments(chain))
        pairs = {(s.local_device, s.remote_device) for s in result.sessions}
        assert ("ce", "pe") not in pairs
        assert ("pe", "far") in pairs

    def test_one_sided_config_is_no_session(self, chain):
        chain.config("pe").bgp.neighbors = [
            n for n in chain.config("pe").bgp.neighbors
            if str(n.address) != "192.0.2.1"
        ]
        result = compute_bgp_routes(chain, compute_segments(chain))
        pairs = {(s.local_device, s.remote_device) for s in result.sessions}
        assert ("ce", "pe") not in pairs and ("pe", "ce") not in pairs


class TestPropagation:
    def test_transitive_learning_with_as_paths(self, chain):
        result = compute_bgp_routes(chain, compute_segments(chain))
        ce_routes = {r.prefix: r for r in result.routes_by_device["ce"]}
        assert net("10.20.0.0/24") in ce_routes
        assert net("10.30.0.0/24") in ce_routes
        assert result.as_paths[("ce", net("10.20.0.0/24"))] == (65010,)
        assert result.as_paths[("ce", net("10.30.0.0/24"))] == (65010, 65020)

    def test_metric_is_as_path_length(self, chain):
        result = compute_bgp_routes(chain, compute_segments(chain))
        ce_routes = {r.prefix: r for r in result.routes_by_device["ce"]}
        assert ce_routes[net("10.20.0.0/24")].metric == 1
        assert ce_routes[net("10.30.0.0/24")].metric == 2

    def test_unbacked_network_statement_not_originated(self, chain):
        chain.config("far").bgp.networks.append(net("172.31.0.0/16"))
        result = compute_bgp_routes(chain, compute_segments(chain))
        ce_prefixes = {r.prefix for r in result.routes_by_device["ce"]}
        assert net("172.31.0.0/16") not in ce_prefixes

    def test_static_backed_statement_originated(self, chain):
        from repro.config.model import StaticRoute

        chain.config("far").static_routes.append(
            StaticRoute(prefix=net("172.31.0.0/16"),
                        next_hop=ipaddress.IPv4Address("10.30.0.1"))
        )
        chain.config("far").bgp.networks.append(net("172.31.0.0/16"))
        result = compute_bgp_routes(chain, compute_segments(chain))
        ce_prefixes = {r.prefix for r in result.routes_by_device["ce"]}
        assert net("172.31.0.0/16") in ce_prefixes

    def test_no_speakers_is_empty(self):
        builder = NetworkBuilder("plain")
        builder.router("r1")
        network = builder.build()
        result = compute_bgp_routes(network, compute_segments(network))
        assert result.sessions == []
        assert result.routes_by_device == {}


class TestEndToEnd:
    def test_host_reachability_across_three_ases(self, chain):
        dataplane = build_dataplane(chain)
        trace = trace_flow(
            dataplane,
            Flow.make("10.10.0.100", "10.30.0.100", "icmp"),
            start_device="h-cust",
        )
        assert trace.disposition is Disposition.DELIVERED
        assert trace.path() == ["h-cust", "ce", "pe", "far", "h-far"]

    def test_ebgp_preferred_over_ospf(self, chain):
        # Same prefix learned via both protocols: eBGP's AD 20 wins.
        from repro.config.model import OspfConfig, OspfNetwork

        for router in ("ce", "pe"):
            config = chain.config(router)
            config.ospf = OspfConfig(process_id=1)
            for iface in config.routed_interfaces():
                config.ospf.networks.append(
                    OspfNetwork(prefix=iface.address.network)
                )
        dataplane = build_dataplane(chain)
        route = dataplane.fib("ce").lookup(
            ipaddress.IPv4Address("10.20.0.100")
        )
        assert route.protocol == "bgp"
        assert route.distance == 20

    def test_session_loss_withdraws_routes(self, chain):
        chain.config("far").interface("Gi0/0").shutdown = True
        dataplane = build_dataplane(chain)
        assert dataplane.fib("ce").lookup(
            ipaddress.IPv4Address("10.30.0.100")
        ) is None


class TestConsoleIntegration:
    def test_configure_bgp_via_console(self, chain):
        from repro.emulation.network import EmulatedNetwork

        emnet = EmulatedNetwork(chain)
        console = emnet.console("ce")
        for command in (
            "configure terminal",
            "router bgp 65001",
            "network 10.10.0.0 mask 255.255.255.0",
            "neighbor 192.0.2.2 remote-as 65010",
            "end",
        ):
            result = console.execute(command)
            assert result.ok, (command, result.error)
        summary = console.execute("show ip bgp summary")
        assert "Established" in summary.output

    def test_wrong_asn_reenter_rejected(self, chain):
        from repro.emulation.network import EmulatedNetwork

        emnet = EmulatedNetwork(chain)
        console = emnet.console("ce")
        console.execute("configure terminal")
        result = console.execute("router bgp 99")
        assert not result.ok

    def test_session_teardown_visible_in_summary(self, chain):
        from repro.emulation.network import EmulatedNetwork

        emnet = EmulatedNetwork(chain)
        console = emnet.console("ce")
        for command in ("configure terminal", "interface Gi0/0",
                        "shutdown", "end"):
            console.execute(command)
        summary = console.execute("show ip bgp summary")
        assert "Active" in summary.output
        assert "Established" not in summary.output

    def test_bgp_config_survives_serialization(self, chain):
        from repro.config.parser import parse_config
        from repro.config.serializer import serialize_config

        config = chain.config("pe")
        text = serialize_config(config)
        assert "router bgp 65010" in text
        assert "neighbor 192.0.2.1 remote-as 65001" in text
        assert parse_config(text) == config
