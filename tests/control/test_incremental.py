"""Incremental rebuild equivalence: byte-identical to a from-scratch compile.

For every scenario network and every standard issue, the incremental
compile (baseline + changed-device hint) must produce exactly the FIBs,
segment structure, and traces of a cold full compile of the same snapshot.
"""

import pytest

from repro.control.builder import build_dataplane
from repro.control.cache import clear_dataplane_cache
from repro.dataplane.differential import default_probe_flows
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network

SCENARIOS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}

CASES = [
    (scenario, issue_id)
    for scenario in sorted(SCENARIOS)
    for issue_id in standard_issues(scenario)
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()


def _broken_pair(scenario, issue_id):
    """(pristine baseline plane, broken network, issue) for one case."""
    network = SCENARIOS[scenario]()
    issue = standard_issues(scenario)[issue_id]
    baseline = build_dataplane(network, use_cache=False)
    broken = network.copy()
    issue.inject(broken)
    return baseline, broken, issue


def _segment_structure(segments):
    return {segment.endpoints for segment in segments}


@pytest.mark.parametrize("scenario,issue_id", CASES)
def test_incremental_matches_from_scratch(scenario, issue_id):
    baseline, broken, issue = _broken_pair(scenario, issue_id)
    incremental = build_dataplane(
        broken, baseline=baseline,
        changed_devices={issue.root_cause_device}, use_cache=False,
    )
    scratch = build_dataplane(broken, use_cache=False)

    assert incremental.fingerprint == scratch.fingerprint
    assert incremental.device_fingerprints == scratch.device_fingerprints

    for device in broken.configs:
        assert list(incremental.fib(device)) == list(scratch.fib(device)), (
            f"{scenario}/{issue_id}: FIB mismatch on {device}"
        )
    assert _segment_structure(incremental.segments) == _segment_structure(
        scratch.segments
    )

    probes = default_probe_flows(broken)
    analyzer_inc = ReachabilityAnalyzer(incremental)
    analyzer_scratch = ReachabilityAnalyzer(scratch)
    for start, flow in probes:
        trace_inc = analyzer_inc.trace(flow, start_device=start)
        trace_scratch = analyzer_scratch.trace(flow, start_device=start)
        assert trace_inc.disposition == trace_scratch.disposition, (
            f"{scenario}/{issue_id}: {flow} disposition diverged"
        )
        assert trace_inc.path() == trace_scratch.path(), (
            f"{scenario}/{issue_id}: {flow} path diverged"
        )


@pytest.mark.parametrize("scenario,issue_id", CASES)
def test_incremental_without_hint_matches(scenario, issue_id):
    """The changed-device hint is an optimization, never a correctness input."""
    baseline, broken, _ = _broken_pair(scenario, issue_id)
    incremental = build_dataplane(broken, baseline=baseline, use_cache=False)
    scratch = build_dataplane(broken, use_cache=False)
    for device in broken.configs:
        assert list(incremental.fib(device)) == list(scratch.fib(device))


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_unchanged_snapshot_reuses_everything(scenario):
    network = SCENARIOS[scenario]()
    baseline = build_dataplane(network, use_cache=False)
    rebuilt = build_dataplane(
        network.copy(), baseline=baseline, use_cache=False
    )
    assert rebuilt.segments is baseline.segments
    for device in network.configs:
        assert rebuilt.fib(device) is baseline.fib(device)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_routing_only_change_shares_l2_artifacts(scenario):
    """An OSPF-stanza edit must not recompute the segment table."""
    baseline, broken, issue = _broken_pair(scenario, "ospf")
    incremental = build_dataplane(
        broken, baseline=baseline,
        changed_devices={issue.root_cause_device}, use_cache=False,
    )
    assert incremental.segments is baseline.segments


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_l2_change_recomputes_but_matches(scenario):
    """A VLAN issue rewires broadcast domains; the rebuilt table must match
    a from-scratch compile structurally."""
    baseline, broken, issue = _broken_pair(scenario, "vlan")
    incremental = build_dataplane(
        broken, baseline=baseline,
        changed_devices={issue.root_cause_device}, use_cache=False,
    )
    scratch = build_dataplane(broken, use_cache=False)
    assert incremental.segments is not baseline.segments
    assert _segment_structure(incremental.segments) == _segment_structure(
        scratch.segments
    )


def test_host_fibs_shared_for_remote_change():
    """Hosts far from the change keep their baseline Fib objects."""
    baseline, broken, issue = _broken_pair("enterprise", "ospf")
    incremental = build_dataplane(
        broken, baseline=baseline,
        changed_devices={issue.root_cause_device}, use_cache=False,
    )
    shared = [
        host for host in broken.hosts()
        if incremental.fib(host) is baseline.fib(host)
    ]
    assert shared, "no host FIB was reused for a single-router OSPF change"


def test_baseline_artifacts_not_mutated():
    baseline, broken, issue = _broken_pair("university", "ospf")
    before_routes = {
        device: list(baseline.fib(device)) for device in baseline.network.configs
    }
    build_dataplane(
        broken, baseline=baseline,
        changed_devices={issue.root_cause_device}, use_cache=False,
    )
    for device, routes in before_routes.items():
        assert list(baseline.fib(device)) == routes
