"""Sharded compile/verify: byte-identical to the monolithic pipeline.

The contract everything here enforces: sharding changes *scheduling*, never
*results*. Every test compares the sharded output — in-process, across a
real worker pool, and degraded by worker crashes — against
``build_dataplane(use_cache=False)`` and the serial policy verifier.
"""

import pytest

from repro import faults, obs
from repro.control.builder import build_dataplane
from repro.control.cache import (
    ShardedDataplaneCache,
    clear_dataplane_cache,
    sharded_dataplane_cache,
)
from repro.control.shard import (
    compile_shard_plan,
    effective_workers,
    sharded_compile,
    sharded_verify,
)
from repro.faults.registry import Rule
from repro.obs import registry
from repro.policy.verification import PolicyVerifier
from repro.scenarios.generate import generate_scenario

# Small on purpose: campus-80 has 8 routers, so shard_size=3 forces a
# multi-shard plan (and with workers=2, a real fork pool) at CI cost.
SHARD_SIZE = 3


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(shape="campus", size=80, seed=3)


@pytest.fixture(scope="module")
def monolithic(scenario):
    return build_dataplane(scenario.network, use_cache=False)


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    faults.disarm()
    obs.disable()
    obs.reset()


def assert_planes_identical(expected, actual):
    assert set(expected.network.configs) == set(actual.network.configs)
    assert expected.ospf.neighbors == actual.ospf.neighbors
    assert expected.ospf.routes_by_device == actual.ospf.routes_by_device
    for device in expected.network.configs:
        assert expected.fib(device).routes() == actual.fib(device).routes(), (
            device
        )


class TestShardPlan:
    def test_sources_partition_the_active_routers(self, scenario):
        plan = compile_shard_plan(scenario.network, shard_size=SHARD_SIZE)
        seen = []
        for shard in plan.shards:
            assert len(shard.sources) <= SHARD_SIZE
            assert shard.component == plan.component_of[shard.sources[0]]
            seen.extend(shard.sources)
        assert len(seen) == len(set(seen)), "router in two shards"
        assert set(seen) == set(plan.component_of)

    def test_small_shard_size_forces_multiple_shards(self, scenario):
        plan = compile_shard_plan(scenario.network, shard_size=SHARD_SIZE)
        assert len(plan.shards) >= 2

    def test_effective_workers(self):
        assert effective_workers(1) == 1
        assert effective_workers(4) == 4
        assert effective_workers(None) >= 1
        assert effective_workers(0) >= 1


class TestShardedCompileEquivalence:
    def test_in_process_path(self, scenario, monolithic):
        plane = sharded_compile(
            scenario.network, workers=1, shard_size=SHARD_SIZE,
            use_cache=False,
        )
        assert_planes_identical(monolithic, plane)

    def test_worker_pool_path(self, scenario, monolithic):
        plane = sharded_compile(
            scenario.network, workers=2, shard_size=SHARD_SIZE,
            use_cache=False,
        )
        assert_planes_identical(monolithic, plane)

    def test_default_shard_size_single_shard(self, scenario, monolithic):
        # 8 routers under the default shard size: one shard, pool bypassed.
        plane = sharded_compile(scenario.network, workers=2, use_cache=False)
        assert_planes_identical(monolithic, plane)


class TestCrashDegradation:
    def test_lost_shards_rerun_in_process(self, scenario, monolithic):
        obs.enable()
        degraded = registry().get("scale.shard.degraded")
        before = degraded.value
        faults.arm({"scale.shard.crash": Rule(nth=1, times=2)}, seed=7)
        plane = sharded_compile(
            scenario.network, workers=2, shard_size=SHARD_SIZE,
            use_cache=False,
        )
        assert degraded.value > before, "no shard took the degraded path"
        assert_planes_identical(monolithic, plane)

    def test_degraded_verify_matches_serial(self, scenario, monolithic):
        serial = PolicyVerifier(scenario.policies).verify_dataplane(monolithic)
        faults.arm({"scale.shard.crash": Rule(nth=1, times=1)}, seed=7)
        report = sharded_verify(scenario.policies, monolithic, workers=2)
        assert [r.policy.policy_id for r in report.results] == [
            r.policy.policy_id for r in serial.results
        ]
        assert [r.holds for r in report.results] == [
            r.holds for r in serial.results
        ]


class TestShardedVerify:
    def test_matches_serial_verifier(self, scenario, monolithic):
        serial = PolicyVerifier(scenario.policies).verify_dataplane(monolithic)
        report = sharded_verify(scenario.policies, monolithic, workers=2)
        assert [r.policy.policy_id for r in report.results] == [
            r.policy.policy_id for r in serial.results
        ]
        assert [r.holds for r in report.results] == [
            r.holds for r in serial.results
        ]

    def test_single_worker_serial_path(self, scenario, monolithic):
        serial = PolicyVerifier(scenario.policies).verify_dataplane(monolithic)
        report = sharded_verify(scenario.policies, monolithic, workers=1)
        assert [r.holds for r in report.results] == [
            r.holds for r in serial.results
        ]


class TestShardedCache:
    def test_hit_shares_artifacts(self, scenario):
        clear_dataplane_cache()
        p1 = sharded_compile(
            scenario.network, workers=1, shard_size=SHARD_SIZE,
        )
        p2 = sharded_compile(
            scenario.network, workers=1, shard_size=SHARD_SIZE,
        )
        assert p1.artifacts is p2.artifacts
        assert sharded_dataplane_cache().hits >= 1

    def test_stats_report_shards(self):
        cache = ShardedDataplaneCache(shards=4, maxsize=8)
        stats = cache.stats()
        assert stats["shards"] == 4
        assert len(cache) == 0

    def test_put_get_discard(self, scenario):
        cache = ShardedDataplaneCache(shards=4, maxsize=8)
        plane = sharded_compile(
            scenario.network, workers=1, shard_size=SHARD_SIZE,
            use_cache=False,
        )
        # Uncached compiles carry no fingerprint; key by hand.
        cache.put("a" * 64, plane.artifacts)
        assert "a" * 64 in cache
        assert cache.get("a" * 64) is plane.artifacts
        cache.discard("a" * 64)
        assert cache.get("a" * 64) is None
