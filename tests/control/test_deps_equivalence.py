"""Property-style equivalence: cone-scoped compiles are route-identical.

The invalidation cone (:mod:`repro.control.deps`) decides what an
incremental compile may skip; these tests prove the skipping is invisible.
For every scenario issue — and for seeded multi-change sequences that
chain incremental baselines — the cone-scoped compile must produce exactly
the FIBs, segment structure, and traces of a cold compile of the same
snapshot. The chaos case arms the ``dataplane.deps.overscope`` fault:
a deliberately widened cone recompiles everything and must still come out
identical (over-invalidation is always safe).
"""

import ipaddress
import random

import pytest

from repro import faults, obs
from repro.config.diffing import diff_networks
from repro.config.model import StaticRoute
from repro.control import deps
from repro.control.builder import build_dataplane
from repro.control.cache import clear_dataplane_cache
from repro.dataplane.differential import default_probe_flows
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.faults.registry import Rule
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network

from tests.fixtures import square_network

SCENARIOS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}

CASES = [
    (scenario, issue_id)
    for scenario in sorted(SCENARIOS)
    for issue_id in standard_issues(scenario)
]


@pytest.fixture(autouse=True)
def _clean_state():
    clear_dataplane_cache()
    yield
    clear_dataplane_cache()
    faults.disarm()
    obs.disable()
    obs.reset()


def _segment_structure(segments):
    return {segment.endpoints for segment in segments}


def _assert_planes_equivalent(incremental, scratch, label):
    assert incremental.fingerprint == scratch.fingerprint, label
    for device in scratch.network.configs:
        assert list(incremental.fib(device)) == list(scratch.fib(device)), (
            f"{label}: FIB mismatch on {device}"
        )
    assert _segment_structure(incremental.segments) == _segment_structure(
        scratch.segments
    ), label
    analyzer_inc = ReachabilityAnalyzer(incremental)
    analyzer_scratch = ReachabilityAnalyzer(scratch)
    for start, flow in default_probe_flows(scratch.network):
        trace_inc = analyzer_inc.trace(flow, start_device=start)
        trace_scratch = analyzer_scratch.trace(flow, start_device=start)
        assert trace_inc.disposition == trace_scratch.disposition, (
            f"{label}: {flow} disposition diverged"
        )
        assert trace_inc.path() == trace_scratch.path(), (
            f"{label}: {flow} path diverged"
        )


@pytest.mark.parametrize("scenario,issue_id", CASES)
def test_cone_scoped_compile_matches_cold(scenario, issue_id):
    network = SCENARIOS[scenario]()
    issue = standard_issues(scenario)[issue_id]
    baseline = build_dataplane(network, use_cache=False)
    broken = network.copy()
    issue.inject(broken)
    incremental = build_dataplane(
        broken, baseline=baseline, use_cache=False,
    )
    scratch = build_dataplane(broken, use_cache=False)
    _assert_planes_equivalent(incremental, scratch, f"{scenario}/{issue_id}")


# -- seeded multi-change sequences ---------------------------------------------


def _routed_interfaces(config):
    return [
        iface for iface in config.interfaces.values()
        if iface.address is not None
    ]


def _mutate_ospf_cost(rng, network):
    router = rng.choice(network.routers())
    ifaces = _routed_interfaces(network.config(router))
    if not ifaces:
        return None
    iface = rng.choice(ifaces)
    iface.ospf_cost = rng.randint(2, 20)
    return f"ospf_cost {router}/{iface.name}"


def _mutate_static_route(rng, network):
    router = rng.choice(network.routers())
    network.config(router).static_routes.append(StaticRoute(
        prefix=ipaddress.ip_network(f"10.{rng.randint(200, 250)}.0.0/24"),
        next_hop=ipaddress.ip_address(f"10.0.{rng.randint(1, 9)}.2"),
    ))
    return f"static_route {router}"


def _mutate_shutdown(rng, network):
    router = rng.choice(network.routers())
    ifaces = _routed_interfaces(network.config(router))
    if not ifaces:
        return None
    iface = rng.choice(ifaces)
    iface.shutdown = not iface.shutdown
    return f"shutdown {router}/{iface.name}"


def _mutate_ospf_network(rng, network):
    router = rng.choice(network.routers())
    ospf = network.config(router).ospf
    if ospf is None or len(ospf.networks) < 2:
        return None
    del ospf.networks[rng.randrange(len(ospf.networks))]
    return f"ospf_network {router}"


def _mutate_description(rng, network):
    device = rng.choice(sorted(network.configs))
    ifaces = list(network.config(device).interfaces.values())
    if not ifaces:
        return None
    rng.choice(ifaces).description = f"step-{rng.randint(0, 999)}"
    return f"description {device}"


MUTATIONS = (
    _mutate_ospf_cost,
    _mutate_static_route,
    _mutate_shutdown,
    _mutate_ospf_network,
    _mutate_description,
)


@pytest.mark.parametrize("seed", [7, 21, 1337])
def test_seeded_change_sequence_chains_incrementally(seed):
    """Each step compiles against the previous *incremental* plane.

    This is the enforcer's steady state: baselines are themselves products
    of incremental compiles, so retained SPF state and patched route lists
    must stay equivalent to cold across arbitrary chains, not just one hop.
    """
    rng = random.Random(seed)
    network = build_enterprise_network()
    baseline = build_dataplane(network, use_cache=False)
    steps = 0
    while steps < 5:
        mutate = rng.choice(MUTATIONS)
        current = baseline.network.copy()
        label = mutate(rng, current)
        if label is None:
            continue
        steps += 1
        incremental = build_dataplane(
            current, baseline=baseline, use_cache=False,
        )
        scratch = build_dataplane(current, use_cache=False)
        _assert_planes_equivalent(
            incremental, scratch, f"seed={seed} step={steps} ({label})"
        )
        baseline = incremental


# -- the overscope fault: over-invalidation is always safe ---------------------


def test_overscoped_cone_still_compiles_identically():
    obs.enable()
    network = SCENARIOS["university"]()
    issue = standard_issues("university")["ospf"]
    baseline = build_dataplane(network, use_cache=False)
    broken = network.copy()
    issue.inject(broken)
    faults.arm({"dataplane.deps.overscope": Rule(nth=1)}, seed=7)
    widened = build_dataplane(broken, baseline=baseline, use_cache=False)
    faults.disarm()
    scratch = build_dataplane(broken, use_cache=False)
    _assert_planes_equivalent(widened, scratch, "overscope")
    overscoped = obs.registry().get("dataplane.deps.overscoped")
    assert overscoped is not None and overscoped.value == 1


# -- wave cones (the rollout engine's view) ------------------------------------


def test_local_change_cone_stays_on_device():
    production = square_network()
    plane = build_dataplane(production, use_cache=False)
    modified = production.copy()
    modified.config("r1").interface("Gi0/0").description = "local"
    changes = diff_networks(production.configs, modified.configs)
    cone = deps.wave_cone(plane, ("r1",), changes)
    assert cone == frozenset({"r1"})


def test_routing_change_cone_covers_spf_region():
    production = square_network()
    plane = build_dataplane(production, use_cache=False)
    modified = production.copy()
    modified.config("r1").interface("Gi0/0").ospf_cost = 42
    changes = diff_networks(production.configs, modified.configs)
    cone = deps.wave_cone(plane, ("r1",), changes)
    assert {"r1", "r2", "r3", "r4"} <= cone


def test_cones_disjoint():
    assert deps.cones_disjoint([frozenset({"a"}), frozenset({"b"})])
    assert not deps.cones_disjoint([frozenset({"a"}), frozenset({"a", "b"})])
