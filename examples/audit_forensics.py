#!/usr/bin/env python3
"""Audit forensics: attestation, tamper-evidence, and retroactive review.

Demonstrates the enforcer's trust story (paper §4.3 / challenge 3):

* the customer attests the enforcer enclave before trusting it;
* every mediated action lands in an HMAC-chained audit trail;
* after an incident, the customer reviews denied actions and technician
  behaviour, and any tampering with the log is detected.

Run:  python examples/audit_forensics.py
"""

import dataclasses

from repro import Heimdall, build_enterprise_network, mine_policies, standard_issues
from repro.core.enforcer.enclave import expected_measurement, verify_attestation


def main():
    production = build_enterprise_network()
    policies = mine_policies(production)
    heimdall = Heimdall(production, policies=policies)

    # ---- attestation: trust the enforcer before using it ------------------
    report = heimdall.enclave.attest(nonce="customer-nonce-42")
    genuine = verify_attestation(report, expected_measurement())
    print(f"enclave attestation: {report}")
    print(f"customer verdict: {'TRUSTED' if genuine else 'REJECTED'}\n")

    # ---- a session with both legitimate and illegitimate actions -----------
    issue = standard_issues("enterprise")["ospf"]
    issue.inject(production)
    session = heimdall.open_ticket(issue)

    session.run_fix_script(issue.fix_script)  # the honest work

    # ... and some over-reach the monitor will refuse:
    console = session.console("dist1")
    console.execute("configure terminal")
    console.execute("hostname pwned")
    console.execute("enable secret 5 attacker-key")
    console.execute("end")
    outcome = session.submit()
    print(f"ticket resolved: {outcome.resolved}, "
          f"denied commands: {outcome.denied_commands}\n")

    # ---- retroactive review -------------------------------------------------
    trail = heimdall.audit
    print(f"audit trail: {len(trail)} records, chain intact: {trail.verify()}")
    print("\ndenied actions (what a forensic review reads first):")
    for record in trail.denied():
        print(f"  t={record.timestamp:7.1f}s {record.device:8} "
              f"{record.command!r} -> {record.action}")

    config_changes = trail.query(action_prefix="config.", allowed=True)
    print(f"\nallowed configuration actions: {len(config_changes)}")
    for record in config_changes[:5]:
        print(f"  t={record.timestamp:7.1f}s {record.device:8} {record.command!r}")

    # ---- tamper-evidence ------------------------------------------------------
    print("\ntamper experiment: flip one denied record to 'allowed'...")
    index = trail.records.index(trail.denied()[0])
    trail.records[index] = dataclasses.replace(
        trail.records[index], allowed=True
    )
    print(f"chain verifies after tampering: {trail.verify()}")
    assert not trail.verify()
    print("tampering detected — the forged history does not verify.")


if __name__ == "__main__":
    main()
