#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation as one markdown report.

Drives :func:`repro.experiments.report.render_report` — the same experiment
code the benchmark harness uses — over every artifact (Table 1, Figures
7-9, the §4.3 latency claim, both ablations) and renders a paper-vs-measured
markdown report.

Run:  python examples/paper_report.py [output.md]

Without an argument the report prints to stdout. The full run recomputes
both networks' interface-down sweeps (~1 minute).
"""

import io
import sys

from repro.experiments.report import render_report


def main():
    buffer = io.StringIO()
    render_report(buffer)
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(buffer.getvalue())
        print(f"report written to {sys.argv[1]}")
    else:
        print(buffer.getvalue())


if __name__ == "__main__":
    main()
