#!/usr/bin/env python3
"""Bring your own network: Heimdall over a custom topology.

Shows the downstream-user path end to end: build a network with
:class:`NetworkBuilder` (or parse your own IOS-style configs), mine its
policies, write a hand-crafted Privilege_msp in the JSON front-end, and run
a ticket through a twin with privilege escalation along the way.

Run:  python examples/custom_network.py
"""

import ipaddress

from repro import (
    Heimdall,
    NetworkBuilder,
    load_privilege_spec,
    mine_policies,
)
from repro.core.twin.twin import TwinNetwork
from repro.scenarios.issues import FixStep, Issue


def build_branch_office():
    """A small branch office: edge router, core, two LANs and a server."""
    builder = NetworkBuilder("branch")
    builder.router("edge").router("core")
    builder.host("fileserver").host("desk1").host("desk2")

    builder.p2p("edge", "Gi0/0", "core", "Gi0/0", "10.200.0.0/30")
    builder.attach_host("fileserver", "eth0", "core", "Gi0/1", "10.200.10.0/24")
    builder.attach_host("desk1", "eth0", "core", "Gi0/2", "10.200.20.0/24")
    builder.attach_host("desk2", "eth0", "edge", "Gi0/1", "10.200.30.0/24")

    for router in ("edge", "core"):
        builder.enable_ospf(router)
        builder.credentials(router, enable_secret=f"branch-{router}",
                            vty_password="branch-vty")

    # Only desk1's LAN may reach the file server.
    builder.acl("core", "FILES", [
        "permit ip 10.200.20.0 0.0.0.255 10.200.10.0 0.0.0.255",
        "deny ip any any",
    ])
    builder.apply_acl("core", "Gi0/1", "FILES", direction="out")
    return builder.build()


def make_issue():
    """desk1 loses its uplink: core's Gi0/2 got shut during maintenance."""

    def inject(network):
        network.config("core").interface("Gi0/2").shutdown = True

    return Issue(
        issue_id="ifdown:core:Gi0/2",
        title="desk1 LAN interface down",
        description="desk1 (10.200.20.100) cannot reach the file server.",
        src_host="desk1",
        dst_host="fileserver",
        root_cause_device="core",
        complexity="simple",
        fix_script=[
            FixStep("core", (
                "show interfaces",
                "configure terminal",
                "interface Gi0/2",
                "no shutdown",
                "end",
                "write memory",
            )),
        ],
        _inject=inject,
    )


HAND_WRITTEN_SPEC = """
{
  "version": 1,
  "default": "deny",
  "rules": [
    {"effect": "deny",  "action": "config.acl.*", "resource": "core:*",
     "comment": "the FILES ACL is the crown jewel"},
    {"effect": "allow", "action": "view.*",  "resource": "*"},
    {"effect": "allow", "action": "probe.*", "resource": "*"},
    {"effect": "allow", "action": "config.interface.admin", "resource": "core:*"},
    {"effect": "allow", "action": "system.save", "resource": "core"}
  ]
}
"""


def main():
    production = build_branch_office()
    policies = mine_policies(production)
    print(f"branch office: {production.summary()}")
    print(f"mined {len(policies)} policies\n")

    issue = make_issue()
    issue.inject(production)
    print(f"ticket: {issue.description}")

    # A hand-written Privilege_msp instead of the generated one.
    spec, _ = load_privilege_spec(HAND_WRITTEN_SPEC)
    heimdall = Heimdall(production, policies=policies)
    twin = TwinNetwork(production, issue, spec, audit=heimdall.audit)
    print(f"twin scope: {sorted(twin.scope)}")

    console = twin.console("core")
    for command in issue.fix_script[0].commands:
        result = console.execute(command)
        status = "ok" if result.ok else f"DENIED ({result.error})"
        print(f"  core> {command:45} {status}")

    # The hand-written spec blocks ACL edits even inside the twin:
    console.execute("configure terminal")
    blocked = console.execute("ip access-list extended FILES")
    blocked = console.execute("permit ip any any") if blocked.ok else blocked
    print(f"\nattempt to edit FILES ACL: "
          f"{'denied' if not blocked.ok else 'allowed?!'}")
    console.execute("end")

    print(f"\ntwin resolved: {twin.issue_resolved()}")

    # Verify + import through the enforcer.
    from repro.core.enforcer.verifier import ChangeVerifier
    from repro.core.enforcer.scheduler import ChangeScheduler

    changes = twin.changes()
    decision = ChangeVerifier(policies, spec).verify(production, changes)
    print(f"enforcer: {decision.summary()}")
    if decision.approved:
        ChangeScheduler().push(production, changes)
    print(f"production resolved: {issue.is_resolved(production)}")


if __name__ == "__main__":
    main()
