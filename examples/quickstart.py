#!/usr/bin/env python3
"""Quickstart: resolve one ticket the Heimdall way, end to end.

This walks the full Figure-4 workflow on the paper's enterprise network:

1. the admin's side — mine the network policies and deploy Heimdall;
2. a fault appears and a ticket is filed;
3. a twin network is scoped and booted, a Privilege_msp generated;
4. the technician fixes the issue inside the twin;
5. the enforcer verifies the changes and imports them into production.

Run:  python examples/quickstart.py
"""

from repro import (
    Heimdall,
    TicketSystem,
    build_enterprise_network,
    mine_policies,
    standard_issues,
)


def main():
    # ---- 1. the customer deploys Heimdall over a healthy network -----------
    production = build_enterprise_network()
    policies = mine_policies(production)
    print(f"production network: {production.summary()}")
    print(f"mined {len(policies)} network policies (config2spec-style)\n")

    heimdall = Heimdall(production, policies=policies)

    # ---- 2. a fault appears; the admin files a ticket -----------------------
    issue = standard_issues("enterprise")["vlan"]
    issue.inject(production)
    tickets = TicketSystem()
    ticket = tickets.open(issue)
    tickets.assign(ticket.ticket_id, "tech-1")
    print(f"{ticket.ticket_id}: {ticket.description}")
    print(f"issue currently broken: {issue.is_broken(production)}\n")

    # ---- 3. Heimdall scopes a twin and generates the Privilege_msp ----------
    session = heimdall.open_ticket(issue)
    print(f"twin scope ({len(session.twin.scope)} of "
          f"{len(production.topology.devices())} devices): "
          f"{sorted(session.twin.scope)}")
    print(f"privilege rules generated: {len(session.privilege_spec)}\n")

    # ---- 4. the technician works inside the twin ----------------------------
    print("technician investigates on sw2:")
    print(session.execute("sw2", "show vlan").output, "\n")
    for command in ("configure terminal", "interface Fa0/2",
                    "switchport access vlan 10", "end"):
        result = session.execute("sw2", command)
        assert result.ok, result.error
    print(f"fixed inside the twin: {session.twin.issue_resolved()}")
    print(f"production still broken: {issue.is_broken(production)}\n")

    # ---- 5. the enforcer verifies and imports --------------------------------
    outcome = session.submit()
    print(f"enforcer: approved={outcome.approved}, "
          f"changes imported={len(outcome.changes)}")
    print(f"production resolved: {outcome.resolved}")
    print(f"simulated wall-clock: {outcome.duration_s:.1f}s — "
          f"{ {k: round(v, 1) for k, v in outcome.breakdown.items()} }")

    tickets.resolve(ticket.ticket_id, note="access VLAN restored")
    tickets.close(ticket.ticket_id)

    # The customer can verify the tamper-evident audit trail afterwards.
    print(f"\naudit: {len(heimdall.audit)} records, "
          f"chain intact: {heimdall.audit.verify()}")


if __name__ == "__main__":
    main()
