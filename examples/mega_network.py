#!/usr/bin/env python3
"""Mega-network walkthrough: generate, shard-compile, verify, fix a ticket.

The paper's networks prove the workflow at ~30 devices; this example runs
it at managed-estate scale (docs/SCALING.md is the full handbook):

1. generate a seeded 500-device fat-tree with invariant policies and
   seeded misconfiguration issues;
2. plan and run a sharded compile, and check it is byte-identical to the
   monolithic builder;
3. verify every invariant policy through the process-sharded verifier;
4. inject a seeded issue and fix it through the ordinary Heimdall ticket
   workflow — scoping keeps the twin tiny even when production is huge.

Run:  python examples/mega_network.py
"""

from repro import Heimdall
from repro.control.builder import build_dataplane
from repro.control.shard import (
    compile_shard_plan,
    sharded_compile,
    sharded_verify,
)
from repro.scenarios.generate import generate_scenario


def main():
    # ---- 1. generate the estate --------------------------------------------
    scenario = generate_scenario(shape="fat-tree", size=500, seed=7)
    production = scenario.network
    print(f"generated {scenario.shape}-{scenario.requested_size} "
          f"(seed {scenario.seed}): {scenario.device_count} devices — "
          f"{len(production.routers())} routers, "
          f"{len(production.hosts())} hosts, "
          f"{len(scenario.lans)} LANs, params {scenario.params}")
    print(f"{len(scenario.policies)} invariant policies, "
          f"{len(scenario.issues)} seeded issues\n")

    # ---- 2. sharded compile, byte-identical to the monolithic builder ------
    plan = compile_shard_plan(production)
    print(f"shard plan: {len(plan.shards)} shards over "
          f"{len(set(plan.component_of.values()))} SPF component(s), "
          f"sizes {[len(s.sources) for s in plan.shards]}")
    plane = sharded_compile(production, use_cache=False)
    monolithic = build_dataplane(production, use_cache=False)
    identical = all(
        plane.fib(d).routes() == monolithic.fib(d).routes()
        for d in production.configs
    )
    print(f"sharded == monolithic, all {scenario.device_count} FIBs: "
          f"{identical}\n")

    # ---- 3. verify the invariants at scale ---------------------------------
    report = sharded_verify(scenario.policies, plane)
    holding = sum(1 for r in report.results if r.holds)
    print(f"verify: {holding}/{len(report.results)} policies hold "
          f"on the clean network\n")

    # ---- 4. a ticket at scale: the twin stays small ------------------------
    issue = scenario.issues["ifdown"]
    issue.inject(production)
    print(f"injected: {issue.title} (root cause {issue.root_cause_device})")

    heimdall = Heimdall(production, policies=scenario.policies)
    session = heimdall.open_ticket(issue)
    print(f"twin scope: {len(session.twin.scope)} of "
          f"{scenario.device_count} devices")
    for step in issue.fix_script:
        for command in step.commands:
            result = session.execute(step.device, command)
            assert result.ok, result.error
    outcome = session.submit()
    print(f"enforcer: approved={outcome.approved}, "
          f"resolved={outcome.resolved}")
    print(f"audit chain intact: {heimdall.audit.verify()}")


if __name__ == "__main__":
    main()
