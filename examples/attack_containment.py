#!/usr/bin/env python3
"""Replay the paper's motivating incidents against both access models.

Three adversarial behaviours (paper §2.2 and Figure 6):

* an APT10-style credential exfiltration (Figure 2),
* a malicious ACL change smuggled inside a legitimate fix (Figure 6),
* a careless outage-causing command (Figure 3).

Each is run first against the **current RMM model** (root agents on every
device) where it succeeds, then against **Heimdall**, where some layer —
twin scoping, config sanitisation, the reference monitor, or the policy
enforcer — contains it.

Run:  python examples/attack_containment.py
"""

from repro import Heimdall, build_enterprise_network, mine_policies, standard_issues
from repro.attack.adversary import (
    MaliciousFixScript,
    careless_command,
    exfiltration_attempt,
    file_exfiltration,
    malicious_fix,
    production_secrets,
)
from repro.scenarios.files import sensitive_paths
from repro.msp.rmm import RmmServer
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import SENSITIVE_DEVICES


class RmmAccess:
    def __init__(self, session):
        self.session = session

    def execute(self, device, command):
        return self.session.execute(device, command)


class TwinAccess:
    def __init__(self, session):
        self.session = session

    def execute(self, device, command):
        return self.session.console(device).execute(command)


def banner(title):
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def exfiltration():
    banner("Incident 1: credential exfiltration (APT10, Figure 2)")
    targets = SENSITIVE_DEVICES + ("gw",)

    production = build_enterprise_network()
    server = RmmServer(production)
    server.add_credential("apt10", "phished-password")
    rmm = server.authenticate("apt10", "phished-password")
    report = exfiltration_attempt(
        RmmAccess(rmm), targets, production_secrets(production)
    )
    print(f"RMM baseline: {report.succeeded}/{report.attempted} devices "
          f"harvested, loot={len(report.loot)} secrets")

    production = build_enterprise_network()
    policies = mine_policies(production)
    issue = standard_issues("enterprise")["vlan"]
    issue.inject(production)
    heimdall = Heimdall(production, policies=policies)
    session = heimdall.open_ticket(issue)
    report = exfiltration_attempt(
        TwinAccess(session), targets, production_secrets(production)
    )
    print(f"Heimdall:     {report.succeeded}/{report.attempted} devices "
          f"harvested; blocked by {sorted(set(b for _, b in report.blocked_by))}")
    assert report.contained

    # ... and the file-stealing half (compress important files, Figure 2).
    production_files = build_enterprise_network()
    server = RmmServer(production_files)
    server.add_credential("apt10", "phished-password")
    rmm = server.authenticate("apt10", "phished-password")
    report = file_exfiltration(
        RmmAccess(rmm), sensitive_paths(production_files)
    )
    print(f"RMM baseline: {report.succeeded}/{report.attempted} sensitive "
          f"files stolen (e.g. {report.loot[0] if report.loot else None})")
    report = file_exfiltration(
        TwinAccess(session), sensitive_paths(production)
    )
    print(f"Heimdall:     {report.succeeded}/{report.attempted} files stolen; "
          f"blocked by {sorted(set(b for _, b in report.blocked_by))}")
    assert report.contained


def smuggled_acl():
    banner("Incident 2: malicious ACL change inside a fix (Figure 6)")
    script = MaliciousFixScript(
        device="dist1",
        legitimate_commands=(
            "configure terminal",
            "router ospf 1",
            "network 10.0.5.0 0.0.0.3 area 0",
            "network 10.0.7.0 0.0.0.3 area 0",
            "network 10.0.8.0 0.0.0.3 area 0",
            "exit",
        ),
        malicious_commands=(
            "ip access-list extended DB_PROTECT",
            "permit tcp 10.5.10.0 0.0.0.255 host 10.7.1.100 eq 5432",
            "end",
        ),
    )
    issue_factory = lambda: standard_issues("enterprise")["ospf"]

    production = build_enterprise_network()
    issue = issue_factory()
    issue.inject(production)
    server = RmmServer(production)
    server.add_credential("rogue", "pw")
    malicious_fix(RmmAccess(server.authenticate("rogue", "pw")), script)
    opened = any(
        "10.5.10.0" in e.to_text()
        for e in production.config("dist1").acl("DB_PROTECT").entries
    )
    print(f"RMM baseline: ticket fixed={issue.is_resolved(production)}, "
          f"database silently opened to staff VLAN={opened}")

    production = build_enterprise_network()
    policies = mine_policies(build_enterprise_network())
    issue = issue_factory()
    issue.inject(production)
    heimdall = Heimdall(production, policies=policies)
    session = heimdall.open_ticket(issue, profile="connectivity")
    results = malicious_fix(TwinAccess(session), script)
    outcome = session.submit()
    opened = any(
        "10.5.10.0" in e.to_text()
        for e in production.config("dist1").acl("DB_PROTECT").entries
    )
    denied = sum(1 for r in results if not r.ok)
    print(f"Heimdall:     monitor denied {denied} commands, enforcer "
          f"approved={outcome.approved}, database opened={opened}")
    assert not opened


def careless():
    banner("Incident 3: careless command, network outage (Figure 3)")
    commands = ("configure terminal", "interface Gi0/1", "shutdown", "end")

    production = build_enterprise_network()
    policies = mine_policies(production)
    server = RmmServer(production)
    server.add_credential("tired", "pw")
    careless_command(RmmAccess(server.authenticate("tired", "pw")), "gw", commands)
    report = PolicyVerifier(policies).verify_network(production)
    print(f"RMM baseline: {report.violation_count} policies violated "
          f"(outage is live)")

    production = build_enterprise_network()
    issue = standard_issues("enterprise")["isp"]
    issue.inject(production)
    heimdall = Heimdall(production, policies=policies)
    session = heimdall.open_ticket(issue)
    results = careless_command(TwinAccess(session), "gw", commands)
    outcome = session.submit()
    report = PolicyVerifier(policies).verify_network(production)
    live = sum(
        1 for r in report.violations if "ext1" not in r.policy.comment
    )
    denied = sum(1 for r in results if not r.ok)
    print(f"Heimdall:     monitor denied {denied} commands, enforcer "
          f"approved={outcome.approved}; production gateway uplink still "
          f"up={not production.config('gw').interface('Gi0/1').shutdown}")


def main():
    exfiltration()
    smuggled_acl()
    careless()
    print("\nAll three incidents contained by Heimdall.")


if __name__ == "__main__":
    main()
