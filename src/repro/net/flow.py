"""Packet-header abstraction used by ACL matching and forwarding analysis.

A :class:`Flow` is a single representative packet header (5-tuple). The
reachability analysis in :mod:`repro.dataplane` simulates concrete flows
rather than symbolic header spaces; for the policy classes the paper uses
(pairwise reachability/isolation, per-port service reachability) concrete
representative flows are sufficient and much simpler to audit.
"""

import ipaddress
from dataclasses import dataclass


PROTOCOLS = ("ip", "icmp", "tcp", "udp")


@dataclass(frozen=True)
class Flow:
    """A concrete packet header.

    ``protocol`` is one of ``ip`` (any), ``icmp``, ``tcp``, ``udp``. Ports are
    ``None`` for port-less protocols.
    """

    src_ip: ipaddress.IPv4Address
    dst_ip: ipaddress.IPv4Address
    protocol: str = "ip"
    src_port: int = None
    dst_port: int = None

    def __post_init__(self):
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")
        for port in (self.src_port, self.dst_port):
            if port is not None and not 0 <= port <= 65535:
                raise ValueError(f"port {port!r} out of range")

    @classmethod
    def make(cls, src_ip, dst_ip, protocol="ip", src_port=None, dst_port=None):
        """Build a flow from string or address arguments."""
        return cls(
            src_ip=ipaddress.IPv4Address(src_ip),
            dst_ip=ipaddress.IPv4Address(dst_ip),
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
        )

    def reversed(self):
        """The return-direction flow (src/dst swapped)."""
        return Flow(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def __str__(self):
        ports = ""
        if self.src_port is not None or self.dst_port is not None:
            ports = f" {self.src_port or '*'}->{self.dst_port or '*'}"
        return f"{self.protocol} {self.src_ip} -> {self.dst_ip}{ports}"
