"""Physical topology: devices, interfaces, and point-to-point links.

The model intentionally mirrors what a cabling diagram captures. A
:class:`Topology` is a multigraph of :class:`Device` nodes joined by
:class:`Link` edges between named :class:`Interface` endpoints. Everything
logical (addresses, VLANs, routing processes) is configuration and lives in
:mod:`repro.config`.
"""

import enum
from dataclasses import dataclass, field

from repro.util.errors import TopologyError


class DeviceKind(enum.Enum):
    """Role of a device in the network."""

    ROUTER = "router"
    SWITCH = "switch"
    HOST = "host"


@dataclass(frozen=True)
class Interface:
    """A named port on a device, e.g. ``("r1", "GigabitEthernet0/0")``."""

    device: str
    name: str

    def __str__(self):
        return f"{self.device}:{self.name}"


@dataclass(frozen=True)
class Link:
    """An undirected cable between two interfaces on distinct devices."""

    a: Interface
    b: Interface

    def __post_init__(self):
        if self.a.device == self.b.device:
            raise TopologyError(f"self-link on device {self.a.device!r}")

    def endpoints(self):
        """Both interface endpoints as a tuple."""
        return (self.a, self.b)

    def other(self, interface):
        """The endpoint opposite ``interface``."""
        if interface == self.a:
            return self.b
        if interface == self.b:
            return self.a
        raise TopologyError(f"{interface} is not an endpoint of {self}")

    def __str__(self):
        return f"{self.a} <-> {self.b}"


@dataclass
class Device:
    """A network device: router, switch, or host."""

    name: str
    kind: DeviceKind
    interfaces: dict = field(default_factory=dict)

    def interface(self, name):
        """Look up an interface by name, raising if it does not exist."""
        try:
            return self.interfaces[name]
        except KeyError:
            raise TopologyError(
                f"device {self.name!r} has no interface {name!r}"
            ) from None

    def add_interface(self, name):
        """Declare an interface; idempotent for repeated declarations."""
        if name not in self.interfaces:
            self.interfaces[name] = Interface(self.name, name)
        return self.interfaces[name]


class Topology:
    """A named collection of devices and the links between them.

    >>> topo = Topology("demo")
    >>> _ = topo.add_device("r1", DeviceKind.ROUTER)
    >>> _ = topo.add_device("h1", DeviceKind.HOST)
    >>> _ = topo.add_link("r1", "Gi0/0", "h1", "eth0")
    >>> topo.neighbors("r1")
    ['h1']
    """

    def __init__(self, name):
        self.name = name
        self._devices = {}
        self._links = []
        self._links_by_interface = {}

    # -- construction -----------------------------------------------------

    def add_device(self, name, kind):
        """Add a device; duplicate names are an error."""
        if name in self._devices:
            raise TopologyError(f"duplicate device {name!r}")
        device = Device(name, kind)
        self._devices[name] = device
        return device

    def add_link(self, device_a, iface_a, device_b, iface_b):
        """Cable ``device_a:iface_a`` to ``device_b:iface_b``.

        Interfaces are declared implicitly. An interface can carry at most one
        cable, as on physical hardware.
        """
        a = self.device(device_a).add_interface(iface_a)
        b = self.device(device_b).add_interface(iface_b)
        for endpoint in (a, b):
            if endpoint in self._links_by_interface:
                raise TopologyError(f"interface {endpoint} is already cabled")
        link = Link(a, b)
        self._links.append(link)
        self._links_by_interface[a] = link
        self._links_by_interface[b] = link
        return link

    # -- queries -----------------------------------------------------------

    def device(self, name):
        """Look up a device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise TopologyError(f"unknown device {name!r}") from None

    def has_device(self, name):
        """Whether a device with this name exists."""
        return name in self._devices

    def devices(self, kind=None):
        """All devices, optionally filtered by :class:`DeviceKind`."""
        if kind is None:
            return list(self._devices.values())
        return [d for d in self._devices.values() if d.kind == kind]

    def device_names(self, kind=None):
        """Names of all devices, optionally filtered by kind."""
        return [d.name for d in self.devices(kind)]

    def links(self):
        """All links, in insertion order."""
        return list(self._links)

    def link_at(self, device, iface):
        """The link cabled to ``device:iface``, or ``None`` if uncabled."""
        interface = self.device(device).interface(iface)
        return self._links_by_interface.get(interface)

    def peer(self, device, iface):
        """The interface at the far end of the cable, or ``None``."""
        link = self.link_at(device, iface)
        if link is None:
            return None
        return link.other(self.device(device).interface(iface))

    def neighbors(self, device):
        """Sorted names of devices directly cabled to ``device``."""
        names = set()
        for iface in self.device(device).interfaces.values():
            link = self._links_by_interface.get(iface)
            if link is not None:
                names.add(link.other(iface).device)
        return sorted(names)

    def links_of(self, device):
        """All links with one endpoint on ``device``."""
        found = []
        for iface in self.device(device).interfaces.values():
            link = self._links_by_interface.get(iface)
            if link is not None:
                found.append(link)
        return found

    def to_networkx(self):
        """Export as an undirected :mod:`networkx` graph for graph algorithms.

        Node attribute ``kind`` carries the :class:`DeviceKind`; edge
        attribute ``link`` carries the :class:`Link`.
        """
        import networkx as nx

        graph = nx.Graph()
        for dev in self._devices.values():
            graph.add_node(dev.name, kind=dev.kind)
        for link in self._links:
            graph.add_edge(link.a.device, link.b.device, link=link)
        return graph

    def summary(self):
        """Counts used by Table 1: routers, switches, hosts, links."""
        return {
            "routers": len(self.devices(DeviceKind.ROUTER)),
            "switches": len(self.devices(DeviceKind.SWITCH)),
            "hosts": len(self.devices(DeviceKind.HOST)),
            "links": len(self._links),
        }
