"""IPv4 helpers shared by the config parser and control plane.

Cisco IOS expresses groups of addresses in three ways — dotted netmasks
(``255.255.255.0``), wildcard masks (``0.0.0.255``), and the ``host``/``any``
keywords. These helpers normalise all of them to :class:`ipaddress` objects.
Only contiguous masks are supported; discontiguous wildcard masks are rare in
practice and rejected loudly rather than mis-parsed.
"""

import ipaddress

from repro.util.errors import ConfigError


def parse_ip(text):
    """Parse a dotted-quad IPv4 address."""
    try:
        return ipaddress.IPv4Address(text)
    except (ipaddress.AddressValueError, ValueError) as exc:
        raise ConfigError(f"bad IPv4 address {text!r}: {exc}") from None


def netmask_to_prefixlen(mask_text):
    """Convert ``255.255.255.0`` -> 24, rejecting discontiguous masks."""
    mask = int(parse_ip(mask_text))
    # A valid netmask is a run of ones followed by zeros: adding the inverted
    # mask + 1 must produce a power of two (or zero for /32).
    inverted = mask ^ 0xFFFFFFFF
    if inverted & (inverted + 1):
        raise ConfigError(f"discontiguous netmask {mask_text!r}")
    return 32 - inverted.bit_length()


def wildcard_to_prefixlen(wildcard_text):
    """Convert a wildcard mask ``0.0.0.255`` -> 24."""
    wildcard = int(parse_ip(wildcard_text))
    if wildcard & (wildcard + 1):
        raise ConfigError(f"discontiguous wildcard mask {wildcard_text!r}")
    return 32 - wildcard.bit_length()


def network_from_netmask(ip_text, mask_text):
    """``10.0.1.5 255.255.255.0`` -> ``IPv4Network(10.0.1.0/24)``."""
    prefixlen = netmask_to_prefixlen(mask_text)
    return ipaddress.IPv4Network((parse_ip(ip_text), prefixlen), strict=False)


def network_from_wildcard(ip_text, wildcard_text):
    """``10.0.1.0 0.0.0.255`` -> ``IPv4Network(10.0.1.0/24)``."""
    prefixlen = wildcard_to_prefixlen(wildcard_text)
    return ipaddress.IPv4Network((parse_ip(ip_text), prefixlen), strict=False)


def interface_address(ip_text, mask_text):
    """``10.0.1.5 255.255.255.0`` -> ``IPv4Interface(10.0.1.5/24)``."""
    prefixlen = netmask_to_prefixlen(mask_text)
    return ipaddress.IPv4Interface(f"{ip_text}/{prefixlen}")


def prefixlen_to_netmask(prefixlen):
    """24 -> ``255.255.255.0``."""
    return str(ipaddress.IPv4Network(f"0.0.0.0/{prefixlen}").netmask)


def prefixlen_to_wildcard(prefixlen):
    """24 -> ``0.0.0.255``."""
    return str(ipaddress.IPv4Network(f"0.0.0.0/{prefixlen}").hostmask)
