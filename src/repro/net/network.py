"""The central bundle: a physical topology plus per-device configurations.

A :class:`Network` is what every higher layer operates on — the control plane
compiles it to a data plane, the emulator runs consoles over it, the twin
network clones slices of it, and the enforcer diffs two of them.
"""

from repro.config.serializer import config_line_count
from repro.net.topology import DeviceKind
from repro.util.errors import TopologyError


class Network:
    """A topology with a configuration per device."""

    def __init__(self, topology, configs):
        missing = [d.name for d in topology.devices() if d.name not in configs]
        if missing:
            raise TopologyError(f"devices without configs: {missing}")
        unknown = [name for name in configs if not topology.has_device(name)]
        if unknown:
            raise TopologyError(f"configs for unknown devices: {unknown}")
        self.topology = topology
        self.configs = dict(configs)

    @property
    def name(self):
        """The topology's name; networks are named by their topology."""
        return self.topology.name

    def config(self, device):
        """The configuration of ``device``."""
        try:
            return self.configs[device]
        except KeyError:
            raise TopologyError(f"unknown device {device!r}") from None

    def kind(self, device):
        """The :class:`DeviceKind` of ``device``."""
        return self.topology.device(device).kind

    def routers(self):
        """Names of all routers."""
        return self.topology.device_names(DeviceKind.ROUTER)

    def switches(self):
        """Names of all switches."""
        return self.topology.device_names(DeviceKind.SWITCH)

    def hosts(self):
        """Names of all hosts."""
        return self.topology.device_names(DeviceKind.HOST)

    def device_owning_ip(self, address):
        """The device with ``address`` on some interface, or ``None``."""
        for name, config in self.configs.items():
            if config.owns_address(address):
                return name
        return None

    def host_address(self, host):
        """A host's primary IP address."""
        address = self.config(host).primary_address
        if address is None:
            raise TopologyError(f"host {host!r} has no address")
        return address.ip

    def subset(self, device_names):
        """A new network containing only ``device_names`` and internal links.

        Used by the twin network to materialise a task-scoped slice. Configs
        are deep-copied so twin edits never touch the original.
        """
        from repro.net.topology import Topology

        keep = set(device_names)
        unknown = [n for n in keep if not self.topology.has_device(n)]
        if unknown:
            raise TopologyError(f"unknown devices in subset: {unknown}")
        topo = Topology(f"{self.name}-subset")
        for device in self.topology.devices():
            if device.name in keep:
                added = topo.add_device(device.name, device.kind)
                for iface_name in device.interfaces:
                    added.add_interface(iface_name)
        for link in self.topology.links():
            if link.a.device in keep and link.b.device in keep:
                topo.add_link(
                    link.a.device, link.a.name, link.b.device, link.b.name
                )
        configs = {name: self.configs[name].copy() for name in keep}
        return Network(topo, configs)

    def copy(self):
        """Deep copy of configs over the shared (immutable-in-practice) topology."""
        return Network(
            self.topology, {n: c.copy() for n, c in self.configs.items()}
        )

    def copy_except(self, devices):
        """A copy that deep-copies only ``devices``' configs and *shares* the
        rest by reference.

        Copy-on-write for callers about to edit exactly ``devices`` (the
        enforcer's candidate snapshots): mutating any other device's config
        on the copy would corrupt the original, so treat the shared configs
        as read-only.
        """
        devices = set(devices)
        return Network(
            self.topology,
            {
                n: (c.copy() if n in devices else c)
                for n, c in self.configs.items()
            },
        )

    def total_config_lines(self):
        """Table 1's "lines of configs" across all devices."""
        return sum(config_line_count(c) for c in self.configs.values())

    def summary(self):
        """Table 1 row: device/link/config-line counts."""
        counts = self.topology.summary()
        counts["config_lines"] = self.total_config_lines()
        return counts
