"""Physical network model: devices, interfaces, links, and the topology graph.

This layer is purely physical — IP addressing, VLANs, and routing live in the
configuration (:mod:`repro.config`) and control-plane (:mod:`repro.control`)
layers, mirroring how real networks separate cabling from configuration.
"""

from repro.net.topology import Device, DeviceKind, Interface, Link, Topology

__all__ = ["Device", "DeviceKind", "Interface", "Link", "Topology"]
