"""The fault-point registry: named, seeded, off-by-default injection sites.

Modules declare their injection points at import time::

    _APPLY_FAULT = faults.fault_point(
        "device.apply.transient", error=TransientDeviceError,
        help="one device apply fails transiently (retryable)",
    )

and call ``_APPLY_FAULT.fire(device=...)`` on the instrumented path. While
the registry is unarmed, ``fire`` is one attribute read. Arming installs a
:class:`Rule` per point; when a rule triggers, ``fire`` raises the point's
error type, increments the ``faults.injected`` metric, and logs the firing
(point name, call index, context) so a chaos report can show exactly what
was injected where.

Trigger decisions are deterministic: each armed rule draws from a PRNG
derived from ``(campaign seed, point name)`` via :mod:`repro.util.rand`, so
the same seed always fires the same calls — the property that makes a chaos
campaign reproducible from its seed alone.
"""

import threading
from dataclasses import dataclass, field

from repro.obs import metrics as obs_metrics
from repro.util import rand
from repro.util.errors import ReproError

_FAULTS_INJECTED = obs_metrics.counter(
    "faults.injected", unit="faults",
    help="failures injected by armed fault points",
)


@dataclass
class Rule:
    """When an armed fault point should trigger.

    Exactly one trigger mode is active per rule:

    * ``nth``: trigger on the nth call to the point (1-based);
    * ``probability``: trigger each call with this probability (seeded);

    ``times`` bounds the total number of triggers (default 1 for ``nth``,
    unlimited for ``probability``); ``error`` overrides the point's default
    error type; ``message`` overrides the raise text.
    """

    nth: int = None
    probability: float = None
    times: int = None
    error: type = None
    message: str = None

    def __post_init__(self):
        if (self.nth is None) == (self.probability is None):
            raise ReproError(
                "fault rule needs exactly one of nth= or probability="
            )
        if self.nth is not None and self.nth < 1:
            raise ReproError(f"nth must be >= 1, got {self.nth}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.times is None:
            self.times = 1 if self.nth is not None else None


@dataclass
class Firing:
    """One injected failure, for the chaos report."""

    point: str
    call_index: int
    context: dict = field(default_factory=dict)


class _ArmedRule:
    """A rule bound to one point for one armed session."""

    __slots__ = ("rule", "rng", "calls", "fired")

    def __init__(self, point_name, rule):
        self.rule = rule
        self.rng = rand.derive(f"fault:{point_name}")
        self.calls = 0
        self.fired = 0

    def should_fire(self):
        self.calls += 1
        if self.rule.times is not None and self.fired >= self.rule.times:
            return False
        if self.rule.nth is not None:
            hit = self.calls >= self.rule.nth
        else:
            hit = self.rng.random() < self.rule.probability
        if hit:
            self.fired += 1
        return hit


class FaultPoint:
    """One named injection site."""

    __slots__ = ("name", "error", "help", "registry")

    def __init__(self, name, error, help, registry):
        self.name = name
        self.error = error
        self.help = help
        self.registry = registry

    def fire(self, **context):
        """Raise the configured error if an armed rule triggers.

        ``context`` (device name, command, batch index, ...) is recorded
        with the firing and interpolated into the raise message. A no-op
        while the registry is unarmed or the point has no rule.
        """
        registry = self.registry
        if not registry.armed:
            return
        registry.check(self, context)


class FaultRegistry:
    """Name-keyed fault points plus the currently armed plan, if any.

    Registration is idempotent per name (modules register at import time);
    re-registering with a different error type is a bug and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._points = {}
        self._armed = {}  # point name -> _ArmedRule
        self.armed = False
        self.firings = []

    # -- registration (import time) -----------------------------------------

    def point(self, name, error, help=""):
        """Get-or-create the fault point ``name``."""
        with self._lock:
            existing = self._points.get(name)
            if existing is not None:
                if existing.error is not error:
                    raise ReproError(
                        f"fault point {name!r} already registered with error "
                        f"{existing.error.__name__}, not {error.__name__}"
                    )
                return existing
            created = FaultPoint(name, error, help, self)
            self._points[name] = created
            return created

    def get(self, name):
        """The point registered as ``name``, or ``None``."""
        with self._lock:
            return self._points.get(name)

    def names(self):
        """All registered point names, sorted."""
        with self._lock:
            return sorted(self._points)

    def points(self):
        """All registered points, sorted by name."""
        with self._lock:
            return [self._points[name] for name in sorted(self._points)]

    # -- arming (campaign time) ---------------------------------------------

    def arm(self, plan, seed=None):
        """Install ``plan`` (point name -> :class:`Rule`) and start firing.

        Args:
            plan: which points fail and how. Unknown names raise — a chaos
                campaign naming a point that no longer exists is a bug, not
                a silent no-op.
            seed: re-seeds :mod:`repro.util.rand` first, so one number
                reproduces the whole campaign. ``None`` keeps the current
                seed.
        """
        if seed is not None:
            rand.seed(seed)
        with self._lock:
            unknown = sorted(set(plan) - set(self._points))
            if unknown:
                raise ReproError(
                    f"unknown fault points in plan: {', '.join(unknown)} "
                    f"(registered: {', '.join(sorted(self._points))})"
                )
            self._armed = {
                name: _ArmedRule(name, rule) for name, rule in plan.items()
            }
            self.firings = []
            self.armed = True

    def disarm(self):
        """Stop firing; keeps the firing log for inspection."""
        with self._lock:
            self._armed = {}
            self.armed = False

    def check(self, point, context):
        """Trigger-test one call to ``point``; raises when a rule fires."""
        with self._lock:
            armed = self._armed.get(point.name)
            if armed is None or not armed.should_fire():
                return
            firing = Firing(
                point=point.name,
                call_index=armed.calls,
                context=dict(context),
            )
            self.firings.append(firing)
            rule = armed.rule
        _FAULTS_INJECTED.inc()
        error = rule.error if rule.error is not None else point.error
        message = rule.message or (
            f"injected fault at {point.name}"
            + (f" ({_context_text(context)})" if context else "")
        )
        raise error(message)

    def calls(self, name):
        """How many times the armed rule for ``name`` has been consulted."""
        with self._lock:
            armed = self._armed.get(name)
            return armed.calls if armed is not None else 0


def _context_text(context):
    return ", ".join(f"{k}={v}" for k, v in sorted(context.items()))


_REGISTRY = FaultRegistry()


def registry():
    """The process-wide fault registry."""
    return _REGISTRY


def fault_point(name, error, help=""):
    """Module-level shorthand for :meth:`FaultRegistry.point`."""
    return _REGISTRY.point(name, error, help=help)


def arm(plan, seed=None):
    """Module-level shorthand for :meth:`FaultRegistry.arm`."""
    _REGISTRY.arm(plan, seed=seed)


def disarm():
    """Module-level shorthand for :meth:`FaultRegistry.disarm`."""
    _REGISTRY.disarm()
