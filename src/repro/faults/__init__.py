"""``repro.faults`` — deterministic fault injection for chaos campaigns.

A :class:`~repro.faults.registry.FaultPoint` is a named place in the
pipeline where a failure can be injected (a device apply failing, the
pusher crashing mid-batch, an audit append failing, ...). Points are
registered at import time by the modules they live in — the same pattern as
the metrics registry — so docs/ROBUSTNESS.md's fault catalog can be
validated against the live registry without running a workload.

Everything is **off by default**: an unarmed point costs one attribute read.
Arm a plan with a seed and every trigger decision becomes a deterministic
function of ``(seed, point name, call index)``:

    from repro import faults

    faults.arm({"device.apply.transient": faults.Rule(nth=2)}, seed=7)
    try:
        ... run the pipeline ...
    finally:
        faults.disarm()

See docs/ROBUSTNESS.md for the full fault-point catalog and
:mod:`repro.faults.chaos` for the seeded campaign runner behind
``python -m repro.cli chaos``.
"""

from repro.faults.registry import (
    FaultPoint,
    FaultRegistry,
    Rule,
    arm,
    disarm,
    fault_point,
    registry,
)

__all__ = [
    "FaultPoint",
    "FaultRegistry",
    "Rule",
    "arm",
    "disarm",
    "fault_point",
    "registry",
]
