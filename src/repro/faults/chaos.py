"""Seeded chaos campaigns over the scenario networks.

A **campaign** is a fixed list of scenarios; a **scenario** is one ticket
resolved end-to-end (inject issue → twin session → verify → push) with a
fault plan armed at a chosen phase. Everything derives from the campaign
seed, so ``python -m repro.cli chaos --seed 7 --campaign push-failures``
produces the identical report every run.

After every scenario the runner checks the **push atomicity invariant**:
production's serialized configs are byte-identical either to the pre-push
snapshot (fully rolled back / nothing imported) or to the pre-push snapshot
with the journaled change set applied (fully committed) — never anything in
between — and the audit chain still verifies. A crashed push is recovered
with :meth:`~repro.core.enforcer.scheduler.ChangeScheduler.resume` before
the check, which is exactly the recovery protocol docs/ROBUSTNESS.md
specifies.
"""

from dataclasses import dataclass, field

from repro import faults, obs
from repro.config.serializer import serialize_config
from repro.core.approvals import ApprovalConfig
from repro.core.enforcer.audit import ReplicatedAuditTrail
from repro.core.enforcer.risk import RiskConfig
from repro.core.enforcer.rollout import RolloutConfig
from repro.core.heimdall import Heimdall
from repro.faults.adversary import generate_attacks
from repro.faults.registry import Rule
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import FixStep, standard_issues
from repro.scenarios.university import build_university_network
from repro.util.errors import (
    AuditQuorumError,
    PrivilegeError,
    PushCrashed,
    ReproError,
)

_BUILDERS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}

# Metrics the campaign report surfaces (all registered at import time by
# the instrumented modules; see docs/OBSERVABILITY.md).
REPORT_METRICS = (
    "faults.injected",
    "push.rollbacks",
    "push.resumes",
    "retry.attempts",
    "retry.exhausted",
    "monitor.timeouts",
    "verify.degraded",
    "rollout.waves",
    "rollout.probes",
    "rollout.probe.violations",
    "rollout.quarantined",
    "rollout.breaker.trips",
    "approvals.requested",
    "approvals.granted",
    "approvals.denied",
    "approvals.mediated",
    "approvals.timeouts",
    "approvals.break_glass",
    "audit.replica.appends",
    "audit.replica.flagged",
    "audit.replica.quorum_lost",
    "monitor.denied",
    "tenancy.violation",
    "tenancy.tokens.issued",
    "tenancy.tokens.denied",
    "tenancy.break_glass",
    "frontdoor.admitted",
    "frontdoor.shed",
    "sessions.listener.error",
)

# The second-device change the canary scenarios ride along with the
# standard single-device fixes: a harmless static route to an unused
# prefix via a live next hop, so the staged push has (at least) two waves
# to probe without perturbing any reachability policy. The route action is
# covered by the ``routing`` task profile the ospf tickets run under.
_CANARY_EXTRA = {
    # dist2's Gi0/1 faces dist1's 10.0.7.1 (always up).
    "enterprise": (FixStep("dist2", (
        "configure terminal",
        "ip route 10.99.0.0 255.255.0.0 10.0.7.1",
        "end",
        "write memory",
    )),),
}


@dataclass(frozen=True)
class Scenario:
    """One fault-injected ticket resolution.

    ``arm_phase`` picks when the plan arms: ``"session"`` before the twin
    commands run (monitor faults), ``"push"`` after them, just before
    submit (apply/crash/audit faults — the twin session stays clean).
    ``expect`` is the deterministic expected outcome, or ``None`` when the
    plan is probabilistic and only the two-state invariant is asserted.
    """

    label: str
    network: str
    issue: str
    plan: dict  # fault point name -> Rule
    arm_phase: str = "push"  # "session" | "push"
    max_workers: int = None
    expect: str = None  # "committed" | "rolled-back" | None
    # Staged-rollout knobs: a RolloutConfig makes the scenario's push
    # wave-based; extra_script appends FixSteps (a second device's benign
    # change, so the rollout has multiple waves); expect_quarantine
    # asserts the rolled-back push reported quarantined devices.
    rollout: object = None
    extra_script: tuple = ()
    expect_quarantine: bool = False
    # Approvals/replication knobs: an ApprovalConfig turns on the
    # high-risk quorum gate; audit_replicas >= 1 runs the replicated
    # tamper-evident trail; expect_audit asserts the post-run cross-check
    # verdict ("intact" | "degraded" | "lost") — the tamper scenarios
    # *expect* "degraded" (detection is the success condition).
    approvals: object = None
    audit_replicas: int = 0
    expect_audit: str = None
    # Adversarial-technician knob: an Attack (repro.faults.adversary)
    # overrides the ticket's profile/exemptions, optionally skips the
    # legitimate fix, runs the malicious script + escalation probes, and
    # asserts which layer (monitor or verifier) stopped the attack.
    attack: object = None
    # Multi-tenant knob: a non-empty case name routes the scenario to the
    # front-door isolation runner (repro.faults.tenants) instead of the
    # single-deployment flow below.
    tenants_case: str = ""


@dataclass
class ScenarioOutcome:
    """What one scenario ended in, plus its invariant verdicts."""

    label: str
    network: str
    issue: str
    outcome: str = ""  # committed | rolled-back | not-imported
    crashed: bool = False
    resumed: bool = False
    resolved: bool = False
    rollback_reason: str = ""
    state_invariant: bool = False
    audit_intact: bool = False
    expected: str = None
    expectation_met: bool = True
    faults_fired: list = field(default_factory=list)
    error: str = ""
    # Staged-rollout verdicts (trivially true for monolithic scenarios):
    # a committed staged push must carry a passing MAC-covered audit
    # record for *every* wave, and a scenario expecting quarantine must
    # report at least one quarantined device.
    waves: int = 0
    quarantined: list = field(default_factory=list)
    wave_records_ok: bool = True
    quarantine_ok: bool = True
    # Approvals/replication verdicts (trivially true without the gate):
    # a committed push under an approvals config must carry a granted,
    # change-set-bound approval — proposed exactly once, even across a
    # crash + resume; the replicated trail's cross-check status must match
    # the scenario's expectation.
    audit_status: str = ""
    audit_flagged: list = field(default_factory=list)
    approval_ok: bool = True
    # Adversarial verdicts (trivially true for fault-shaped scenarios):
    # the attack must have drawn at least the expected monitor denials,
    # every escalation probe must have been refused, and the layer the
    # attack expects to be blocked by must actually have blocked it.
    attack_kind: str = ""
    denied_commands: int = 0
    escalations_refused: int = 0
    blocked_by: str = ""
    attack_ok: bool = True
    # Multi-tenant verdicts (trivially true for single-deployment
    # scenarios): zero cross-tenant leaks, violation-refusal records
    # matching the probes exactly, and load shed exactly where expected —
    # see repro.faults.tenants.
    tenant_ok: bool = True
    violations: int = 0
    shed: int = 0

    @property
    def ok(self):
        return self.state_invariant and self.audit_intact and (
            self.expectation_met
        ) and self.wave_records_ok and self.quarantine_ok and (
            self.approval_ok
        ) and self.attack_ok and self.tenant_ok and not self.error

    def to_dict(self):
        return {
            "label": self.label,
            "network": self.network,
            "issue": self.issue,
            "outcome": self.outcome,
            "crashed": self.crashed,
            "resumed": self.resumed,
            "resolved": self.resolved,
            "rollback_reason": self.rollback_reason,
            "state_invariant": self.state_invariant,
            "audit_intact": self.audit_intact,
            "expected": self.expected,
            "expectation_met": self.expectation_met,
            "faults_fired": list(self.faults_fired),
            "error": self.error,
            "waves": self.waves,
            "quarantined": list(self.quarantined),
            "wave_records_ok": self.wave_records_ok,
            "quarantine_ok": self.quarantine_ok,
            "audit_status": self.audit_status,
            "audit_flagged": list(self.audit_flagged),
            "approval_ok": self.approval_ok,
            "attack_kind": self.attack_kind,
            "denied_commands": self.denied_commands,
            "escalations_refused": self.escalations_refused,
            "blocked_by": self.blocked_by,
            "attack_ok": self.attack_ok,
            "tenant_ok": self.tenant_ok,
            "violations": self.violations,
            "shed": self.shed,
            "ok": self.ok,
        }


@dataclass
class CampaignReport:
    """All scenario outcomes of one seeded campaign run."""

    campaign: str
    seed: int
    scenarios: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self):
        return all(outcome.ok for outcome in self.scenarios)

    def to_dict(self):
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "ok": self.ok,
            "scenarios": [outcome.to_dict() for outcome in self.scenarios],
            "metrics": self.metrics,
        }


# -- campaign catalog ---------------------------------------------------------

def _campaigns(seed=7):
    """Campaign name -> scenario list (a function so Rules are fresh).

    ``seed`` parameterises the generated campaigns (today: the
    adversarial attack variants); the hand-written fault campaigns are
    seed-independent — their Rules are seeded at arm time instead.
    """
    push_failures = [
        Scenario(
            label="transient-retried",
            network="university", issue="ospf",
            plan={"device.apply.transient": Rule(nth=1, times=2)},
            expect="committed",
        ),
        Scenario(
            label="fatal-rollback",
            network="university", issue="ospf",
            plan={"device.apply.fatal": Rule(nth=1)},
            expect="rolled-back",
        ),
        Scenario(
            label="transient-exhausted",
            network="university", issue="vlan",
            plan={"device.apply.transient": Rule(probability=1.0, times=99)},
            expect="rolled-back",
        ),
        Scenario(
            label="crash-mid-push-resume",
            network="enterprise", issue="ospf",
            plan={"push.crash": Rule(nth=2)},
            expect="committed",
        ),
        Scenario(
            label="audit-fail-closed",
            network="enterprise", issue="isp",
            # During enforce, append #1 is the verify record and #2 the
            # push's commit record; failing #2 must roll the push back.
            plan={"audit.append": Rule(nth=2)},
            expect="rolled-back",
        ),
    ]
    monitor_timeouts = [
        Scenario(
            label="command-timeout",
            network="university", issue="ospf",
            plan={"monitor.timeout": Rule(nth=2)},
            arm_phase="session",
        ),
        Scenario(
            label="timeout-storm",
            network="enterprise", issue="vlan",
            plan={"monitor.timeout": Rule(probability=0.4, times=99)},
            arm_phase="session",
        ),
    ]
    verify_degraded = [
        Scenario(
            label="worker-death-degrades",
            network="enterprise", issue="ospf",
            plan={"verify.worker": Rule(probability=0.5, times=99)},
            max_workers=4,
            expect="committed",
        ),
        Scenario(
            label="all-workers-die",
            network="university", issue="isp",
            plan={"verify.worker": Rule(probability=1.0, times=9999)},
            max_workers=4,
            expect="committed",
        ),
    ]
    canary_extra = _CANARY_EXTRA["enterprise"]
    canary = [
        Scenario(
            label="canary-clean",
            network="enterprise", issue="ospf",
            plan={},
            rollout=RolloutConfig(), extra_script=canary_extra,
            expect="committed",
        ),
        Scenario(
            label="probe-fail-quarantine",
            network="enterprise", issue="ospf",
            # The second wave's probe reports a violation: its devices are
            # quarantined and the committed first wave rolls back too.
            plan={"rollout.wave.probe_fail": Rule(nth=2)},
            rollout=RolloutConfig(), extra_script=canary_extra,
            expect="rolled-back", expect_quarantine=True,
        ),
        Scenario(
            label="device-flap-breaker",
            network="enterprise", issue="ospf",
            # Every apply flaps; the flap budget is spent after two, the
            # breaker opens, and the device is quarantined.
            plan={"rollout.device.flap": Rule(probability=1.0, times=99)},
            rollout=RolloutConfig(flap_budget=2), extra_script=canary_extra,
            expect="rolled-back", expect_quarantine=True,
        ),
        Scenario(
            label="flap-within-budget",
            network="enterprise", issue="ospf",
            # Two flaps on one device stay under the default budget of 3:
            # retried, probed healthy, committed.
            plan={"rollout.device.flap": Rule(nth=1, times=2)},
            rollout=RolloutConfig(), extra_script=canary_extra,
            expect="committed",
        ),
        Scenario(
            label="crash-midwave-resume",
            network="enterprise", issue="ospf",
            # The pusher dies at the second wave's batch; resume() replays
            # only the uncommitted wave and re-probes it.
            plan={"rollout.crash.midwave": Rule(nth=2)},
            rollout=RolloutConfig(), extra_script=canary_extra,
            expect="committed",
        ),
    ]
    # The ospf fixes score well above this threshold (routing change with
    # a network-wide invalidation cone), so every scenario here runs the
    # full quorum gate; 3 replicas / quorum 2 is the smallest replicated
    # trail that can lose a minority and keep serving.
    risky = RiskConfig(threshold=0.5)
    approvals = [
        Scenario(
            label="quorum-approves-clean",
            network="university", issue="ospf",
            plan={},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="committed", expect_audit="intact",
        ),
        Scenario(
            label="approver-crash-quorum-holds",
            network="university", issue="ospf",
            # One approver abstains; 2-of-3 still reaches quorum.
            plan={"approvals.approver.crash": Rule(nth=1)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="committed", expect_audit="intact",
        ),
        Scenario(
            label="quorum-timeout-denies",
            network="university", issue="ospf",
            # Every approver crashes: zero votes, deny by default.
            plan={"approvals.approver.crash": Rule(probability=1.0, times=99)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="not-imported", expect_audit="intact",
        ),
        Scenario(
            label="forced-timeout-denies",
            network="enterprise", issue="ospf",
            plan={"approvals.timeout": Rule(nth=1)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="not-imported", expect_audit="intact",
        ),
        Scenario(
            label="mediated-conflict-approves",
            network="university", issue="ospf",
            # 2 approve vs 1 reject: mediation upholds the majority.
            plan={},
            approvals=ApprovalConfig(risk=risky, votes={"admin-2": "reject"}),
            audit_replicas=3,
            expect="committed", expect_audit="intact",
        ),
        Scenario(
            label="veto-denies",
            network="university", issue="ospf",
            plan={},
            approvals=ApprovalConfig(
                risk=risky,
                votes={"admin-1": "reject", "admin-2": "reject",
                       "admin-3": "reject"},
            ),
            audit_replicas=3,
            expect="not-imported", expect_audit="intact",
        ),
        Scenario(
            label="break-glass-override",
            network="university", issue="ospf",
            # Unresponsive quorum + a configured emergency actor: granted,
            # but the override is indelibly flagged in the audit chain.
            plan={"approvals.approver.crash": Rule(probability=1.0, times=99)},
            approvals=ApprovalConfig(risk=risky, break_glass_actor="oncall"),
            audit_replicas=3,
            expect="committed", expect_audit="intact",
        ),
        Scenario(
            label="crash-after-approval-resume",
            network="enterprise", issue="ospf",
            # The pusher dies after the journal's approval marker but
            # before the first batch commits; resume() replays the batches
            # WITHOUT re-requesting approvals (the judge asserts exactly
            # one proposed record).
            plan={"push.crash": Rule(nth=1)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="committed", expect_audit="intact",
        ),
        Scenario(
            label="replica-tamper-minority",
            network="university", issue="ospf",
            # One replica's record is rewritten without its key: its own
            # chain breaks, the cross-check flags it, quorum serves on.
            plan={"audit.replica.tamper": Rule(nth=3)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="committed", expect_audit="degraded",
        ),
        Scenario(
            label="replica-partition-diverges",
            network="university", issue="ospf",
            # One replica misses one append: self-valid but diverged.
            plan={"audit.replica.partition": Rule(nth=2)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="committed", expect_audit="degraded",
        ),
        Scenario(
            label="replica-crash-quorum-lost",
            network="university", issue="ospf",
            # Every replica dies on the first fan-out: append quorum lost,
            # the trail fails closed, and nothing is ever imported.
            plan={"audit.replica.crash": Rule(probability=1.0, times=99)},
            approvals=ApprovalConfig(risk=risky), audit_replicas=3,
            expect="not-imported", expect_audit="lost",
        ),
    ]
    # Attacker-shaped coverage: every scenario is a seeded Attack riding a
    # legitimate cover ticket; the attack's own expectations (denials,
    # refused escalations, blocking layer) compose with the two-state
    # invariant judge all scenarios share.
    adversarial = [
        Scenario(
            label=attack.label,
            network=attack.network,
            issue=attack.cover_issue,
            plan={},
            expect=attack.expect,
            attack=attack,
        )
        for attack in generate_attacks(seed)
    ]
    # Multi-tenant isolation: every scenario stands up a two-org front
    # door (repro.faults.tenants) and is judged on zero cross-tenant
    # leaks, probe-exact violation records, and bounded-queue shedding on
    # top of the shared state/audit invariants.
    tenants = [
        Scenario(
            label="clean-isolation",
            network="university", issue="ospf",
            plan={}, tenants_case="clean",
            expect="committed",
        ),
        Scenario(
            label="cross-tenant-denied",
            network="university", issue="ospf",
            plan={}, tenants_case="cross-tenant",
            expect="committed",
        ),
        Scenario(
            label="token-theft-refused",
            network="university", issue="ospf",
            plan={"tenancy.token.theft": Rule(nth=1)},
            tenants_case="token-theft",
            expect="committed",
        ),
        Scenario(
            label="token-replay-refused",
            network="university", issue="vlan",
            plan={"tenancy.token.replay": Rule(nth=1)},
            tenants_case="token-replay",
            expect="committed",
        ),
        Scenario(
            label="expired-token-race",
            network="university", issue="ospf",
            plan={"tenancy.token.expired": Rule(nth=1)},
            tenants_case="expired-race",
            expect="committed",
        ),
        Scenario(
            label="registry-crash-fail-closed",
            network="enterprise", issue="ospf",
            plan={"tenancy.registry.crash": Rule(nth=1)},
            tenants_case="registry-crash",
            expect="committed",
        ),
        Scenario(
            label="queue-flood-sheds",
            network="university", issue="ospf",
            plan={"frontdoor.queue.flood": Rule(probability=1.0, times=3)},
            tenants_case="queue-flood",
            expect="committed",
        ),
        Scenario(
            label="noisy-neighbor-isolated",
            network="university", issue="ospf",
            plan={"frontdoor.noisy.neighbor": Rule(nth=1)},
            tenants_case="noisy-neighbor",
            expect="committed",
        ),
        Scenario(
            label="break-glass-elevation",
            network="university", issue="ospf",
            # Every approver crashes during the *elevation* round; the
            # configured break-glass actor rescues it, indelibly flagged.
            plan={"approvals.approver.crash": Rule(probability=1.0,
                                                   times=99)},
            tenants_case="break-glass",
            expect="committed",
        ),
    ]
    smoke = [
        push_failures[0], push_failures[1], push_failures[3],
        push_failures[4],
        monitor_timeouts[0],
        verify_degraded[0],
        canary[1], canary[4],
    ]
    return {
        "push-failures": push_failures,
        "monitor-timeouts": monitor_timeouts,
        "verify-degraded": verify_degraded,
        "canary": canary,
        "approvals": approvals,
        "adversarial": adversarial,
        "tenants": tenants,
        "smoke": smoke,
    }


def campaign_names():
    """The runnable campaign names."""
    return sorted(_campaigns())


def campaigns(seed=7):
    """Campaign name -> scenario list (fresh Rules; safe to introspect)."""
    return _campaigns(seed)


# -- runner -------------------------------------------------------------------

def run_campaign(name, seed):
    """Run campaign ``name`` under ``seed``; returns a :class:`CampaignReport`.

    Observability is enabled for the duration so fault paths land in the
    metrics the report surfaces (and in spans/audit correlation).
    """
    campaigns = _campaigns(seed)
    if name not in campaigns:
        raise ReproError(
            f"unknown campaign {name!r}; choose from "
            f"{', '.join(sorted(campaigns))}"
        )
    report = CampaignReport(campaign=name, seed=seed)
    obs.reset()
    obs.enable()
    try:
        for index, scenario in enumerate(campaigns[name]):
            report.scenarios.append(
                run_scenario(scenario, seed=f"{seed}:{index}:{scenario.label}")
            )
    finally:
        obs.disable()
    registry = obs.registry()
    report.metrics = {
        metric_name: registry.get(metric_name).value
        for metric_name in REPORT_METRICS
        if registry.get(metric_name) is not None
    }
    return report


def run_scenario(scenario, seed):
    """Run one scenario; always disarms the fault registry on exit."""
    if scenario.tenants_case:
        from repro.faults.tenants import run_tenants_scenario

        return run_tenants_scenario(scenario, seed)
    outcome = ScenarioOutcome(
        label=scenario.label, network=scenario.network, issue=scenario.issue,
        expected=scenario.expect,
    )
    network = _BUILDERS[scenario.network]()
    policies = mine_policies(network)
    issue = standard_issues(scenario.network)[scenario.issue]
    issue.inject(network)
    heimdall = Heimdall(
        network, policies=policies, max_workers=scenario.max_workers,
        rollout=scenario.rollout, approvals=scenario.approvals,
        audit_replicas=scenario.audit_replicas,
    )
    attack = scenario.attack
    open_kwargs = {}
    if attack is not None:
        outcome.attack_kind = attack.kind
        if attack.profile:
            open_kwargs["profile"] = attack.profile
        if attack.exempt_devices:
            open_kwargs["exempt_devices"] = tuple(attack.exempt_devices)
    session = heimdall.open_ticket(issue, **open_kwargs)
    ticket_outcome = None
    try:
        if scenario.arm_phase == "session":
            faults.arm(scenario.plan, seed=seed)
        if attack is None or attack.run_fix:
            session.run_fix_script(issue.fix_script)
        if scenario.extra_script:
            session.run_fix_script(scenario.extra_script)
        if attack is not None:
            # The malicious part of the ticket: denied commands come back
            # as failed results (never exceptions), refused escalations
            # raise and are counted — both are the defense working.
            for step in attack.script:
                for command in step.commands:
                    session.execute(step.device, command)
            outcome.denied_commands = session.twin.monitor.stats.denied
            for requested in attack.escalations:
                try:
                    session.request_escalation(requested, attack.label)
                except PrivilegeError:
                    outcome.escalations_refused += 1
        # The twin session never touches production: this is the pre-push
        # baseline the atomicity invariant compares against.
        baseline = network.copy()
        if scenario.arm_phase == "push":
            faults.arm(scenario.plan, seed=seed)
        try:
            ticket_outcome = session.submit()
        except PushCrashed as crash:
            outcome.crashed = True
            resume_kwargs = {}
            if scenario.rollout is not None:
                resume_kwargs["policy_verifier"] = PolicyVerifier(
                    heimdall.policies
                )
            resumed = heimdall.scheduler.resume(
                network, crash.journal,
                audit=heimdall.audit, actor="recovery", clock=heimdall.clock,
                **resume_kwargs,
            )
            outcome.resumed = resumed.resumed
        except AuditQuorumError:
            # The replicated trail lost its append quorum mid-enforce:
            # everything downstream fails closed. Nothing was imported —
            # the state invariant and the "lost" cross-check verdict below
            # are the assertions, not an error.
            pass
        outcome.faults_fired = [
            f"{firing.point}#{firing.call_index}"
            for firing in faults.registry().firings
        ]
    except ReproError as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"
        baseline = None
    finally:
        faults.disarm()

    _judge(outcome, heimdall, network, baseline, issue)
    if scenario.expect is not None:
        outcome.expectation_met = outcome.outcome == scenario.expect
    if scenario.expect_quarantine:
        outcome.quarantine_ok = bool(outcome.quarantined)
    if scenario.expect_audit is not None:
        # For replication scenarios the cross-check verdict IS the
        # assertion: a tampered minority must be *detected* (degraded), a
        # lost quorum must be *reported* as lost — both count as the audit
        # layer working.
        outcome.audit_intact = outcome.audit_status == scenario.expect_audit
    if scenario.attack is not None:
        _judge_attack(outcome, scenario.attack, ticket_outcome)
    return outcome


def _judge_attack(outcome, attack, ticket_outcome):
    """Every seeded attack must be stopped by the layer it targets.

    ``monitor``-blocked attacks must draw at least ``min_denied``
    denied-with-reason results; ``verifier``-blocked attacks must end in a
    rejected enforcement decision. Escalation probes must all be refused.
    The state/audit invariants (shared with every chaos scenario) separately
    prove nothing malicious reached production.
    """
    checks = [
        outcome.denied_commands >= attack.min_denied,
        outcome.escalations_refused == len(attack.escalations),
    ]
    if attack.expect_blocked_by == "verifier":
        checks.append(
            ticket_outcome is not None and not ticket_outcome.approved
        )
    outcome.attack_ok = all(checks)
    if outcome.attack_ok:
        outcome.blocked_by = attack.expect_blocked_by


def _judge(outcome, heimdall, network, baseline, issue):
    """Fill in the outcome classification and invariant verdicts."""
    journal = heimdall.scheduler.last_journal
    if baseline is None:
        # The scenario errored before a baseline existed; nothing to judge.
        outcome.state_invariant = False
        outcome.audit_intact = heimdall.audit.verify()
        _judge_replication(outcome, heimdall)
        outcome.outcome = "error"
        return

    if journal is None:
        outcome.outcome = "not-imported"
    else:
        outcome.outcome = journal.state
        outcome.rollback_reason = next(
            (entry.detail for entry in journal.entries
             if entry.kind == "rolled-back"),
            "",
        )

    actual = {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }
    pre_push = {
        device: serialize_config(config)
        for device, config in baseline.configs.items()
    }
    if journal is None or journal.state == "rolled-back":
        outcome.state_invariant = actual == pre_push
    else:
        from repro.config.apply import apply_changes

        expected_network = baseline.copy()
        for batch in journal.batches:
            apply_changes(expected_network.configs, batch)
        expected = {
            device: serialize_config(config)
            for device, config in expected_network.configs.items()
        }
        outcome.state_invariant = actual == expected
    outcome.resolved = issue.is_resolved(network)
    outcome.audit_intact = heimdall.audit.verify()
    _judge_replication(outcome, heimdall)
    _judge_approval(outcome, heimdall, journal)

    if journal is not None and journal.wave_plan is not None:
        outcome.waves = len(journal.committed_waves)
        outcome.quarantined = journal.quarantined_devices()
        if journal.state == "committed":
            # Every wave of a committed staged push must have left an
            # allowed wave record in the audit trail — including waves
            # replayed by resume() after a crash.
            wave_records = {
                record.resource
                for record in heimdall.audit.query(
                    action_prefix="enforcer.wave", allowed=True
                )
            }
            outcome.wave_records_ok = all(
                f"production:wave:{entry['index']}" in wave_records
                for entry in journal.wave_plan
            )


def _judge_replication(outcome, heimdall):
    """Record the replicated trail's cross-check verdict, when one runs."""
    if not isinstance(heimdall.audit, ReplicatedAuditTrail):
        return
    verdict = heimdall.audit.cross_check()
    outcome.audit_status = verdict.status
    outcome.audit_flagged = [
        f"replica {index}: {reason}" for index, reason in verdict.flagged
    ]


def _judge_approval(outcome, heimdall, journal):
    """No unapproved high-risk change is ever pushed.

    A committed journal under an approvals deployment must carry a granted
    approval bound to it, and the request must have been proposed exactly
    once — a crash + resume never re-runs the quorum round.
    """
    if heimdall.approvals is None:
        return
    if journal is None or journal.state != "committed":
        return  # nothing imported: deny-by-default held by construction
    if outcome.audit_status == "lost":
        # A lost trail cannot prove the approval history; reads would
        # fail closed anyway, so treat the committed push as unproven.
        outcome.approval_ok = False
        return
    proposed = heimdall.audit.query(action_prefix="approvals.proposed")
    granted = heimdall.audit.query(
        action_prefix="approvals.decision", allowed=True
    )
    if not proposed and journal.approval_id is None:
        return  # the change set scored below the gate; nothing to prove
    outcome.approval_ok = (
        bool(journal.approval_id)
        and len(proposed) == 1
        and len(granted) == 1
    )
