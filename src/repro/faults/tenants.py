"""The multi-tenant chaos runner: isolation probes behind the front door.

Each ``tenants`` scenario stands up a two-org :class:`FrontDoor` (orgs
``acme`` and ``blue``, each on its own copy of the scenario network),
injects the scenario issue into **both** orgs' productions, then runs a
case-specific probe sequence — cross-tenant presentations, stolen /
replayed / expired tokens, a registry crash mid-admission, a queue flood,
a noisy neighbor, a break-glass scope elevation — with the scenario's
fault plan armed.

The judge holds every scenario to the isolation invariants
docs/ROBUSTNESS.md specifies:

* **zero cross-tenant leaks** — every org whose production the probe was
  not entitled to change is byte-identical to its pre-probe snapshot, and
  the count of ``tenancy.violation`` refusal records on each org's chain
  matches the probes exactly (no silent refusals, no spurious ones);
* **refusals are on the record** — every violation record is
  ``allowed=False`` and each org's HMAC audit chain still verifies, so
  the refusal history is tamper-evident;
* **bounded queues stay bounded** — load shedding happened exactly where
  expected (typed :class:`~repro.util.errors.FrontDoorOverloadError`
  carrying a retry-after hint), and nowhere else.

Admissions run strictly sequentially (each waits for its result before
the next) so ``nth``-based fault rules stay deterministic.
"""

from repro import faults
from repro.config.serializer import serialize_config
from repro.core.frontdoor import FrontDoor
from repro.core.tenancy import TenantSpec
from repro.faults.chaos import _BUILDERS, ScenarioOutcome
from repro.scenarios.issues import standard_issues
from repro.util.errors import (
    CapabilityDeniedError,
    FrontDoorOverloadError,
    ReproError,
    TenantIsolationError,
    TenantRegistryError,
    TokenExpiredError,
    TokenReplayError,
)

ORG_A = "acme"
ORG_B = "blue"


def _snapshot(network):
    return {
        device: serialize_config(config)
        for device, config in network.configs.items()
    }


def _case_config(case):
    """(spec_a kwargs, spec_b kwargs, FrontDoor kwargs) for ``case``."""
    if case == "noisy-neighbor":
        # No refill: once the injected storm drains acme's bucket, acme
        # stays shed while blue keeps being admitted off its own bucket.
        return {"rate_per_s": 0.0, "burst": 2}, {}, {}
    if case == "break-glass":
        from repro.core.approvals import ApprovalConfig
        from repro.core.enforcer.risk import RiskConfig

        # The org's technicians start without session.submit; the probe
        # must earn it through the approvals machinery. The risk threshold
        # is set above any score so the ticket push itself never queues a
        # second quorum round behind the armed approver-crash plan.
        return (
            {"scopes": ("session.open", "audit.read")},
            {},
            {"approvals": ApprovalConfig(
                risk=RiskConfig(threshold=10.0),
                break_glass_actor="oncall",
            )},
        )
    return {}, {}, {}


def _expect(checks, name, error_type, probe):
    """Run ``probe`` expecting ``error_type``; records the verdict.

    Returns the caught error (the refusal being the success condition) or
    ``None`` when the probe wrongly succeeded / failed differently.
    """
    try:
        probe()
    except error_type as exc:
        checks.append((name, True))
        return exc
    except ReproError as exc:
        checks.append((f"{name}: wrong error {type(exc).__name__}", False))
        return None
    checks.append((f"{name}: not refused", False))
    return None


def run_tenants_scenario(scenario, seed):
    """Run one ``tenants`` scenario; returns its :class:`ScenarioOutcome`."""
    outcome = ScenarioOutcome(
        label=scenario.label, network=scenario.network, issue=scenario.issue,
        expected=scenario.expect,
    )
    case = scenario.tenants_case
    build = _BUILDERS[scenario.network]
    spec_a, spec_b, frontdoor_kwargs = _case_config(case)
    net_a, net_b = build(), build()
    frontdoor = FrontDoor(
        [
            TenantSpec(org_id=ORG_A, network=net_a, **spec_a),
            TenantSpec(org_id=ORG_B, network=net_b, **spec_b),
        ],
        **frontdoor_kwargs,
    )
    issue_a = standard_issues(scenario.network)[scenario.issue]
    issue_b = standard_issues(scenario.network)[scenario.issue]
    issue_a.inject(net_a)
    issue_b.inject(net_b)
    baselines = {ORG_A: _snapshot(net_a), ORG_B: _snapshot(net_b)}
    issues = {ORG_A: issue_a, ORG_B: issue_b}
    tokens = {
        ORG_A: frontdoor.issue_token(ORG_A, "tech-a"),
        ORG_B: frontdoor.issue_token(ORG_B, "tech-b"),
    }
    expectations = None
    try:
        faults.arm(scenario.plan, seed=seed)
        expectations = _probe(case, frontdoor, tokens, issues)
        outcome.faults_fired = [
            f"{firing.point}#{firing.call_index}"
            for firing in faults.registry().firings
        ]
    except ReproError as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"
    finally:
        faults.disarm()
        frontdoor.close()
    if expectations is not None:
        _judge_tenants(outcome, frontdoor, baselines, issues, expectations)
        if scenario.expect is not None:
            outcome.expectation_met = outcome.outcome == scenario.expect
    return outcome


# -- case probes ---------------------------------------------------------------

def _probe(case, frontdoor, tokens, issues):
    """Run ``case``'s probe sequence; returns the judge's expectations."""
    checks = []
    if case == "clean":
        out_a = frontdoor.resolve_ticket(
            tokens[ORG_A], ORG_A, issues[ORG_A]
        ).result()
        out_b = frontdoor.resolve_ticket(
            tokens[ORG_B], ORG_B, issues[ORG_B]
        ).result()
        checks.append(("acme imported", out_a.status == "clean"))
        checks.append(("blue imported", out_b.status == "clean"))
        return _expectations(
            checks, resolved=(ORG_A, ORG_B), violations={}, shed=0
        )
    if case == "cross-tenant":
        _expect(
            checks, "cross-tenant admit refused", TenantIsolationError,
            lambda: frontdoor.admit(
                tokens[ORG_A], ORG_B, lambda manager: None
            ),
        )
        _expect(
            checks, "cross-tenant audit export refused", TenantIsolationError,
            lambda: frontdoor.audit_export(tokens[ORG_A], ORG_B),
        )
        frontdoor.resolve_ticket(tokens[ORG_B], ORG_B, issues[ORG_B]).result()
        return _expectations(
            checks, resolved=(ORG_B,), violations={ORG_B: 2}, shed=0
        )
    if case == "token-theft":
        _expect(
            checks, "stolen token refused", TenantIsolationError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        frontdoor.resolve_ticket(tokens[ORG_A], ORG_A, issues[ORG_A]).result()
        return _expectations(
            checks, resolved=(ORG_A,), violations={ORG_A: 1}, shed=0
        )
    if case == "token-replay":
        _expect(
            checks, "replayed token refused", TokenReplayError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        frontdoor.resolve_ticket(tokens[ORG_A], ORG_A, issues[ORG_A]).result()
        return _expectations(
            checks, resolved=(ORG_A,), violations={}, shed=0
        )
    if case == "expired-race":
        _expect(
            checks, "expiry race denied", TokenExpiredError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        frontdoor.resolve_ticket(tokens[ORG_A], ORG_A, issues[ORG_A]).result()
        return _expectations(
            checks, resolved=(ORG_A,), violations={}, shed=0
        )
    if case == "registry-crash":
        _expect(
            checks, "registry crash fails closed", TenantRegistryError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        frontdoor.resolve_ticket(tokens[ORG_A], ORG_A, issues[ORG_A]).result()
        return _expectations(
            checks, resolved=(ORG_A,), violations={}, shed=0
        )
    if case == "queue-flood":
        for attempt in range(3):
            overload = _expect(
                checks, f"flooded admission {attempt + 1} shed",
                FrontDoorOverloadError,
                lambda: frontdoor.resolve_ticket(
                    tokens[ORG_A], ORG_A, issues[ORG_A]
                ),
            )
            checks.append((
                f"shed {attempt + 1} carries retry-after",
                overload is not None
                and overload.retry_after_s is not None,
            ))
        frontdoor.resolve_ticket(tokens[ORG_A], ORG_A, issues[ORG_A]).result()
        return _expectations(
            checks, resolved=(ORG_A,), violations={}, shed=3
        )
    if case == "noisy-neighbor":
        _expect(
            checks, "storm drains own bucket", FrontDoorOverloadError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        _expect(
            checks, "noisy org still shed", FrontDoorOverloadError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        frontdoor.resolve_ticket(tokens[ORG_B], ORG_B, issues[ORG_B]).result()
        return _expectations(
            checks, resolved=(ORG_B,), violations={}, shed=2
        )
    if case == "break-glass":
        _expect(
            checks, "submit scope denied by default", CapabilityDeniedError,
            lambda: frontdoor.resolve_ticket(
                tokens[ORG_A], ORG_A, issues[ORG_A]
            ),
        )
        deployment = frontdoor.deployment(ORG_A)
        elevated = deployment.authority.elevate(
            tokens[ORG_A], "session.submit", deployment.heimdall.approvals,
            justification="sev-1: customer outage",
        )
        checks.append((
            "elevated token carries scope",
            "session.submit" in elevated.scopes,
        ))
        _expect(
            checks, "superseded token refused as replay", TokenReplayError,
            lambda: deployment.authority.validate(
                tokens[ORG_A], "session.open"
            ),
        )
        frontdoor.resolve_ticket(elevated, ORG_A, issues[ORG_A]).result()
        elevations = deployment.heimdall.audit.query(
            action_prefix="tenancy.elevate"
        )
        checks.append((
            "break-glass elevation flagged on the chain",
            len(elevations) == 1
            and "break-glass" in elevations[0].outcome,
        ))
        return _expectations(
            checks, resolved=(ORG_A,), violations={}, shed=0
        )
    raise ReproError(f"unknown tenants case {case!r}")


def _expectations(checks, resolved, violations, shed):
    return {
        "checks": checks,
        "resolved": frozenset(resolved),
        "violations": violations,  # org -> expected refusal-record count
        "shed": shed,
    }


# -- judge ---------------------------------------------------------------------

def _judge_tenants(outcome, frontdoor, baselines, issues, expectations):
    """Hold the scenario to the isolation + bounded-queue invariants."""
    state_ok = True
    audit_ok = True
    violation_records = 0
    shed_total = 0
    for org_id in (ORG_A, ORG_B):
        tenant = frontdoor.deployment(org_id)
        heimdall = tenant.heimdall
        shed_total += tenant.shed
        if not heimdall.audit.verify():
            audit_ok = False
        refusals = heimdall.audit.query(action_prefix="tenancy.violation")
        violation_records += len(refusals)
        if any(record.allowed for record in refusals):
            audit_ok = False
        expected = expectations["violations"].get(org_id, 0)
        if len(refusals) != expected:
            outcome.tenant_ok = False
        if org_id in expectations["resolved"]:
            if not issues[org_id].is_resolved(heimdall.production):
                state_ok = False
        elif _snapshot(heimdall.production) != baselines[org_id]:
            # Zero cross-tenant leaks: an org the probe had no business
            # changing must be byte-identical to its pre-probe snapshot.
            state_ok = False
    outcome.state_invariant = state_ok
    outcome.audit_intact = audit_ok
    outcome.violations = violation_records
    outcome.shed = shed_total
    outcome.resolved = all(
        issues[org_id].is_resolved(
            frontdoor.deployment(org_id).heimdall.production
        )
        for org_id in expectations["resolved"]
    )
    if shed_total != expectations["shed"]:
        outcome.tenant_ok = False
    failed = [name for name, passed in expectations["checks"] if not passed]
    if failed:
        outcome.tenant_ok = False
        outcome.error = "; ".join(failed)
    outcome.outcome = "committed" if outcome.resolved else "not-imported"
