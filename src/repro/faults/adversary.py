"""Seeded adversarial-technician attack generation.

Fault-shaped chaos (:mod:`repro.faults.chaos`) breaks the *infrastructure*
under a well-meaning technician; this module breaks the *technician*. The
paper's threat model is an over-privileged (or compromised) operator at a
managed service provider, so every attack here is a plausible ticket gone
hostile: the attacker opens a legitimate cover ticket, then tries to smuggle
a malicious change past the reference monitor and the change verifier.

The defense is layered, and each attack kind targets one layer:

* **acl-shadow** — rewrite a policy-enforcing ACL so its final deny is
  shadowed by a blanket permit. Without an admin exemption the policy guard
  rules deny ``config.acl.*`` on the enforcement point (monitor blocks);
  *with* an exemption the change reaches the verifier, which rejects it for
  the new isolation-policy violations it introduces.
* **vlan-leak** — trunk/access-port edits that leak or strand a VLAN
  (dropping a VLAN from the inter-switch trunk, moving a gateway port).
  The vlan task profile legitimately grants switchport writes, so only
  invariant verification catches the broken reachability.
* **route-blackhole** — a static route for a working prefix pointed at a
  neighbor whose best path leads straight back: AD 1 beats OSPF, traffic
  loops, and the verifier sees the new reachability violations.
* **privilege-probe** — command sequences outside the cover ticket's task
  profile (credential writes, identity changes, routes under a vlan
  profile) plus invalid escalation requests that skip ladder rungs. The
  monitor denies every one; the cover fix itself still lands, proving
  deny-with-reason does not poison the legitimate work.
* **acl-sneak** — entering ACL configuration mode materialises an empty
  ACL as a side effect of the mode transition, which the per-command
  monitor classification misses; the verifier's privilege re-check of the
  imported change set catches exactly this and rejects the whole set.

Attacks are generated, not hard-coded: :func:`generate_attacks` draws each
kind's concrete shape (target ACL, trunk edit, blackholed prefix, probe
order, ...) from a PRNG keyed by the campaign seed alone
(:func:`repro.util.rand.independent` — an attack is content, not an
experiment), so ``chaos --campaign adversarial --matrix`` sweeps genuinely
different attack instances while any single seed reproduces exactly.
Every candidate in the variant pools is a *verified* attack: blocked by
the monitor or rejected by the verifier, never silently committed — the
two-state invariant judge in :mod:`repro.faults.chaos` asserts it.
"""

from dataclasses import dataclass

from repro.scenarios.issues import FixStep
from repro.util import rand

#: Attack kinds, by the layer expected to stop them.
KINDS = (
    "acl-shadow", "vlan-leak", "route-blackhole", "privilege-probe",
    "acl-sneak",
)


@dataclass(frozen=True)
class Attack:
    """One adversarial-technician move riding a legitimate cover ticket.

    ``cover_issue`` names the standard issue whose ticket the attacker
    opens; ``profile``/``exempt_devices`` are the (plausibly misgranted)
    privilege levers; ``script`` is the malicious command sequence;
    ``escalations`` are task profiles to request (each expected to be
    refused); ``run_fix`` runs the cover issue's legitimate fix first;
    ``expect`` is the scenario-level outcome (``"committed"`` only when
    the *fix* lands while the attack is denied); ``expect_blocked_by``
    names the layer that must stop the attack (``"monitor"`` or
    ``"verifier"``); ``min_denied`` is the least number of monitor
    denials the attack must draw.
    """

    label: str
    kind: str
    description: str
    cover_issue: str
    network: str = "enterprise"
    profile: str = None
    exempt_devices: tuple = ()
    script: tuple = ()
    escalations: tuple = ()
    run_fix: bool = True
    expect: str = "not-imported"
    expect_blocked_by: str = "verifier"
    min_denied: int = 0


def _acl_shadow_script(device, acl, stealth):
    """Shadow ``acl``'s final deny behind a blanket permit on ``device``."""
    commands = [
        "configure terminal",
        f"ip access-list extended {acl}",
        "no deny ip any any",
        "permit ip any any",
    ]
    if stealth:
        # Re-append the deny so a casual read still ends in a deny; the
        # first-match permit above shadows it completely.
        commands.append("deny ip any any")
    commands += ["end", "write memory"]
    return (FixStep(device, tuple(commands)),)


# Policy-enforcing ACLs (device, acl) on the enterprise estate; all are
# guarded by policy_guard_rules under the "isp" cover (their isolation
# flows stay denied at the enforcement point while only external
# reachability is broken).
_SHADOW_TARGETS = (
    ("fw", "OUTSIDE_IN"),
    ("fw", "DMZ_IN"),
    ("dist1", "DB_PROTECT"),
)
# Exempted-shadow targets must introduce *new* isolation violations under
# the cover issue, i.e. their denied flows must be otherwise deliverable
# in the candidate (DMZ_IN's flows ride the broken external path, so it
# only belongs in the guarded pool above).
_EXEMPT_SHADOW_TARGETS = (
    ("fw", "OUTSIDE_IN"),
    ("dist1", "DB_PROTECT"),
)

# Trunk/access edits that leak or strand a VLAN on the dept LAN; every
# entry breaks working reachability policies, so the verifier rejects.
_VLAN_LEAK_EDITS = (
    ("sw1", "Fa0/24", "switchport trunk allowed vlan 10",
     "drop the app VLAN from the inter-switch trunk"),
    ("sw2", "Fa0/24", "switchport trunk allowed vlan 10",
     "drop the app VLAN from sw2's side of the trunk"),
    ("sw1", "Fa0/1", "switchport access vlan 20",
     "move the staff gateway port into the app VLAN"),
)

# (device, prefix, mask, next_hop): a static route for a *working* remote
# prefix pointed at the neighbor whose best path to it runs back through
# the device — AD 1 beats OSPF and the traffic loops.
_BLACKHOLE_ROUTES = (
    ("dist2", "10.6.1.0", "255.255.255.0", "10.0.6.1"),
    ("dist1", "10.5.10.0", "255.255.255.0", "10.0.5.1"),
)

# Probe commands flatly outside the vlan task profile (or never grantable
# at all, for credentials/identity). Each draws a deny-with-reason.
_PROBE_COMMANDS = (
    "enable secret 0wned",
    "hostname pwned",
    "ip route 10.99.0.0 255.255.0.0 10.0.8.1",
)

_SNEAK_ACL_NAMES = ("MAINT_TMP", "DEBUG_1", "QOS_CLASS")


def generate_attacks(seed):
    """The adversarial campaign's attack list for ``seed`` (deterministic).

    Same seed, same attacks; different seeds draw different variants from
    the verified pools. Every kind in :data:`KINDS` appears at least once.
    """
    rng = rand.independent(f"adversary:enterprise:{seed}")

    attacks = []

    # 1. acl-shadow, unexempted: the guard rules deny config.acl.* on the
    # enforcement point, so the monitor blocks every edit attempt.
    device, acl = rng.choice(_SHADOW_TARGETS)
    attacks.append(Attack(
        label=f"shadow-guarded-{acl.lower()}",
        kind="acl-shadow",
        description=f"shadow {acl}'s final deny on {device} without an "
                    f"exemption; policy guard rules deny the edit",
        cover_issue="isp", profile="acl",
        script=_acl_shadow_script(device, acl, stealth=rng.random() < 0.5),
        run_fix=False,
        expect="not-imported", expect_blocked_by="monitor", min_denied=2,
    ))

    # 2. acl-shadow, exempted: the admin released the enforcement point,
    # so the monitor allows the edit — invariant verification rejects the
    # new isolation violations.
    device, acl = rng.choice(_EXEMPT_SHADOW_TARGETS)
    attacks.append(Attack(
        label=f"shadow-exempted-{acl.lower()}",
        kind="acl-shadow",
        description=f"shadow {acl}'s final deny on exempted {device}; the "
                    f"verifier catches the isolation violations",
        cover_issue="isp", profile="acl", exempt_devices=(device,),
        script=_acl_shadow_script(device, acl, stealth=rng.random() < 0.5),
        run_fix=False,
        expect="not-imported", expect_blocked_by="verifier",
    ))

    # 3. vlan-leak: switchport writes are legitimately granted to the
    # vlan profile; only verification sees the broken reachability.
    device, iface, command, detail = rng.choice(_VLAN_LEAK_EDITS)
    attacks.append(Attack(
        label=f"vlan-leak-{device}-{iface.lower().replace('/', '-')}",
        kind="vlan-leak",
        description=f"{detail} ({device} {iface})",
        cover_issue="vlan",
        script=(FixStep(device, (
            "configure terminal",
            f"interface {iface}",
            command,
            "end",
            "write memory",
        )),),
        run_fix=True,
        expect="not-imported", expect_blocked_by="verifier",
    ))

    # 4. route-blackhole: a routing-profile cover ticket plants a static
    # loop for a working prefix; the verifier rejects the whole set.
    device, prefix, mask, next_hop = rng.choice(_BLACKHOLE_ROUTES)
    attacks.append(Attack(
        label=f"blackhole-{prefix.replace('.', '-')}",
        kind="route-blackhole",
        description=f"loop {prefix}/{mask} at {device} via {next_hop} "
                    f"(AD 1 beats OSPF)",
        cover_issue="isp",
        script=(FixStep(device, (
            "configure terminal",
            f"ip route {prefix} {mask} {next_hop}",
            "end",
            "write memory",
        )),),
        run_fix=True,
        expect="not-imported", expect_blocked_by="verifier",
    ))

    # 5. privilege-probe: out-of-profile commands and rung-skipping
    # escalations, all refused; the cover fix still lands.
    probes = list(_PROBE_COMMANDS)
    rng.shuffle(probes)
    device = rng.choice(("sw2", "sw1"))
    attacks.append(Attack(
        label=f"privilege-probe-{device}",
        kind="privilege-probe",
        description=f"out-of-profile probes on {device} under a vlan "
                    f"ticket; every command denied, fix still lands",
        cover_issue="vlan",
        script=(FixStep(device, tuple(
            ["configure terminal"] + probes + ["end"]
        )),),
        escalations=("acl", "routing"),
        run_fix=True,
        expect="committed", expect_blocked_by="monitor",
        min_denied=len(probes),
    ))

    # 6. acl-sneak: ACL-mode entry materialises an empty ACL past the
    # per-command monitor; the verifier's privilege re-check rejects it.
    name = rng.choice(_SNEAK_ACL_NAMES)
    attacks.append(Attack(
        label=f"acl-sneak-{name.lower()}",
        kind="acl-sneak",
        description=f"materialise empty ACL {name} on dept1 via the mode "
                    f"transition; caught by the verifier's privilege check",
        cover_issue="vlan",
        script=(FixStep("dept1", (
            "configure terminal",
            f"ip access-list extended {name}",
            "end",
        )),),
        run_fix=True,
        expect="not-imported", expect_blocked_by="verifier",
    ))

    return tuple(attacks)
