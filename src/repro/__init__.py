"""Heimdall: least privilege for managed network services.

A full reproduction of Liu, Li, Canel & Sekar, *Watching the watchmen:
Least privilege for managed network services* (HotNets'21), including every
substrate the paper rides on: an IOS-style configuration layer, an
OSPF/static/VLAN control plane with ACL-aware forwarding analysis, a network
emulator with interactive consoles, policy mining/verification, and the MSP
workflow machinery (RMM baseline, ticketing, scripted technicians).

Typical use::

    from repro import (
        Heimdall, build_enterprise_network, mine_policies, standard_issues,
    )

    production = build_enterprise_network()
    policies = mine_policies(production)

    issue = standard_issues("enterprise")["vlan"]
    issue.inject(production)

    heimdall = Heimdall(production, policies=policies)
    session = heimdall.open_ticket(issue)
    session.run_fix_script(issue.fix_script)
    outcome = session.submit()
    assert outcome.resolved
"""

from repro.attack.surface import evaluate_approaches, evaluate_exposure
from repro.control.builder import build_dataplane
from repro.core.heimdall import Heimdall, TicketOutcome
from repro.dataplane.differential import diff_reachability
from repro.core.privilege.ast import PrivilegeSpec
from repro.core.privilege.parser import dump_privilege_spec, load_privilege_spec
from repro.core.twin.twin import TwinNetwork
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.emulation.network import EmulatedNetwork
from repro.msp.ticketing import TicketSystem
from repro.msp.workflows import CurrentWorkflow, HeimdallWorkflow
from repro.net.flow import Flow
from repro.net.network import Network
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.msp.shell import TechnicianShell
from repro.scenarios.builder import NetworkBuilder
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.io import load_network, save_network
from repro.scenarios.issues import interface_down_issues, standard_issues
from repro.scenarios.university import build_university_network

__version__ = "0.1.0"

__all__ = [
    "CurrentWorkflow",
    "EmulatedNetwork",
    "Flow",
    "Heimdall",
    "HeimdallWorkflow",
    "Network",
    "NetworkBuilder",
    "PolicyVerifier",
    "PrivilegeSpec",
    "ReachabilityAnalyzer",
    "TechnicianShell",
    "TicketOutcome",
    "TicketSystem",
    "TwinNetwork",
    "build_dataplane",
    "build_enterprise_network",
    "build_university_network",
    "diff_reachability",
    "dump_privilege_spec",
    "evaluate_approaches",
    "evaluate_exposure",
    "interface_down_issues",
    "load_network",
    "load_privilege_spec",
    "mine_policies",
    "save_network",
    "standard_issues",
]
