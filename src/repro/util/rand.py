"""Confined randomness, mirroring how :mod:`repro.util.clock` confines time.

Determinism is a feature: chaos campaigns must replay from a single seed,
and backoff jitter must not make retry timing differ run-to-run. So the
``random`` module is importable only here (``tests/util/test_no_random.py``
greps the tree, the same lint pattern as the wall-clock test) and every
consumer draws from named, seed-derived streams:

>>> from repro.util import rand
>>> rand.seed(7)
>>> rand.derive("faults").random() == rand.derive("faults").random()
True

``derive(name)`` returns a fresh PRNG deterministically keyed by
``(seed, name)``, so independent subsystems (fault triggers, retry jitter)
never perturb each other's streams no matter how many draws each makes —
adding a retry cannot change which fault fires.
"""

import random

_DEFAULT_SEED = 0

_seed = _DEFAULT_SEED
_rng = random.Random(_DEFAULT_SEED)


def seed(value):
    """Re-seed the process-wide stream and all future derived streams."""
    global _seed, _rng
    _seed = value
    _rng = random.Random(value)


def get_seed():
    """The seed the current streams were derived from."""
    return _seed


def rng():
    """The process-wide PRNG (a shared, mutable stream — prefer derive)."""
    return _rng


def derive(name):
    """A fresh PRNG seeded by ``(current seed, name)``.

    Streams with different names are independent; the same name under the
    same seed always yields an identical stream.
    """
    return random.Random(f"{_seed}:{name}")


def independent(key):
    """A fresh PRNG keyed by ``key`` alone, ignoring the process seed.

    The topology generator (:mod:`repro.scenarios.generate`) must emit the
    identical network for the same generator seed no matter what the chaos
    seed of the surrounding process is — a scenario is content, not an
    experiment — so its streams are derived from the caller's key only.
    Everything else should use :func:`derive`.
    """
    return random.Random(f"independent:{key}")


def reset():
    """Back to the default seed (test isolation)."""
    seed(_DEFAULT_SEED)
