"""Bounded retry with exponential backoff, deadline, and seeded jitter.

Transient device failures during a production push are retried here
(docs/ROBUSTNESS.md "Retry policy"). Delays are *simulated*: they are
charged to the shared :class:`~repro.util.clock.SimulatedClock` when one is
given (so Figure-7-style timing still accounts for them) and never sleep
the real process. Jitter comes from a :mod:`repro.util.rand` derived
stream, so retry timing is identical run-to-run under one seed.

Every :func:`retry_call` gets its *own* jitter stream, keyed by the
caller's ``jitter_key`` (a push id, a session id): an operation's delays
are a pure function of ``(seed, jitter_key, attempt)``, so interleaved
retries from concurrent sessions can never perturb each other's timing,
and distinct operations no longer share one correlated jitter sequence.
"""

from dataclasses import dataclass

from repro.obs import metrics as obs_metrics
from repro.util import rand
from repro.util.errors import TransientDeviceError

_RETRY_ATTEMPTS = obs_metrics.counter(
    "retry.attempts", unit="attempts",
    help="retries of transiently failed operations (first tries excluded)",
)
_RETRY_EXHAUSTED = obs_metrics.counter(
    "retry.exhausted", unit="operations",
    help="operations that stayed failed after the full retry budget",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to retry a transient failure.

    ``base_delay_s`` doubles per attempt up to ``max_delay_s``; each delay
    gets up to ``jitter`` of itself added (seeded). ``deadline_s`` caps the
    *total* simulated time spent across all delays — whichever of
    ``max_attempts``/``deadline_s`` is hit first ends the retrying.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    max_delay_s: float = 8.0
    deadline_s: float = 30.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts {self.max_attempts} < 1")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s {self.base_delay_s} < 0")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"max_delay_s {self.max_delay_s} < base_delay_s "
                f"{self.base_delay_s}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter {self.jitter} outside 0..1")
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s {self.deadline_s} <= 0")

    @property
    def max_total_delay_s(self):
        """The worst-case total simulated backoff one operation can accrue.

        The deadline check in :func:`retry_call` refuses any delay that
        would push the running total past ``deadline_s``, and every single
        delay is capped at ``max_delay_s`` — so the bound is the smaller
        of the two budgets.
        """
        return min(self.deadline_s, (self.max_attempts - 1) * self.max_delay_s)

    def delay_s(self, attempt, rng):
        """The (jittered) backoff before retry number ``attempt`` (1-based).

        ``max_delay_s`` is a *hard* cap: jitter is applied before the cap,
        never on top of it, so no single delay ever exceeds it. (The
        pre-cap ``delay * (1 + jitter * r)`` keeps the jittered schedule
        identical to the historical stream wherever the cap is not
        binding.)
        """
        delay = min(self.base_delay_s * (2 ** (attempt - 1)), self.max_delay_s)
        if self.jitter:
            delay = min(
                delay * (1.0 + self.jitter * rng.random()), self.max_delay_s
            )
        return delay


def retry_call(fn, *, policy=None, retryable=(TransientDeviceError,),
               clock=None, step="retry backoff", on_retry=None,
               jitter_key=""):
    """Call ``fn()`` retrying ``retryable`` errors under ``policy``.

    Args:
        fn: the zero-argument operation to (re)try.
        policy: a :class:`RetryPolicy` (defaults apply when ``None``).
        retryable: exception types worth retrying; anything else
            propagates immediately (fatal errors must not be retried).
        clock: a :class:`~repro.util.clock.SimulatedClock` to charge
            backoff delays to; ``None`` retries without charging time.
        step: the clock breakdown step name for the charged delays.
        on_retry: optional callback ``(attempt, error, delay_s)`` per retry.
        jitter_key: stable per-operation key (push id, session id) scoping
            the jitter stream; the empty default shares the legacy
            ``"retry"`` stream.

    Returns:
        ``fn``'s return value from the first successful call.

    Raises:
        The last retryable error once attempts or deadline run out, or the
        first non-retryable error immediately.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rand.derive(f"retry:{jitter_key}" if jitter_key else "retry")
    slept = 0.0
    attempt = 0
    while True:
        try:
            return fn()
        except retryable as exc:
            attempt += 1
            delay = policy.delay_s(attempt, rng)
            out_of_budget = (
                attempt >= policy.max_attempts
                or slept + delay > policy.deadline_s
            )
            if out_of_budget:
                _RETRY_EXHAUSTED.inc()
                raise
            _RETRY_ATTEMPTS.inc()
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if clock is not None:
                clock.advance(delay, step=step)
            slept += delay
