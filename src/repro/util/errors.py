"""Error hierarchy for the Heimdall reproduction.

Every package raises subclasses of :class:`ReproError` so that callers can
catch library failures without masking programming errors (``TypeError`` and
friends propagate untouched).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Invalid topology construction or lookup (unknown node, duplicate link)."""


class ConfigError(ReproError):
    """Configuration text or model is malformed."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class EmulationError(ReproError):
    """Emulated node or console failure (unknown command, node not running)."""


class PrivilegeError(ReproError):
    """An action was denied by the privilege specification."""

    def __init__(self, message, action=None, resource=None):
        super().__init__(message)
        self.action = action
        self.resource = resource


class VerificationError(ReproError):
    """Policy verification failed (a proposed change violates network policy)."""

    def __init__(self, message, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class SchedulingError(ReproError):
    """Change scheduling failed (cyclic dependencies, unsafe ordering)."""


class EnforcementError(ReproError):
    """The policy enforcer rejected a change set or detected tampering."""
