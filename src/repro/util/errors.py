"""Error hierarchy for the Heimdall reproduction.

Every package raises subclasses of :class:`ReproError` so that callers can
catch library failures without masking programming errors (``TypeError`` and
friends propagate untouched).
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Invalid topology construction or lookup (unknown node, duplicate link)."""


class ConfigError(ReproError):
    """Configuration text or model is malformed."""

    def __init__(self, message, line=None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class EmulationError(ReproError):
    """Emulated node or console failure (unknown command, node not running)."""


class PrivilegeError(ReproError):
    """An action was denied by the privilege specification."""

    def __init__(self, message, action=None, resource=None):
        super().__init__(message)
        self.action = action
        self.resource = resource


class VerificationError(ReproError):
    """Policy verification failed (a proposed change violates network policy)."""

    def __init__(self, message, violations=()):
        super().__init__(message)
        self.violations = tuple(violations)


class SchedulingError(ReproError):
    """Change scheduling failed (cyclic dependencies, unsafe ordering)."""


class EnforcementError(ReproError):
    """The policy enforcer rejected a change set or detected tampering."""


# -- push / recovery ---------------------------------------------------------
#
# The transactional scheduler (docs/ROBUSTNESS.md) discriminates failures by
# type: transient errors are retried with backoff, fatal errors roll the
# push back to its pre-push snapshot, and crashes leave a journal behind for
# :meth:`~repro.core.enforcer.scheduler.ChangeScheduler.resume`.


class ApplyError(ReproError):
    """A change could not be applied to a production device."""

    def __init__(self, message, device=None, change=None):
        super().__init__(message)
        self.device = device
        self.change = change


class TransientDeviceError(ApplyError):
    """A device apply failed in a way worth retrying (lost session, busy)."""


class FatalApplyError(ApplyError):
    """A device apply failed permanently; the push must roll back."""


class CircuitOpenError(ApplyError):
    """A device's circuit breaker opened: its transient-failure budget for
    this push is spent, so further applies to it are refused and the wave
    quarantines the device instead of retrying forever."""


class HealthProbeError(ReproError):
    """A post-wave health probe failed on the mixed-version dataplane.

    Carries which invariant policies broke (or which routes failed the
    convergence check) so the rollback audit record can name them.
    """

    def __init__(self, message, wave_index=None, violations=(), device=None):
        super().__init__(message)
        self.wave_index = wave_index
        self.violations = tuple(violations)
        self.device = device


class PushCrashed(ReproError):
    """The pusher process died mid-push (simulated by fault injection).

    Unlike :class:`FatalApplyError` there is no in-process cleanup: the
    journal written so far is all that survives, and recovery happens via
    ``ChangeScheduler.resume(production, journal)``.
    """

    def __init__(self, message, journal=None):
        super().__init__(message)
        self.journal = journal


class JournalError(ReproError):
    """A push journal is unusable (wrong state, snapshot mismatch)."""


class DepsOverscopeError(ReproError):
    """The dependency-cone computation declared itself untrustworthy.

    Raised only by the ``dataplane.deps.overscope`` fault point; the
    builder catches it and falls back to whole-network invalidation —
    over-scoping a cone is always safe, under-scoping never is.
    """


class MonitorTimeout(ReproError):
    """A mediated command exceeded the reference monitor's time budget."""

    def __init__(self, message, device=None, command=None, timeout_s=None):
        super().__init__(message)
        self.device = device
        self.command = command
        self.timeout_s = timeout_s


class AuditWriteError(ReproError):
    """The audit trail could not be extended; dependent commits fail closed."""


class AuditQuorumError(AuditWriteError):
    """Fewer audit replicas than the quorum are live and agreeing.

    Raised by :class:`~repro.core.enforcer.audit.ReplicatedAuditTrail` when
    an append cannot land on a quorum of replicas, or when a read finds no
    quorum of self-consistent, content-agreeing chains. Subclassing
    :class:`AuditWriteError` keeps the existing fail-closed semantics: a
    push whose history cannot be durably witnessed does not commit.
    """


class AuditReplicaError(ReproError):
    """Base class for injected per-replica audit failures."""

    def __init__(self, message, replica=None):
        super().__init__(message)
        self.replica = replica


class AuditReplicaCrash(AuditReplicaError):
    """An audit replica died; it misses this and every later append."""


class AuditReplicaTamper(AuditReplicaError):
    """An attacker rewrote a record on one replica (without its key)."""


class AuditReplicaPartition(AuditReplicaError):
    """An audit replica was partitioned for one append; its chain stays
    self-consistent but silently diverges from the majority content."""


# -- quorum approvals ---------------------------------------------------------
#
# High-risk changes need an M-of-N quorum of admin approvals before the
# scheduler will push them (repro.core.approvals, docs/ROBUSTNESS.md
# "Approvals & replicated tamper evidence").


class ApprovalError(ReproError):
    """An approval workflow failed or was used incorrectly."""


class ApprovalRequiredError(ApprovalError):
    """A high-risk change set reached the scheduler without a granted
    quorum approval covering it; the push is refused before any journal
    or device mutation exists (fail closed)."""


class ApprovalTimeout(ApprovalError):
    """The approval round timed out before quorum (injected via the
    ``approvals.timeout`` fault point); deny-by-default applies."""


class ApproverCrash(ApprovalError):
    """An approver identity became unresponsive mid-round (injected via
    the ``approvals.approver.crash`` fault point); it abstains."""

    def __init__(self, message, approver=None):
        super().__init__(message)
        self.approver = approver


class VerifierWorkerError(ReproError):
    """A parallel verification worker died; the pass degrades to serial."""


class ShardWorkerError(ReproError):
    """A sharded compile/verify worker died; the shard re-runs in-process.

    Raised only by the ``scale.shard.crash`` fault point (and surfaced by
    real worker-pool breakage); :mod:`repro.control.shard` catches it and
    executes the lost shard in the parent process — the same graceful
    degradation the parallel policy verifier uses for dying threads.
    """


# -- multi-tenant front door --------------------------------------------------
#
# One Heimdall-as-a-service front door admits many customer organisations
# (repro.core.tenancy, repro.core.frontdoor): every session, lease, journal,
# approval round, and audit chain is keyed by org_id, cross-tenant access
# fails closed, and admission is rate-limited behind bounded per-tenant
# queues.


class TenancyError(ReproError):
    """A multi-tenant surface was used incorrectly or refused an action."""


class TenantIsolationError(TenancyError):
    """A principal of one org tried to touch another org's state (or an
    unknown org's); refused before any tenant state was read or written,
    counted on ``tenancy.violation`` and MAC-audited on the victim's
    chain."""

    def __init__(self, message, org_id="", token_org=""):
        super().__init__(message)
        self.org_id = org_id
        self.token_org = token_org


class TenantRegistryError(TenancyError):
    """The tenant registry failed mid-admission (injected via the
    ``tenancy.registry.crash`` fault point); admission fails closed."""


class CapabilityError(TenancyError):
    """A capability token was refused; deny by default."""


class TokenExpiredError(CapabilityError):
    """The token's clock-charged lifetime is over (``now >= expires_at``
    — the expiry instant itself already denies)."""


class TokenReplayError(CapabilityError):
    """A revoked token was presented again; replay is refused."""


class TokenForgedError(CapabilityError):
    """The token's MAC does not verify under the org's sealed key."""


class CapabilityDeniedError(CapabilityError):
    """The token verifies but does not carry the required scope."""


class FrontDoorError(ReproError):
    """The multi-tenant front door refused or failed a request."""


class FrontDoorOverloadError(FrontDoorError):
    """Load was shed: the tenant's bounded queue, token bucket, or quota
    is exhausted. Carries ``retry_after_s`` so the caller backs off
    instead of queueing unboundedly."""

    def __init__(self, message, retry_after_s=None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class NoisyNeighborError(FrontDoorError):
    """Injected only (``frontdoor.noisy.neighbor``): one tenant's request
    storm drains that tenant's own token bucket; the front door absorbs
    the storm and other tenants must stay unaffected."""


# -- concurrent sessions -----------------------------------------------------
#
# The session manager (repro.core.sessions) runs N ticket sessions against
# one production network under per-element leases and optimistic base
# fingerprints (docs/ARCHITECTURE.md "Concurrency model").


class SessionError(ReproError):
    """A managed session was used incorrectly (closed twice, unknown mode)."""


class LeaseError(SessionError):
    """A lease request could not be granted."""

    def __init__(self, message, elements=()):
        super().__init__(message)
        self.elements = tuple(elements)


class LeaseTimeout(LeaseError):
    """A lease request stayed blocked past its timeout."""


class StaleBaseError(SessionError):
    """A session's base snapshot no longer matches production at submit."""
