"""Shared utilities: simulated clock, error hierarchy, identifier helpers."""

from repro.util.clock import (
    CostModel,
    SimulatedClock,
    StepTimer,
    monotonic_s,
    wall_s,
)
from repro.util.errors import (
    ConfigError,
    EmulationError,
    EnforcementError,
    PrivilegeError,
    ReproError,
    SchedulingError,
    TopologyError,
    VerificationError,
)
from repro.util.ids import IdAllocator

__all__ = [
    "ConfigError",
    "CostModel",
    "EmulationError",
    "EnforcementError",
    "IdAllocator",
    "PrivilegeError",
    "ReproError",
    "SchedulingError",
    "SimulatedClock",
    "StepTimer",
    "TopologyError",
    "VerificationError",
    "monotonic_s",
    "wall_s",
]
