"""Deterministic identifier allocation.

Experiments must be reproducible run-to-run, so identifiers (ticket numbers,
audit record ids, session ids) come from per-prefix counters rather than
UUIDs.
"""


class IdAllocator:
    """Allocates ids like ``TICKET-0001`` deterministically per prefix."""

    def __init__(self):
        self._counters = {}

    def allocate(self, prefix):
        """Return the next id for ``prefix`` (1-based, zero-padded)."""
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        return f"{prefix}-{count:04d}"

    def peek(self, prefix):
        """Return the id the next :meth:`allocate` call would produce."""
        return f"{prefix}-{self._counters.get(prefix, 0) + 1:04d}"
