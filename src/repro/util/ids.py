"""Deterministic identifier allocation.

Experiments must be reproducible run-to-run, so identifiers (ticket numbers,
audit record ids, session ids) come from per-prefix counters rather than
UUIDs. Allocation is thread-safe: concurrent sessions all draw from one
shared allocator (``Heimdall._ids``), and an unlocked read-modify-write
would hand two sessions the same id.
"""

import threading


class IdAllocator:
    """Allocates ids like ``TICKET-0001`` deterministically per prefix."""

    def __init__(self):
        self._counters = {}
        self._lock = threading.Lock()

    def allocate(self, prefix):
        """Return the next id for ``prefix`` (1-based, zero-padded)."""
        with self._lock:
            count = self._counters.get(prefix, 0) + 1
            self._counters[prefix] = count
        return f"{prefix}-{count:04d}"

    def peek(self, prefix):
        """Return the id the next :meth:`allocate` call would produce."""
        with self._lock:
            return f"{prefix}-{self._counters.get(prefix, 0) + 1:04d}"
