"""Simulated time for the pilot-study experiment (Figure 7).

The paper measures wall-clock seconds on a real testbed with a human
technician. Our substitute is a deterministic :class:`SimulatedClock` advanced
by a :class:`CostModel` that assigns a latency to each operation class
(logging in, executing a console command, booting a twin node, verifying one
policy constraint, ...). The defaults are calibrated so the reproduced Figure 7
lands in the paper's reported neighbourhood (28 s average Heimdall overhead;
verification ~25 s for 175 constraints), while remaining an explicit model —
not a measurement of the authors' testbed.
"""

import threading
import time
from dataclasses import dataclass, field


@dataclass
class CostModel:
    """Latency (simulated seconds) charged per operation class.

    The verification cost is per constraint: the paper reports 25 s to check
    175 constraints, i.e. ~0.143 s/constraint, which is the default here.
    """

    login_s: float = 2.0
    command_s: float = 1.2
    command_config_s: float = 1.8
    save_config_s: float = 2.5
    privilege_generation_s: float = 3.0
    twin_boot_base_s: float = 4.0
    twin_boot_per_node_s: float = 0.8
    verify_per_constraint_s: float = 25.0 / 175.0
    schedule_per_change_s: float = 0.6
    commit_per_change_s: float = 1.0

    def twin_boot_s(self, node_count):
        """Total simulated seconds to boot a twin with ``node_count`` nodes."""
        return self.twin_boot_base_s + self.twin_boot_per_node_s * node_count

    def verify_s(self, constraint_count):
        """Total simulated seconds to verify ``constraint_count`` constraints."""
        return self.verify_per_constraint_s * constraint_count


class SimulatedClock:
    """Deterministic clock advanced explicitly by charged costs.

    Also records a per-step breakdown so experiments can report the same
    decomposition Figure 7 shows (connect / operate / save / twin setup /
    verify+schedule ...).

    Thread-safe: concurrent sessions share one deployment clock, and an
    unlocked ``advance`` would lose charged time under interleaving
    (read-add-store races drop one of the two additions).
    """

    def __init__(self):
        self._now = 0.0
        self._breakdown = {}
        self._step_order = []
        self._lock = threading.Lock()

    @property
    def now(self):
        """Current simulated time in seconds since the clock was created."""
        return self._now

    def advance(self, seconds, step=None):
        """Advance the clock, attributing the cost to ``step`` if given."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        with self._lock:
            self._now += seconds
            if step is not None:
                if step not in self._breakdown:
                    self._breakdown[step] = 0.0
                    self._step_order.append(step)
                self._breakdown[step] += seconds
            return self._now

    def breakdown(self):
        """Per-step cost attribution, in first-charged order."""
        with self._lock:
            return {step: self._breakdown[step] for step in self._step_order}

    def reset(self):
        """Zero the clock and forget the breakdown."""
        with self._lock:
            self._now = 0.0
            self._breakdown = {}
            self._step_order = []


# -- real time ---------------------------------------------------------------
#
# The single sanctioned gateway to the host's clocks. Library code never
# calls ``time.*`` directly (``tests/util/test_no_wallclock.py`` greps for
# it): simulated experiments stay deterministic on :class:`SimulatedClock`,
# and everything that legitimately measures real time — the wall-clock
# benchmarks and the observability spans — shares this one source, so
# traces, audit entries, and benchmark numbers are always comparable.


def monotonic_s():
    """Seconds on the host's monotonic high-resolution timer.

    For measuring *durations* only (benchmark samples, span timings).
    Values are meaningless across processes and unrelated to wall-clock
    time; never mix them with :func:`wall_s` or :class:`SimulatedClock`
    readings.
    """
    return time.perf_counter()


def wall_s():
    """Seconds since the Unix epoch, for human-facing timestamps only.

    Experiments never use this — they run on :class:`SimulatedClock` so
    results are identical run-to-run.
    """
    return time.time()


@dataclass
class StepTimer:
    """Context manager charging a fixed cost to a named step on exit.

    >>> clock = SimulatedClock()
    >>> with StepTimer(clock, "connect", 2.0):
    ...     pass
    >>> clock.now
    2.0
    """

    clock: SimulatedClock
    step: str
    seconds: float
    charged: bool = field(default=False, init=False)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        # Charge even on failure: in the real workflow the time was spent
        # whether or not the operation succeeded.
        self.clock.advance(self.seconds, step=self.step)
        self.charged = True
        return False
