"""Seeded mega-network generator: fat-tree, campus, and hub-and-spoke.

The two paper scenarios top out at 36 devices; the scale claims in
docs/SCALING.md need networks two orders of magnitude larger. This module
generates them: parameterized, seeded topologies of 500–5000 devices with
the same realism the hand-written scenarios have — OSPF areas, per-LAN
VLAN segments, inter-LAN ACLs, an eBGP edge to an upstream provider,
explicit invariant policies, and seeded misconfiguration issues compatible
with :class:`repro.scenarios.issues.Issue` (so workflows, benchmarks, and
chaos campaigns treat a generated network exactly like a scenario one).

Determinism is the contract: ``generate_scenario(shape, size, seed)`` is a
pure function of its arguments — the generator draws from
:func:`repro.util.rand.independent`, which ignores the process-wide chaos
seed, so the same parameters always produce a byte-identical snapshot
(fingerprint-tested in ``tests/scenarios/test_generate.py``).

Shapes (parameter reference in docs/SCALING.md):

* ``fat-tree`` — k-ary data-center fabric: (k/2)^2 cores (area 0),
  k pods of k/2 aggregation + k/2 edge routers (one OSPF area per pod),
  one host LAN per edge router, a WAN router speaking eBGP off core01;
* ``campus`` — two backbone cores, one gateway router per building
  (one OSPF area per building), floor LANs behind access switches, and a
  border router speaking eBGP to the provider;
* ``hub-spoke`` — a redundant hub pair, S spoke routers dual-homed to
  both hubs, one LAN per spoke, provider eBGP at hub1.

``size`` is a target device count; the generator solves each shape's
parameters to land within a few devices of it (resolved values are in
``GeneratedScenario.params``).
"""

import ipaddress
from dataclasses import dataclass, field

from repro.config.model import OspfConfig, OspfNetwork
from repro.dataplane.reachability import host_flow
from repro.net.addressing import prefixlen_to_wildcard
from repro.policy.model import (
    IsolationPolicy,
    ReachabilityPolicy,
    WaypointPolicy,
)
from repro.scenarios.builder import NetworkBuilder
from repro.scenarios.issues import FixStep, Issue
from repro.util import rand
from repro.util.errors import ReproError

SHAPES = ("fat-tree", "campus", "hub-spoke")

_EXTERNAL_SUBNET = "198.18.0.0/24"
_PEERING_SUBNET = "203.0.113.0/30"
_CAMPUS_AS = 64512
_PROVIDER_AS = 64601


@dataclass
class Lan:
    """One generated host LAN: the unit issues and policies sample from."""

    name: str
    router: str
    router_iface: str
    switch: str
    vlan_id: int
    subnet: object  # IPv4Network
    gateway: object  # IPv4Address
    area: int
    hosts: list = field(default_factory=list)  # (host, ip, switch_port)
    tag: str = "user"  # "user" | "guest" | "secure"


@dataclass
class GeneratedScenario:
    """A generated network plus its invariant policies and seeded issues."""

    shape: str
    seed: int
    requested_size: int
    network: object
    policies: list
    issues: dict
    params: dict
    lans: list

    @property
    def device_count(self):
        return len(self.network.configs)


def network_fingerprint(network):
    """The content fingerprint of a network (topology + every config)."""
    from repro.control.cache import snapshot_fingerprint

    return snapshot_fingerprint(network)[0]


def generate_network(shape="fat-tree", size=500, seed=7):
    """Just the :class:`~repro.net.network.Network` of a generated scenario."""
    return generate_scenario(shape=shape, size=size, seed=seed).network


def generate_scenario(shape="fat-tree", size=500, seed=7):
    """Generate a seeded scenario: network + policies + issues.

    ``size`` targets the total device count (routers + switches + hosts);
    the resolved shape parameters land within a few devices of it.
    """
    if shape not in SHAPES:
        raise ReproError(
            f"unknown shape {shape!r}: expected one of {', '.join(SHAPES)}"
        )
    if size < 40:
        raise ReproError(f"size must be >= 40 devices, got {size}")
    rng = rand.independent(f"generate:{shape}:{size}:{seed}")
    if shape == "fat-tree":
        builder, lans, params, waypoint = _build_fat_tree(size)
    elif shape == "campus":
        builder, lans, params, waypoint = _build_campus(size)
    else:
        builder, lans, params, waypoint = _build_hub_spoke(size)
    _tag_and_filter(builder, lans, rng)
    network = builder.build()
    policies = _invariant_policies(network, lans, waypoint, rng)
    issues = _seeded_issues(network, lans, rng)
    params["waypoint"] = waypoint
    return GeneratedScenario(
        shape=shape,
        seed=seed,
        requested_size=size,
        network=network,
        policies=policies,
        issues=issues,
        params=params,
        lans=lans,
    )


# -- shared construction helpers ----------------------------------------------


class _Ports:
    """Sequential interface names per device (Gi0/1, Gi0/2, ...)."""

    def __init__(self, prefix="Gi0/"):
        self.prefix = prefix
        self._next = {}

    def next(self, device):
        index = self._next.get(device, 0) + 1
        self._next[device] = index
        return f"{self.prefix}{index}"


class _Subnets:
    """Sequential /30 transfer nets under 10.200.0.0/14."""

    def __init__(self):
        self._base = int(ipaddress.IPv4Address("10.200.0.0"))
        self._index = 0

    def next(self):
        address = ipaddress.IPv4Address(self._base + 4 * self._index)
        self._index += 1
        return f"{address}/30"


def _lan_subnet(index):
    """The /24 of the ``index``-th generated LAN (10.1.0.0 upward)."""
    return ipaddress.IPv4Network(
        (int(ipaddress.IPv4Address("10.1.0.0")) + 256 * index, 24)
    )


def _ospf_interface(builder, router, iface_name, area, passive=False):
    """Activate OSPF on exactly one interface, in exactly one area.

    Unlike :meth:`NetworkBuilder.enable_ospf` (which covers every routed
    interface a router currently has with one area), this appends a single
    network statement — the per-interface control multi-area shapes need.
    """
    config = builder.config(router)
    if config.ospf is None:
        config.ospf = OspfConfig(process_id=1)
    iface = config.interface(iface_name)
    statement = OspfNetwork(prefix=iface.address.network, area=area)
    if statement not in config.ospf.networks:
        config.ospf.networks.append(statement)
    if passive:
        config.ospf.passive_interfaces.add(iface_name)


def _add_lan(builder, ports, lan_name, router, vlan_id, subnet, area, hosts):
    """One host LAN: router gateway iface + access switch + ``hosts`` hosts."""
    switch = f"sw-{lan_name}"
    builder.switch(switch)
    builder.vlan(switch, vlan_id, name=f"{lan_name}-users")
    sw_ports = _Ports("Fa0/")
    gateway = subnet.network_address + 1
    router_iface = ports.next(router)
    builder.access_link(
        router, router_iface, switch, sw_ports.next(switch), vlan_id
    )
    builder.address(router, router_iface, f"{gateway}/{subnet.prefixlen}")
    _ospf_interface(builder, router, router_iface, area, passive=True)
    lan = Lan(
        name=lan_name,
        router=router,
        router_iface=router_iface,
        switch=switch,
        vlan_id=vlan_id,
        subnet=subnet,
        gateway=gateway,
        area=area,
    )
    for i in range(hosts):
        host = f"h-{lan_name}-{i + 1:02d}"
        builder.host(host)
        port = sw_ports.next(switch)
        builder.access_link(host, "eth0", switch, port, vlan_id)
        ip = subnet.network_address + 100 + i
        builder.lan_host(host, "eth0", f"{ip}/{subnet.prefixlen}", gateway)
        lan.hosts.append((host, ip, port))
    return lan


def _add_provider_edge(builder, ports, border, local_as=_CAMPUS_AS):
    """The eBGP edge: provider router + external host + the session pair."""
    provider = "isp-rtr"
    builder.router(provider)
    peering = ipaddress.IPv4Network(_PEERING_SUBNET)
    border_ip, provider_ip = list(peering.hosts())[:2]
    builder.p2p(
        border, ports.next(border), provider, ports.next(provider),
        _PEERING_SUBNET,
    )
    builder.host("ext1")
    builder.attach_host(
        "ext1", "eth0", provider, ports.next(provider), _EXTERNAL_SUBNET
    )
    builder.enable_bgp(
        border, _CAMPUS_AS, neighbors=[(str(provider_ip), _PROVIDER_AS)]
    )
    builder.enable_bgp(
        provider, _PROVIDER_AS,
        neighbors=[(str(border_ip), _CAMPUS_AS)],
        networks=[_EXTERNAL_SUBNET],
    )
    # The interior learns the way out via OSPF default origination on the
    # border (the university scenario's pattern); the border resolves the
    # external prefix through its BGP route.
    builder.config(border).ospf.default_information_originate = True


# -- fat-tree ------------------------------------------------------------------


def _fat_tree_dims(size):
    """``(k, hosts_per_lan)`` landing the device count nearest ``size``."""
    best = None
    for k in range(4, 21, 2):
        routers = 5 * k * k // 4
        lans = k * k // 2  # one per edge router; one switch each
        fixed = routers + lans + 2  # + wan router + ext1
        hosts = max(2, round((size - fixed) / lans))
        error = abs(fixed + lans * hosts - size)
        if best is None or (error, -k) < (best[0], -best[1]):
            best = (error, k, hosts)
    return best[1], best[2]


def _build_fat_tree(size):
    k, hosts = _fat_tree_dims(size)
    half = k // 2
    builder = NetworkBuilder(f"gen-fat-tree-{size}")
    ports = _Ports()
    subnets = _Subnets()

    cores = [f"core{c:02d}" for c in range(1, half * half + 1)]
    for core in cores:
        builder.router(core)
    lans = []
    lan_index = 0
    for p in range(1, k + 1):
        aggs = [f"p{p:02d}-agg{a}" for a in range(1, half + 1)]
        edges = [f"p{p:02d}-edge{e}" for e in range(1, half + 1)]
        for router in aggs + edges:
            builder.router(router)
        # Aggregation uplinks: agg a connects to cores [(a-1)*half .. a*half).
        for a, agg in enumerate(aggs):
            for core in cores[a * half:(a + 1) * half]:
                iface_a, iface_c = ports.next(agg), ports.next(core)
                builder.p2p(agg, iface_a, core, iface_c, subnets.next())
                _ospf_interface(builder, agg, iface_a, 0)
                _ospf_interface(builder, core, iface_c, 0)
        # Pod mesh: every edge to every agg, in the pod's own area.
        for edge in edges:
            for agg in aggs:
                iface_e, iface_a = ports.next(edge), ports.next(agg)
                builder.p2p(edge, iface_e, agg, iface_a, subnets.next())
                _ospf_interface(builder, edge, iface_e, p)
                _ospf_interface(builder, agg, iface_a, p)
        for e, edge in enumerate(edges):
            lans.append(_add_lan(
                builder, ports, f"p{p:02d}e{e + 1}", edge, 10,
                _lan_subnet(lan_index), p, hosts,
            ))
            lan_index += 1
    _add_provider_edge(builder, ports, "core01")
    params = {"k": k, "pods": k, "hosts_per_lan": hosts, "lans": len(lans)}
    return builder, lans, params, "core01"


# -- campus --------------------------------------------------------------------


def _campus_dims(size):
    """``(buildings, floors, hosts_per_lan)`` nearest ``size``."""
    floors = 2 if size < 200 else 4
    fixed = 5  # core1 core2 border isp-rtr ext1
    buildings = max(2, round((size - fixed) / (1 + floors * 11)))
    per_building = (size - fixed) / buildings
    hosts = max(2, round((per_building - 1) / floors - 1))
    return buildings, floors, hosts


def _build_campus(size):
    buildings, floors, hosts = _campus_dims(size)
    builder = NetworkBuilder(f"gen-campus-{size}")
    ports = _Ports()
    subnets = _Subnets()

    for core in ("core1", "core2"):
        builder.router(core)
    iface_1, iface_2 = ports.next("core1"), ports.next("core2")
    builder.p2p("core1", iface_1, "core2", iface_2, subnets.next())
    _ospf_interface(builder, "core1", iface_1, 0)
    _ospf_interface(builder, "core2", iface_2, 0)

    lans = []
    lan_index = 0
    for b in range(1, buildings + 1):
        gw = f"b{b:02d}-gw"
        builder.router(gw)
        for core in ("core1", "core2"):
            iface_g, iface_c = ports.next(gw), ports.next(core)
            builder.p2p(gw, iface_g, core, iface_c, subnets.next())
            _ospf_interface(builder, gw, iface_g, 0)
            _ospf_interface(builder, core, iface_c, 0)
        for f in range(1, floors + 1):
            lans.append(_add_lan(
                builder, ports, f"b{b:02d}f{f}", gw, 10,
                _lan_subnet(lan_index), b, hosts,
            ))
            lan_index += 1

    builder.router("border")
    for core in ("core1", "core2"):
        iface_b, iface_c = ports.next("border"), ports.next(core)
        builder.p2p("border", iface_b, core, iface_c, subnets.next())
        _ospf_interface(builder, "border", iface_b, 0)
        _ospf_interface(builder, core, iface_c, 0)
    _add_provider_edge(builder, ports, "border")
    params = {
        "buildings": buildings, "floors": floors, "hosts_per_lan": hosts,
        "lans": len(lans),
    }
    return builder, lans, params, "border"


# -- hub-and-spoke -------------------------------------------------------------


def _hub_spoke_dims(size):
    """``(spokes, hosts_per_lan)`` nearest ``size``."""
    fixed = 4  # hub1 hub2 isp-rtr ext1
    spokes = max(3, round((size - fixed) / 14))
    hosts = max(2, round((size - fixed) / spokes - 2))
    return spokes, hosts


def _build_hub_spoke(size):
    spokes, hosts = _hub_spoke_dims(size)
    builder = NetworkBuilder(f"gen-hub-spoke-{size}")
    ports = _Ports()
    subnets = _Subnets()

    for hub in ("hub1", "hub2"):
        builder.router(hub)
    iface_1, iface_2 = ports.next("hub1"), ports.next("hub2")
    builder.p2p("hub1", iface_1, "hub2", iface_2, subnets.next())
    _ospf_interface(builder, "hub1", iface_1, 0)
    _ospf_interface(builder, "hub2", iface_2, 0)

    lans = []
    for s in range(1, spokes + 1):
        spoke = f"spoke{s:03d}"
        builder.router(spoke)
        for hub in ("hub1", "hub2"):
            iface_s, iface_h = ports.next(spoke), ports.next(hub)
            builder.p2p(spoke, iface_s, hub, iface_h, subnets.next())
            _ospf_interface(builder, spoke, iface_s, 0)
            _ospf_interface(builder, hub, iface_h, 0)
        lans.append(_add_lan(
            builder, ports, f"s{s:03d}", spoke, 10,
            _lan_subnet(s - 1), 0, hosts,
        ))
    _add_provider_edge(builder, ports, "hub1")
    params = {"spokes": spokes, "hosts_per_lan": hosts, "lans": len(lans)}
    return builder, lans, params, "hub1"


# -- ACL segmentation ----------------------------------------------------------


def _tag_and_filter(builder, lans, rng):
    """Pick guest and secure LANs; fence guests out of secure LANs by ACL.

    Roughly one LAN in ten is *secure* (its gateway filters inbound-to-LAN
    traffic) and one in five is *guest* (the untrusted source the filter
    names). The ACL goes outbound on the secure LAN's gateway interface —
    deny each guest subnet, permit everything else — so exactly the
    guest→secure pairs break and every other flow is untouched; the
    isolation policies assert the former, the reachability policies the
    latter.
    """
    if len(lans) < 4:
        return
    secure_count = max(1, len(lans) // 10)
    guest_count = max(1, len(lans) // 5)
    shuffled = rng.sample(lans, secure_count + guest_count)
    secure, guests = shuffled[:secure_count], shuffled[secure_count:]
    for lan in secure:
        lan.tag = "secure"
    for lan in guests:
        lan.tag = "guest"
    for lan in secure:
        wildcard = prefixlen_to_wildcard(lan.subnet.prefixlen)
        entries = [
            f"deny ip {guest.subnet.network_address} "
            f"{prefixlen_to_wildcard(guest.subnet.prefixlen)} "
            f"{lan.subnet.network_address} {wildcard}"
            for guest in sorted(guests, key=lambda g: g.name)
        ]
        entries.append("permit ip any any")
        acl_name = f"protect-{lan.name}"
        builder.acl(lan.router, acl_name, entries)
        builder.apply_acl(lan.router, lan.router_iface, acl_name, "out")


# -- invariant policies --------------------------------------------------------


def _invariant_policies(network, lans, waypoint, rng):
    """Explicit policies encoding the generator's intent.

    Mining (:func:`repro.policy.mining.mine_policies`) is quadratic in
    hosts — hopeless at 5000 devices — and the generator *knows* its
    intent, so it emits the invariants directly: cross-LAN reachability for
    allowed pairs, isolation for every fenced guest→secure pair, and
    waypoint-through-the-border for external traffic.
    """
    policies = []
    guests = [lan for lan in lans if lan.tag == "guest"]
    secure = [lan for lan in lans if lan.tag == "secure"]

    reach_count = min(48, 2 * len(lans))
    for _ in range(reach_count):
        src_lan, dst_lan = rng.sample(lans, 2)
        if src_lan.tag == "guest" and dst_lan.tag == "secure":
            continue  # fenced by ACL; covered by isolation policies below
        src = rng.choice(src_lan.hosts)[0]
        dst = rng.choice(dst_lan.hosts)[0]
        policies.append(ReachabilityPolicy(
            policy_id=f"gen-reach-{src}-{dst}",
            flow=host_flow(network, src, dst),
            comment=f"{src_lan.name} -> {dst_lan.name} stays reachable",
        ))

    for lan in secure:
        for guest in sorted(guests, key=lambda g: g.name)[:2]:
            src = rng.choice(guest.hosts)[0]
            dst = rng.choice(lan.hosts)[0]
            policies.append(IsolationPolicy(
                policy_id=f"gen-isolate-{src}-{dst}",
                flow=host_flow(network, src, dst),
                comment=f"guest {guest.name} fenced out of {lan.name}",
            ))

    for lan in rng.sample(lans, min(6, len(lans))):
        src = rng.choice(lan.hosts)[0]
        policies.append(WaypointPolicy(
            policy_id=f"gen-waypoint-{src}-ext1",
            flow=host_flow(network, src, "ext1"),
            waypoint=waypoint,
            comment=f"external traffic from {lan.name} exits via {waypoint}",
        ))

    unique = {}
    for policy in policies:
        unique.setdefault(policy.policy_id, policy)
    return list(unique.values())


# -- seeded issues -------------------------------------------------------------


def _seeded_issues(network, lans, rng):
    """The three standard misconfig classes, instantiated on random LANs."""
    victims = rng.sample(lans, min(3, len(lans)))
    others = [lan for lan in lans if lan not in victims] or lans
    issues = {}

    ospf_lan = victims[0]
    remote = rng.choice(rng.choice(others).hosts)[0]
    local = rng.choice(ospf_lan.hosts)[0]
    wildcard = prefixlen_to_wildcard(ospf_lan.subnet.prefixlen)

    def inject_ospf(network, _lan=ospf_lan):
        config = network.config(_lan.router)
        target = _lan.subnet
        config.ospf.networks = [
            statement for statement in config.ospf.networks
            if statement.prefix != target
        ]

    issues["ospf"] = Issue(
        issue_id="ospf",
        title=f"LAN {ospf_lan.name} not advertised",
        description=(
            f"{remote} cannot reach {local} ({ospf_lan.subnet}); the prefix "
            f"is missing from OSPF on {ospf_lan.router}."
        ),
        src_host=remote,
        dst_host=local,
        root_cause_device=ospf_lan.router,
        complexity="moderate",
        fix_script=[FixStep(ospf_lan.router, (
            "show ip ospf neighbor",
            "show running-config",
            "configure terminal",
            "router ospf 1",
            f"network {ospf_lan.subnet.network_address} {wildcard} "
            f"area {ospf_lan.area}",
            "end",
            "write memory",
        ))],
        _inject=inject_ospf,
    )

    vlan_lan = victims[1 % len(victims)]
    victim_host, _ip, victim_port = rng.choice(vlan_lan.hosts)
    peer = rng.choice(
        [h for h, _ip, _p in vlan_lan.hosts if h != victim_host]
        or [vlan_lan.hosts[0][0]]
    )

    def inject_vlan(network, _lan=vlan_lan, _port=victim_port):
        network.config(_lan.switch).interface(_port).access_vlan = (
            _lan.vlan_id + 10
        )

    issues["vlan"] = Issue(
        issue_id="vlan",
        title=f"Access port in the wrong VLAN on {vlan_lan.switch}",
        description=(
            f"{victim_host} lost connectivity to {peer} after maintenance "
            f"on {vlan_lan.switch}."
        ),
        src_host=victim_host,
        dst_host=peer,
        root_cause_device=vlan_lan.switch,
        complexity="complex",
        fix_script=[FixStep(vlan_lan.switch, (
            "show vlan",
            "show interfaces",
            "configure terminal",
            f"interface {victim_port}",
            f"switchport access vlan {vlan_lan.vlan_id}",
            "end",
            "write memory",
        ))],
        _inject=inject_vlan,
    )

    down_lan = victims[2 % len(victims)]
    down_remote = rng.choice(rng.choice(others).hosts)[0]
    down_local = rng.choice(down_lan.hosts)[0]

    def inject_ifdown(network, _lan=down_lan):
        network.config(_lan.router).interface(_lan.router_iface).shutdown = (
            True
        )

    issues["ifdown"] = Issue(
        issue_id="ifdown",
        title=f"Gateway interface down on {down_lan.router}",
        description=f"{down_remote} cannot reach {down_local}.",
        src_host=down_remote,
        dst_host=down_local,
        root_cause_device=down_lan.router,
        complexity="simple",
        fix_script=[FixStep(down_lan.router, (
            "show interfaces",
            "configure terminal",
            f"interface {down_lan.router_iface}",
            "no shutdown",
            "end",
            "write memory",
        ))],
        _inject=inject_ifdown,
    )
    return issues
