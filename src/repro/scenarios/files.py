"""Host filesystems for the scenario networks.

The APT10 incident (paper Figure 2) exfiltrated *files* — credentials,
intellectual property — from customer endpoints through the RMM agents.
These are the files: every host gets OS boilerplate, and the sensitive
hosts carry the crown jewels an adversary is after. Production-side
emulations (RMM agents, emergency consoles) attach them; twin networks
never clone them (files are emulation components).
"""

from repro.net.topology import DeviceKind

# Content markers that must never appear in twin output (asserted in tests).
SENSITIVE_MARKER = "CONFIDENTIAL"

_SENSITIVE_FILES = {
    # enterprise network
    "db1": {
        "/data/customers.db": (
            f"{SENSITIVE_MARKER}: 48,112 customer records, PII + card tokens"
        ),
        "/data/backup.key": f"{SENSITIVE_MARKER}: AES key 9f3a...e1",
    },
    "web1": {
        "/etc/ssl/private/web1.key": (
            f"{SENSITIVE_MARKER}: RSA PRIVATE KEY MIIEow..."
        ),
    },
    "app1": {
        "/opt/app/config.ini": (
            f"{SENSITIVE_MARKER}: db_password=prod-5432-secret"
        ),
    },
    # university network
    "db-reg": {
        "/data/registrar.db": (
            f"{SENSITIVE_MARKER}: student records, grades, SSNs"
        ),
    },
    "hpc1": {
        "/research/results.tar": (
            f"{SENSITIVE_MARKER}: unpublished experiment data"
        ),
    },
    "www": {
        "/etc/ssl/private/www.key": (
            f"{SENSITIVE_MARKER}: RSA PRIVATE KEY MIIBvg..."
        ),
    },
}


def default_host_files(network):
    """Per-host filesystems for an emulated production network."""
    files = {}
    for host in network.hosts():
        address = network.config(host).primary_address
        files[host] = {
            "/etc/hostname": host,
            "/etc/resolv.conf": "nameserver 10.20.32.10",
            "/var/log/syslog": f"{host} booted; link up on eth0",
        }
        if address is not None:
            files[host]["/etc/network/interfaces"] = (
                f"iface eth0 inet static\n  address {address}"
            )
        files[host].update(_SENSITIVE_FILES.get(host, {}))
    return files


def sensitive_paths(network):
    """(host, path) pairs an exfiltration adversary targets."""
    return [
        (host, path)
        for host, paths in _SENSITIVE_FILES.items()
        if network.topology.has_device(host)
        for path in paths
    ]
