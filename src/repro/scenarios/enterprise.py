"""The enterprise evaluation network (paper Table 1: 9 routers, 9 hosts, 22 links).

A realistic small-enterprise design::

                 ext1
                  |
     +--------- [isp]  203.0.113.0/29 (provider-renumbered in the ISP issue)
     |            |
     |          [gw] --- static default to the ISP, originated into OSPF
     |            |
     |          [fw] --- web1 (DMZ, ACL-protected)
     |          /   \\
    (OSPF) [core1]-[core2] --- mon1 (monitoring)
     |        |       |
     |     [dist1]-[dist2]
     |        |  \\    |
     |        |  db1  |
     |     [dept1] [dept2] --- pc3, printer1
     |      |   |
     |     sw1==sw2   (VLAN 10 staff / VLAN 20 app)
     |     pc1  pc2(v10), app1(v20)

Security intent (drives the mined policies):

* only web traffic may reach the DMZ from outside;
* the database LAN accepts connections only from the app VLAN (port 5432);
* the staff VLAN may browse everywhere internal except the database LAN;
* external hosts reach only the DMZ.
"""

from repro.scenarios.builder import NetworkBuilder

# Devices whose consoles contain customer-sensitive material in the story
# (credentials are set on every router; these also carry ACL secrets).
SENSITIVE_DEVICES = ("fw", "dist1")


def build_enterprise_network():
    """Construct the enterprise network with full configurations."""
    builder = NetworkBuilder("enterprise")

    for name in ("isp", "gw", "fw", "core1", "core2",
                 "dist1", "dist2", "dept1", "dept2"):
        builder.router(name)
    for name in ("sw1", "sw2"):
        builder.switch(name)
    for name in ("ext1", "web1", "db1", "mon1", "pc1", "pc2",
                 "app1", "pc3", "printer1"):
        builder.host(name)

    # -- provider edge -------------------------------------------------------
    builder.p2p("isp", "Gi0/0", "gw", "Gi0/0", "203.0.113.0/29")
    builder.attach_host("ext1", "eth0", "isp", "Gi0/1", "198.51.100.0/24")

    # -- firewall / DMZ ------------------------------------------------------
    builder.p2p("gw", "Gi0/1", "fw", "Gi0/0", "10.0.1.0/30")
    builder.attach_host("web1", "eth0", "fw", "Gi0/3", "10.9.1.0/24")

    # -- core ----------------------------------------------------------------
    builder.p2p("fw", "Gi0/1", "core1", "Gi0/0", "10.0.2.0/30")
    builder.p2p("fw", "Gi0/2", "core2", "Gi0/0", "10.0.3.0/30")
    builder.p2p("core1", "Gi0/1", "core2", "Gi0/1", "10.0.4.0/30")
    builder.attach_host("mon1", "eth0", "core2", "Gi0/3", "10.8.1.0/24")

    # -- distribution ---------------------------------------------------------
    builder.p2p("core1", "Gi0/2", "dist1", "Gi0/0", "10.0.5.0/30")
    builder.p2p("core2", "Gi0/2", "dist2", "Gi0/0", "10.0.6.0/30")
    builder.p2p("dist1", "Gi0/1", "dist2", "Gi0/1", "10.0.7.0/30")
    builder.attach_host("db1", "eth0", "dist1", "Gi0/3", "10.7.1.0/24")

    # -- departments -----------------------------------------------------------
    builder.p2p("dist1", "Gi0/2", "dept1", "Gi0/0", "10.0.8.0/30")
    builder.p2p("dist2", "Gi0/2", "dept2", "Gi0/0", "10.0.9.0/30")
    builder.attach_host("pc3", "eth0", "dept2", "Gi0/1", "10.6.1.0/24")
    builder.attach_host("printer1", "eth0", "dept2", "Gi0/2", "10.6.2.0/24")

    # -- dept1 switched LANs (VLAN 10 staff, VLAN 20 app) ----------------------
    for switch in ("sw1", "sw2"):
        builder.vlan(switch, 10, "staff").vlan(switch, 20, "app")
    builder.access_link("dept1", "Gi0/1", "sw1", "Fa0/1", 10)
    builder.address("dept1", "Gi0/1", "10.5.10.1/24")
    builder.access_link("dept1", "Gi0/2", "sw1", "Fa0/2", 20)
    builder.address("dept1", "Gi0/2", "10.5.20.1/24")
    builder.trunk_link("sw1", "Fa0/24", "sw2", "Fa0/24", vlans=(10, 20))
    builder.access_link("pc1", "eth0", "sw1", "Fa0/3", 10)
    builder.lan_host("pc1", "eth0", "10.5.10.100/24", "10.5.10.1")
    builder.access_link("pc2", "eth0", "sw2", "Fa0/2", 10)
    builder.lan_host("pc2", "eth0", "10.5.10.101/24", "10.5.10.1")
    builder.access_link("app1", "eth0", "sw2", "Fa0/3", 20)
    builder.lan_host("app1", "eth0", "10.5.20.100/24", "10.5.20.1")

    _configure_routing(builder)
    _configure_security(builder)
    _describe_interfaces(builder)
    return builder.build()


def _configure_routing(builder):
    internal = ("gw", "fw", "core1", "core2", "dist1", "dist2", "dept1", "dept2")
    passive_map = {
        "fw": ("Gi0/3",),
        "core2": ("Gi0/3",),
        "dist1": ("Gi0/3",),
        "dept1": ("Gi0/1", "Gi0/2"),
        "dept2": ("Gi0/1", "Gi0/2"),
    }
    for router in internal:
        builder.enable_ospf(
            router,
            passive=passive_map.get(router, ()),
            default_originate=(router == "gw"),
        )
    # The gateway's OSPF must not peer with the provider.
    builder.config("gw").ospf.passive_interfaces.add("Gi0/0")

    # Static routing at the provider boundary.
    builder.static_route("gw", "0.0.0.0/0", "203.0.113.1")
    builder.static_route("isp", "10.0.0.0/8", "203.0.113.2")
    builder.static_route("isp", "0.0.0.0/0", "198.51.100.254")

    for router in internal + ("isp",):
        builder.credentials(
            router,
            enable_secret=f"ent-secret-{router}",
            vty_password=f"vty-{router}",
            snmp_community="ent-community",
        )


def _configure_security(builder):
    # DMZ: the outside world reaches web1 on web ports only.
    builder.acl(
        "fw",
        "DMZ_IN",
        [
            "permit tcp any host 10.9.1.100 eq www",
            "permit tcp any host 10.9.1.100 eq https",
            "permit icmp 10.0.0.0 0.255.255.255 any",
            "permit tcp 10.0.0.0 0.255.255.255 any",
            "deny ip any any",
        ],
    )
    builder.apply_acl("fw", "Gi0/3", "DMZ_IN", direction="out")

    # External traffic entering the enterprise may only target the DMZ.
    builder.acl(
        "fw",
        "OUTSIDE_IN",
        [
            "permit ip 10.0.0.0 0.255.255.255 any",
            "permit tcp any host 10.9.1.100 eq www",
            "permit tcp any host 10.9.1.100 eq https",
            "deny ip any any",
        ],
    )
    builder.apply_acl("fw", "Gi0/0", "OUTSIDE_IN", direction="in")

    # Database LAN: only the app VLAN, and only postgres + icmp from it.
    builder.acl(
        "dist1",
        "DB_PROTECT",
        [
            "permit tcp 10.5.20.0 0.0.0.255 host 10.7.1.100 eq 5432",
            "permit icmp 10.5.20.0 0.0.0.255 10.7.1.0 0.0.0.255",
            "permit icmp 10.8.1.0 0.0.0.255 10.7.1.0 0.0.0.255",
            "deny ip any any",
        ],
    )
    builder.apply_acl("dist1", "Gi0/3", "DB_PROTECT", direction="out")


def _describe_interfaces(builder):
    """Give every cabled interface a description, as real configs do."""
    topology = builder.topology
    for link in topology.links():
        for end, other in ((link.a, link.b), (link.b, link.a)):
            config = builder.config(end.device)
            if end.name in config.interfaces:
                iface = config.interfaces[end.name]
                if iface.description is None:
                    iface.description = f"to {other.device} {other.name}"
