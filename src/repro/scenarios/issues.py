"""Reproducible network issues (paper §5).

Three real-world issue classes from the paper's StackExchange references,
instantiated on both evaluation networks:

* **ospf** [9]  — "I can't ping the other router using OSPF": missing/wrong
  ``network`` statements stop adjacencies or prefix advertisement;
* **isp**  [3]  — "Changing configuration on Cisco router": the provider
  renumbered its side, the static default route must follow;
* **vlan** [1]  — "Access port config": a host's access port lands in the
  wrong VLAN.

Plus the Figure 8/9 workload: :func:`interface_down_issues` brings every
cabled interface down in turn and tickets the first host pair whose
connectivity breaks.

An :class:`Issue` carries an ``inject`` mutation (create the fault on a
production network), the ticket metadata (affected endpoints, description),
a *prepared* console fix script (the paper levels the playing field by
having the technician replay prepared commands), and an ``is_resolved``
check that re-verifies the ticket flow on a freshly compiled data plane.
"""

import ipaddress
from dataclasses import dataclass, field

from repro.control.builder import build_dataplane
from repro.dataplane.forwarding import trace_flow
from repro.dataplane.reachability import host_flow
from repro.util.errors import ReproError


@dataclass(frozen=True)
class FixStep:
    """Console commands to run on one device, in order."""

    device: str
    commands: tuple

    def __post_init__(self):
        object.__setattr__(self, "commands", tuple(self.commands))


@dataclass
class Issue:
    """One reproducible fault with its ticket and prepared fix."""

    issue_id: str
    title: str
    description: str
    src_host: str
    dst_host: str
    root_cause_device: str
    complexity: str  # "simple" | "moderate" | "complex"
    fix_script: list = field(default_factory=list)
    _inject: callable = None

    def inject(self, network):
        """Create the fault by mutating ``network``'s configs in place."""
        if self._inject is None:
            raise ReproError(f"issue {self.issue_id} has no injection")
        self._inject(network)

    def ticket_flow(self, network):
        """The representative flow the ticket complains about."""
        return host_flow(network, self.src_host, self.dst_host)

    def is_resolved(self, network):
        """Whether the ticket flow is delivered on a fresh data plane."""
        dataplane = build_dataplane(network)
        trace = trace_flow(
            dataplane, self.ticket_flow(network), start_device=self.src_host
        )
        return trace.success

    def is_broken(self, network):
        """Whether the fault currently manifests (inverse of resolved)."""
        return not self.is_resolved(network)

    @property
    def affected_devices(self):
        """The ticket's endpoints — what the twin scoping starts from."""
        return (self.src_host, self.dst_host)


# ---------------------------------------------------------------------------
# The three standard issues, per network
# ---------------------------------------------------------------------------


def standard_issues(network_name):
    """The ospf/isp/vlan issue set for ``"enterprise"`` or ``"university"``."""
    try:
        return {
            "enterprise": _enterprise_issues,
            "university": _university_issues,
        }[network_name]()
    except KeyError:
        raise ReproError(f"no standard issues for network {network_name!r}") from None


def _remove_ospf_networks(config, prefixes):
    targets = {ipaddress.IPv4Network(p) for p in prefixes}
    config.ospf.networks = [
        statement
        for statement in config.ospf.networks
        if statement.prefix not in targets
    ]


def _enterprise_issues():
    def inject_ospf(network):
        # dist1 loses the network statements for all three uplinks: it stops
        # peering, so the database LAN (and dept1 behind it) fall off the map.
        _remove_ospf_networks(
            network.config("dist1"),
            ("10.0.5.0/30", "10.0.7.0/30", "10.0.8.0/30"),
        )

    ospf = Issue(
        issue_id="ospf",
        title="OSPF adjacency lost on dist1",
        description=(
            "app1 (10.5.20.100) cannot reach the database server db1 "
            "(10.7.1.100). dist1 shows no OSPF neighbors on its uplinks."
        ),
        src_host="app1",
        dst_host="db1",
        root_cause_device="dist1",
        complexity="moderate",
        fix_script=[
            FixStep("dist1", (
                "show ip ospf neighbor",
                "show running-config",
                "configure terminal",
                "router ospf 1",
                "network 10.0.5.0 0.0.0.3 area 0",
                "network 10.0.7.0 0.0.0.3 area 0",
                "network 10.0.8.0 0.0.0.3 area 0",
                "end",
                "ping 10.7.1.100",
                "write memory",
            )),
        ],
        _inject=inject_ospf,
    )

    def inject_isp(network):
        # The provider renumbered its side of the hand-off from .1 to .6;
        # gw's static default still points at the dead .1.
        network.config("isp").interface("Gi0/0").address = (
            ipaddress.IPv4Interface("203.0.113.6/29")
        )
        for route in network.config("isp").static_routes:
            pass  # provider's own routes still resolve via the /29

    isp = Issue(
        issue_id="isp",
        title="ISP hand-off renumbered",
        description=(
            "pc1 (10.5.10.100) cannot reach external host ext1 "
            "(198.51.100.100). The provider renumbered its hand-off "
            "address to 203.0.113.6."
        ),
        src_host="pc1",
        dst_host="ext1",
        root_cause_device="gw",
        complexity="simple",
        fix_script=[
            FixStep("gw", (
                "show ip route",
                "configure terminal",
                "ip route 0.0.0.0 0.0.0.0 203.0.113.6",
                "no ip route 0.0.0.0 0.0.0.0 203.0.113.1",
                "end",
                "write memory",
            )),
        ],
        _inject=inject_isp,
    )

    def inject_vlan(network):
        # pc2's access port on sw2 lands in the app VLAN.
        network.config("sw2").interface("Fa0/2").access_vlan = 20

    vlan = Issue(
        issue_id="vlan",
        title="Access port in the wrong VLAN",
        description=(
            "pc2 (10.5.10.101) lost connectivity to pc1 (10.5.10.100) and "
            "its gateway after maintenance on sw2."
        ),
        src_host="pc2",
        dst_host="pc1",
        root_cause_device="sw2",
        complexity="complex",
        fix_script=[
            FixStep("pc2", (
                "ping 10.5.10.1",
            )),
            FixStep("dept1", (
                "show ip route",
                "show interfaces",
                "ping 10.5.10.101",
            )),
            FixStep("sw1", (
                "show vlan",
                "show interfaces",
            )),
            FixStep("sw2", (
                "show vlan",
                "show interfaces",
                "configure terminal",
                "interface Fa0/2",
                "switchport access vlan 10",
                "end",
                "show vlan",
                "write memory",
            )),
        ],
        _inject=inject_vlan,
    )

    return {issue.issue_id: issue for issue in (ospf, isp, vlan)}


def _university_issues():
    def inject_ospf(network):
        # dist1 stops advertising the registrar LAN: its network statement
        # for 10.30.1.0/24 disappears.
        _remove_ospf_networks(network.config("dist1"), ("10.30.1.0/24",))

    ospf = Issue(
        issue_id="ospf",
        title="Registrar LAN not advertised",
        description=(
            "lib-pc1 (10.70.10.100) cannot reach the registrar database "
            "db-reg (10.30.1.100); the prefix is missing from OSPF."
        ),
        src_host="lib-pc1",
        dst_host="db-reg",
        root_cause_device="dist1",
        complexity="moderate",
        fix_script=[
            FixStep("dist1", (
                "show ip ospf neighbor",
                "show running-config",
                "configure terminal",
                "router ospf 1",
                "network 10.30.1.0 0.0.0.255 area 0",
                "end",
                "ping 10.30.1.100",
                "write memory",
            )),
        ],
        _inject=inject_ospf,
    )

    def inject_isp(network):
        # During the provider migration the default-route origination on
        # border1 was lost: the campus no longer learns 0.0.0.0/0.
        network.config("border1").ospf.default_information_originate = False

    isp = Issue(
        issue_id="isp",
        title="Default route origination lost after ISP migration",
        description=(
            "cs-pc1 (10.50.10.100) cannot reach the external host ext1 "
            "(198.18.0.100); border1 stopped originating the default route."
        ),
        src_host="cs-pc1",
        dst_host="ext1",
        root_cause_device="border1",
        complexity="simple",
        fix_script=[
            FixStep("border1", (
                "show ip route",
                "configure terminal",
                "router ospf 1",
                "default-information originate",
                "end",
                "write memory",
            )),
        ],
        _inject=inject_isp,
    )

    def inject_vlan(network):
        network.config("sw-cs2").interface("Fa0/3").access_vlan = 20

    vlan = Issue(
        issue_id="vlan",
        title="CS access port in the labs VLAN",
        description=(
            "cs-pc3 (10.50.10.102) lost connectivity to cs-pc1 "
            "(10.50.10.100) after switch maintenance."
        ),
        src_host="cs-pc3",
        dst_host="cs-pc1",
        root_cause_device="sw-cs2",
        complexity="complex",
        fix_script=[
            FixStep("cs-pc3", (
                "ping 10.50.10.1",
            )),
            FixStep("cs-gw", (
                "show ip route",
                "show interfaces",
                "ping 10.50.10.102",
            )),
            FixStep("sw-cs1", (
                "show vlan",
                "show interfaces",
            )),
            FixStep("sw-cs2", (
                "show vlan",
                "show interfaces",
                "configure terminal",
                "interface Fa0/3",
                "switchport access vlan 10",
                "end",
                "show vlan",
                "write memory",
            )),
        ],
        _inject=inject_vlan,
    )

    return {issue.issue_id: issue for issue in (ospf, isp, vlan)}


# ---------------------------------------------------------------------------
# Interface-down sweep (Figures 8 and 9)
# ---------------------------------------------------------------------------


def interface_down_issues(network, devices=None):
    """One issue per cabled router/switch interface whose loss breaks a host pair.

    Mirrors the paper's Figure 8/9 workload: "we create an issue by bringing
    down each interface". Interfaces whose loss breaks nothing (redundant
    parallel links) yield no ticket and are skipped — there is nothing to
    debug. The prepared fix is a single ``no shutdown``.
    """
    baseline = _reachable_pairs(network)
    issues = []
    candidates = devices if devices is not None else (
        network.routers() + network.switches()
    )
    for device in candidates:
        config = network.config(device)
        for iface_name in sorted(config.interfaces):
            iface = config.interfaces[iface_name]
            if iface.shutdown:
                continue
            if network.topology.link_at(device, iface_name) is None:
                continue
            broken = network.copy()
            broken.config(device).interface(iface_name).shutdown = True
            broken_pair = _first_broken_pair(broken, baseline)
            if broken_pair is None:
                continue
            issues.append(
                _interface_down_issue(device, iface_name, broken_pair)
            )
    return issues


def _interface_down_issue(device, iface_name, broken_pair):
    src, dst = broken_pair

    def inject(network, _device=device, _iface=iface_name):
        network.config(_device).interface(_iface).shutdown = True

    return Issue(
        issue_id=f"ifdown:{device}:{iface_name}",
        title=f"Interface {iface_name} down on {device}",
        description=f"{src} cannot reach {dst}.",
        src_host=src,
        dst_host=dst,
        root_cause_device=device,
        complexity="simple",
        fix_script=[
            FixStep(device, (
                "show interfaces",
                "configure terminal",
                f"interface {iface_name}",
                "no shutdown",
                "end",
                "write memory",
            )),
        ],
        _inject=inject,
    )


def _reachable_pairs(network):
    """Ordered host pairs currently reachable (icmp representative flow)."""
    from repro.dataplane.reachability import ReachabilityAnalyzer

    analyzer = ReachabilityAnalyzer(build_dataplane(network))
    return {
        pair
        for pair, reachable in analyzer.reachability_matrix().items()
        if reachable
    }


def _first_broken_pair(broken_network, baseline_pairs):
    """The first baseline-reachable pair no longer delivered, or ``None``."""
    from repro.dataplane.reachability import ReachabilityAnalyzer

    analyzer = ReachabilityAnalyzer(build_dataplane(broken_network))
    for src, dst in sorted(baseline_pairs):
        if not analyzer.hosts_reachable(src, dst):
            return (src, dst)
    return None
