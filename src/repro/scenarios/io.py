"""Save/load networks as on-disk snapshot directories (Batfish-style).

A snapshot directory holds the network exactly the way operators (and
Batfish) exchange it::

    <snapshot>/
      topology.json          devices, kinds, and cabling
      configs/
        <hostname>.cfg       IOS-style configuration per device

``save_network`` writes one; ``load_network`` parses it back. The scenario
networks round-trip exactly (tested), so users can dump them, edit configs
with a text editor, and reload.
"""

import json
from pathlib import Path

from repro.config.parser import parse_config
from repro.config.serializer import serialize_config
from repro.net.network import Network
from repro.net.topology import DeviceKind, Topology
from repro.util.errors import ReproError

_TOPOLOGY_FILE = "topology.json"
_CONFIG_DIR = "configs"


def save_network(network, directory):
    """Write ``network`` to ``directory`` (created if needed)."""
    root = Path(directory)
    config_dir = root / _CONFIG_DIR
    config_dir.mkdir(parents=True, exist_ok=True)

    document = {
        "name": network.name,
        "devices": [
            {"name": device.name, "kind": device.kind.value}
            for device in network.topology.devices()
        ],
        "links": [
            {
                "a": {"device": link.a.device, "interface": link.a.name},
                "b": {"device": link.b.device, "interface": link.b.name},
            }
            for link in network.topology.links()
        ],
    }
    (root / _TOPOLOGY_FILE).write_text(json.dumps(document, indent=2) + "\n")

    for name, config in network.configs.items():
        (config_dir / f"{name}.cfg").write_text(serialize_config(config))
    return root


def load_network(directory):
    """Parse a snapshot directory back into a :class:`Network`."""
    root = Path(directory)
    topology_path = root / _TOPOLOGY_FILE
    if not topology_path.exists():
        raise ReproError(f"no {_TOPOLOGY_FILE} in {root}")
    try:
        document = json.loads(topology_path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"bad topology file: {exc}") from None

    topology = Topology(document.get("name", root.name))
    for entry in document.get("devices", []):
        try:
            kind = DeviceKind(entry["kind"])
        except ValueError:
            raise ReproError(
                f"unknown device kind {entry.get('kind')!r}"
            ) from None
        topology.add_device(entry["name"], kind)
    for link in document.get("links", []):
        topology.add_link(
            link["a"]["device"], link["a"]["interface"],
            link["b"]["device"], link["b"]["interface"],
        )

    configs = {}
    config_dir = root / _CONFIG_DIR
    for device in topology.devices():
        path = config_dir / f"{device.name}.cfg"
        if not path.exists():
            raise ReproError(f"missing config file {path}")
        configs[device.name] = parse_config(
            path.read_text(), hostname=device.name
        )
    return Network(topology, configs)
