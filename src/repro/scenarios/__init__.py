"""Evaluation networks and reproducible issues (paper §5).

* :mod:`repro.scenarios.builder` — fluent construction of topology+configs;
* :mod:`repro.scenarios.enterprise` — the 9-router/9-host enterprise network;
* :mod:`repro.scenarios.university` — the 13-router/17-host university network;
* :mod:`repro.scenarios.issues` — the OSPF / ISP / VLAN issues and the
  interface-down issue generator used by Figures 8 and 9;
* :mod:`repro.scenarios.generate` — seeded mega-network generator
  (fat-tree / campus / hub-spoke, hundreds to thousands of devices) for
  the scale benchmarks; see docs/SCALING.md.
"""

from repro.scenarios.builder import NetworkBuilder
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.generate import (
    SHAPES,
    GeneratedScenario,
    generate_scenario,
)
from repro.scenarios.issues import (
    Issue,
    interface_down_issues,
    standard_issues,
)
from repro.scenarios.university import build_university_network

__all__ = [
    "GeneratedScenario",
    "Issue",
    "NetworkBuilder",
    "SHAPES",
    "build_enterprise_network",
    "build_university_network",
    "generate_scenario",
    "interface_down_issues",
    "standard_issues",
]
