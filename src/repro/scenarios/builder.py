"""Fluent construction of networks (topology + per-device configs).

The scenario networks (and many tests) are built with this instead of raw
config text: the builder assigns addresses, wires default gateways, and emits
OSPF network statements covering whatever interfaces a router ended up with —
the repetitive parts of writing IOS configs by hand.
"""

import ipaddress

from repro.config.acl import Acl, AclEntry
from repro.config.model import (
    DeviceConfig,
    OspfConfig,
    OspfNetwork,
    StaticRoute,
    VlanConfig,
)
from repro.net.network import Network
from repro.net.topology import DeviceKind, Topology
from repro.util.errors import TopologyError


class NetworkBuilder:
    """Accumulates devices, cabling, and configuration, then builds a Network."""

    def __init__(self, name):
        self.topology = Topology(name)
        self.configs = {}

    # -- devices -------------------------------------------------------------

    def router(self, name):
        self._add_device(name, DeviceKind.ROUTER)
        return self

    def switch(self, name):
        self._add_device(name, DeviceKind.SWITCH)
        return self

    def host(self, name):
        self._add_device(name, DeviceKind.HOST)
        return self

    def _add_device(self, name, kind):
        self.topology.add_device(name, kind)
        self.configs[name] = DeviceConfig(hostname=name)

    def config(self, name):
        """The (mutable) config of an already-declared device."""
        try:
            return self.configs[name]
        except KeyError:
            raise TopologyError(f"device {name!r} not declared") from None

    # -- L3 cabling ------------------------------------------------------------

    def p2p(self, dev_a, iface_a, dev_b, iface_b, subnet):
        """Point-to-point routed link; side A gets the first host IP, B the second."""
        net = ipaddress.IPv4Network(subnet)
        hosts = list(net.hosts())
        if len(hosts) < 2:
            raise TopologyError(f"subnet {subnet} too small for a p2p link")
        self.topology.add_link(dev_a, iface_a, dev_b, iface_b)
        self._address(dev_a, iface_a, hosts[0], net.prefixlen)
        self._address(dev_b, iface_b, hosts[1], net.prefixlen)
        return self

    def attach_host(self, host, host_iface, router, router_iface, subnet,
                    host_octet_offset=99):
        """Cable a host directly to a router; router gets .1, host gets .1+offset.

        Sets the host's default gateway to the router address.
        """
        net = ipaddress.IPv4Network(subnet)
        hosts = list(net.hosts())
        router_ip = hosts[0]
        host_ip = hosts[min(host_octet_offset, len(hosts) - 1)]
        self.topology.add_link(router, router_iface, host, host_iface)
        self._address(router, router_iface, router_ip, net.prefixlen)
        self._address(host, host_iface, host_ip, net.prefixlen)
        self.configs[host].default_gateway = router_ip
        return self

    def _address(self, device, iface_name, ip, prefixlen):
        iface = self.config(device).interface(iface_name, create=True)
        iface.address = ipaddress.IPv4Interface((ip, prefixlen))
        iface.shutdown = False

    def address(self, device, iface_name, cidr):
        """Assign an explicit address (``"10.0.0.1/24"``) to an interface."""
        parsed = ipaddress.IPv4Interface(cidr)
        self._address(device, iface_name, parsed.ip, parsed.network.prefixlen)
        return self

    # -- L2 cabling -------------------------------------------------------------

    def vlan(self, switch, vlan_id, name=None):
        """Declare a VLAN on a switch."""
        self.config(switch).vlans[vlan_id] = VlanConfig(vlan_id, name=name)
        return self

    def access_link(self, device, iface, switch, switch_iface, vlan_id):
        """Cable ``device`` into an access port on ``switch`` in ``vlan_id``.

        The device side keeps whatever addressing it has (use :meth:`address`
        or :meth:`lan_host`).
        """
        self.topology.add_link(device, iface, switch, switch_iface)
        port = self.config(switch).interface(switch_iface, create=True)
        port.switchport_mode = "access"
        port.access_vlan = vlan_id
        port.shutdown = False
        self.config(device).interface(iface, create=True)
        return self

    def trunk_link(self, switch_a, iface_a, switch_b, iface_b, vlans):
        """Trunk two switches together carrying ``vlans``."""
        self.topology.add_link(switch_a, iface_a, switch_b, iface_b)
        for switch, iface_name in ((switch_a, iface_a), (switch_b, iface_b)):
            port = self.config(switch).interface(iface_name, create=True)
            port.switchport_mode = "trunk"
            port.trunk_vlans = tuple(sorted(vlans))
            port.shutdown = False
        return self

    def lan_host(self, host, iface, cidr, gateway):
        """Address a host on a switched LAN and point it at its gateway."""
        self.address(host, iface, cidr)
        self.config(host).default_gateway = ipaddress.IPv4Address(gateway)
        return self

    # -- routing -----------------------------------------------------------------

    def enable_ospf(self, router, area=0, process_id=1, passive=(),
                    default_originate=False):
        """Run OSPF on every routed interface the router currently has."""
        config = self.config(router)
        if config.ospf is None:
            config.ospf = OspfConfig(process_id=process_id)
        for iface in config.routed_interfaces():
            statement = OspfNetwork(prefix=iface.address.network, area=area)
            if statement not in config.ospf.networks:
                config.ospf.networks.append(statement)
        config.ospf.passive_interfaces.update(passive)
        if default_originate:
            config.ospf.default_information_originate = True
        return self

    def enable_bgp(self, router, asn, neighbors=(), networks=()):
        """Run eBGP on a router.

        ``neighbors`` is an iterable of (peer_ip, remote_as); ``networks``
        the prefixes to originate.
        """
        from repro.config.model import BgpConfig, BgpNeighbor

        config = self.config(router)
        if config.bgp is None:
            config.bgp = BgpConfig(asn=asn)
        for peer_ip, remote_as in neighbors:
            statement = BgpNeighbor(
                address=ipaddress.IPv4Address(peer_ip), remote_as=remote_as
            )
            if statement not in config.bgp.neighbors:
                config.bgp.neighbors.append(statement)
        for prefix in networks:
            parsed = ipaddress.IPv4Network(prefix)
            if parsed not in config.bgp.networks:
                config.bgp.networks.append(parsed)
        return self

    def static_route(self, router, prefix, next_hop, distance=1):
        """Install a static route."""
        self.config(router).static_routes.append(
            StaticRoute(
                prefix=ipaddress.IPv4Network(prefix),
                next_hop=ipaddress.IPv4Address(next_hop),
                distance=distance,
            )
        )
        return self

    # -- security ----------------------------------------------------------------

    def acl(self, device, name, entry_texts, kind="extended"):
        """Define an ACL from IOS entry texts."""
        entries = [AclEntry.parse(text, kind=kind) for text in entry_texts]
        self.config(device).add_acl(Acl(name=name, kind=kind, entries=entries))
        return self

    def apply_acl(self, device, iface_name, acl_name, direction="in"):
        """Bind an ACL to an interface direction."""
        iface = self.config(device).interface(iface_name)
        if direction == "in":
            iface.access_group_in = acl_name
        elif direction == "out":
            iface.access_group_out = acl_name
        else:
            raise TopologyError(f"unknown ACL direction {direction!r}")
        return self

    def credentials(self, device, enable_secret=None, vty_password=None,
                    snmp_community=None):
        """Set management credentials (the sensitive data twins must hide)."""
        config = self.config(device)
        if enable_secret is not None:
            config.enable_secret = enable_secret
        if vty_password is not None:
            config.vty_password = vty_password
        if snmp_community is not None:
            config.snmp_community = snmp_community
        return self

    # -- output -------------------------------------------------------------------

    def build(self):
        """Materialise the :class:`~repro.net.network.Network`."""
        return Network(self.topology, self.configs)
