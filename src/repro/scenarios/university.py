"""The university evaluation network (paper Table 1: 13 routers, 17 hosts, 92 links).

A campus design with the density the paper's link count implies: dual border
routers, a four-router core with parallel (LAG-style) links, five
distribution routers dual-homed into the core, two department gateways, and
six access switches. Redundant parallel links are what push the link count
into the nineties, exactly as in real campus builds.

Routers (13): border1 border2 core1-4 dist1-5 cs-gw ee-gw
Switches (6): sw-cs1 sw-cs2 sw-ee1 sw-ee2 sw-lib sw-dorm  (+ server farm ports
on core2/core4)
Hosts (17): ext1 www mail dns db-reg hpc1 hpc2 cs-pc1-3 lab1 lab2
ee-pc1 ee-pc2 lib-pc1 dorm-pc1 dorm-pc2

Security intent: outside traffic only reaches the public servers; the
registrar database accepts connections only from admin and library subnets;
dorms are isolated from department and registrar LANs; HPC nodes accept
sessions only from CS subnets.
"""

from repro.scenarios.builder import NetworkBuilder

SENSITIVE_DEVICES = ("dist1", "border1")

ROUTERS = (
    "border1", "border2", "core1", "core2", "core3", "core4",
    "dist1", "dist2", "dist3", "dist4", "dist5", "cs-gw", "ee-gw",
)
SWITCHES = ("sw-cs1", "sw-cs2", "sw-ee1", "sw-ee2", "sw-lib", "sw-dorm")
HOSTS = (
    "ext1", "www", "mail", "dns", "db-reg", "hpc1", "hpc2",
    "cs-pc1", "cs-pc2", "cs-pc3", "lab1", "lab2",
    "ee-pc1", "ee-pc2", "lib-pc1", "dorm-pc1", "dorm-pc2",
)


def build_university_network():
    """Construct the university network with full configurations."""
    builder = NetworkBuilder("university")
    for name in ROUTERS:
        builder.router(name)
    for name in SWITCHES:
        builder.switch(name)
    for name in HOSTS:
        builder.host(name)

    _cable_backbone(builder)
    _cable_access(builder)
    _configure_routing(builder)
    _configure_security(builder)
    _describe_interfaces(builder)
    return builder.build()


def _cable_backbone(builder):
    """Borders, core mesh, and distribution — with parallel link pairs."""
    ports = _PortAllocator()

    def p2p(dev_a, dev_b, subnet):
        builder.p2p(dev_a, ports.next(dev_a), dev_b, ports.next(dev_b), subnet)

    # Triple parallel links between the borders (LAG members).
    p2p("border1", "border2", "10.100.0.0/30")
    p2p("border1", "border2", "10.100.0.4/30")
    p2p("border1", "border2", "10.100.0.8/30")

    # Each border connects to every core router (8 links), twice (16).
    subnet = _SubnetAllocator("10.101")
    for border in ("border1", "border2"):
        for core in ("core1", "core2", "core3", "core4"):
            p2p(border, core, subnet.next())
            p2p(border, core, subnet.next())

    # Full core mesh, parallel pairs (12 links).
    subnet = _SubnetAllocator("10.102")
    cores = ("core1", "core2", "core3", "core4")
    for i, left in enumerate(cores):
        for right in cores[i + 1:]:
            p2p(left, right, subnet.next())
            p2p(left, right, subnet.next())

    # Each dist dual-homed to two cores, parallel pairs (20 links).
    homing = {
        "dist1": ("core1", "core2"),
        "dist2": ("core2", "core3"),
        "dist3": ("core3", "core4"),
        "dist4": ("core4", "core1"),
        "dist5": ("core1", "core3"),
    }
    subnet = _SubnetAllocator("10.103")
    for dist, uplinks in homing.items():
        for core in uplinks:
            p2p(dist, core, subnet.next())
            p2p(dist, core, subnet.next())

    # Distribution ring, parallel pairs (10 links).
    subnet = _SubnetAllocator("10.104")
    ring = ("dist1", "dist2", "dist3", "dist4", "dist5")
    for i, left in enumerate(ring):
        p2p(left, ring[(i + 1) % len(ring)], subnet.next())
        p2p(left, ring[(i + 1) % len(ring)], subnet.next())

    # Department gateways dual-homed; the CS uplink to dist1 is doubled
    # (5 links).
    subnet = _SubnetAllocator("10.105")
    p2p("cs-gw", "dist1", subnet.next())
    p2p("cs-gw", "dist1", subnet.next())
    p2p("cs-gw", "dist2", subnet.next())
    p2p("ee-gw", "dist2", subnet.next())
    p2p("ee-gw", "dist3", subnet.next())

    builder._ports = ports  # reused by access cabling


def _cable_access(builder):
    """Switches, LANs, hosts, and the external feed."""
    ports = builder._ports

    # External feed (1 host link).
    builder.attach_host("ext1", "eth0", "border1", ports.next("border1"),
                        "198.18.0.0/24")

    # Server farm: public servers directly attached to core routers.
    builder.attach_host("www", "eth0", "core2", ports.next("core2"),
                        "10.20.30.0/24", host_octet_offset=9)
    builder.attach_host("mail", "eth0", "core2", ports.next("core2"),
                        "10.20.31.0/24", host_octet_offset=9)
    builder.attach_host("dns", "eth0", "core4", ports.next("core4"),
                        "10.20.32.0/24", host_octet_offset=9)

    # Registrar database on dist1 (sensitive).
    builder.attach_host("db-reg", "eth0", "dist1", ports.next("dist1"),
                        "10.30.1.0/24")

    # HPC cluster on dist5.
    builder.attach_host("hpc1", "eth0", "dist5", ports.next("dist5"),
                        "10.40.1.0/24")
    builder.attach_host("hpc2", "eth0", "dist5", ports.next("dist5"),
                        "10.40.2.0/24")

    # CS department: two switches, VLAN 10 (staff) and VLAN 20 (labs).
    for switch in ("sw-cs1", "sw-cs2"):
        builder.vlan(switch, 10, "cs-staff").vlan(switch, 20, "cs-labs")
    builder.access_link("cs-gw", ports.next("cs-gw"), "sw-cs1", "Fa0/1", 10)
    builder.address("cs-gw", ports.last("cs-gw"), "10.50.10.1/24")
    builder.access_link("cs-gw", ports.next("cs-gw"), "sw-cs1", "Fa0/2", 20)
    builder.address("cs-gw", ports.last("cs-gw"), "10.50.20.1/24")
    builder.trunk_link("sw-cs1", "Fa0/24", "sw-cs2", "Fa0/24", vlans=(10, 20))
    builder.access_link("cs-pc1", "eth0", "sw-cs1", "Fa0/3", 10)
    builder.lan_host("cs-pc1", "eth0", "10.50.10.100/24", "10.50.10.1")
    builder.access_link("cs-pc2", "eth0", "sw-cs1", "Fa0/4", 10)
    builder.lan_host("cs-pc2", "eth0", "10.50.10.101/24", "10.50.10.1")
    builder.access_link("cs-pc3", "eth0", "sw-cs2", "Fa0/3", 10)
    builder.lan_host("cs-pc3", "eth0", "10.50.10.102/24", "10.50.10.1")
    builder.access_link("lab1", "eth0", "sw-cs2", "Fa0/4", 20)
    builder.lan_host("lab1", "eth0", "10.50.20.100/24", "10.50.20.1")
    builder.access_link("lab2", "eth0", "sw-cs2", "Fa0/5", 20)
    builder.lan_host("lab2", "eth0", "10.50.20.101/24", "10.50.20.1")

    # EE department: two switches, VLAN 10 only.
    for switch in ("sw-ee1", "sw-ee2"):
        builder.vlan(switch, 10, "ee-staff").vlan(switch, 20, "ee-spare")
    builder.access_link("ee-gw", ports.next("ee-gw"), "sw-ee1", "Fa0/1", 10)
    builder.address("ee-gw", ports.last("ee-gw"), "10.60.10.1/24")
    builder.access_link("ee-gw", ports.next("ee-gw"), "sw-ee1", "Fa0/2", 20)
    builder.address("ee-gw", ports.last("ee-gw"), "10.60.20.1/24")
    builder.trunk_link("sw-ee1", "Fa0/24", "sw-ee2", "Fa0/24", vlans=(10, 20))
    builder.access_link("ee-pc1", "eth0", "sw-ee1", "Fa0/3", 10)
    builder.lan_host("ee-pc1", "eth0", "10.60.10.100/24", "10.60.10.1")
    builder.access_link("ee-pc2", "eth0", "sw-ee2", "Fa0/3", 10)
    builder.lan_host("ee-pc2", "eth0", "10.60.10.101/24", "10.60.10.1")

    # Library: one switch on dist4, dual gateway ports (VLANs 10 and 20).
    builder.vlan("sw-lib", 10, "library").vlan("sw-lib", 20, "lib-kiosk")
    builder.access_link("dist4", ports.next("dist4"), "sw-lib", "Fa0/1", 10)
    builder.address("dist4", ports.last("dist4"), "10.70.10.1/24")
    builder.access_link("dist4", ports.next("dist4"), "sw-lib", "Fa0/2", 20)
    builder.address("dist4", ports.last("dist4"), "10.70.20.1/24")
    builder.access_link("lib-pc1", "eth0", "sw-lib", "Fa0/3", 10)
    builder.lan_host("lib-pc1", "eth0", "10.70.10.100/24", "10.70.10.1")

    # Dorms: one switch on dist5.
    builder.vlan("sw-dorm", 10, "dorm")
    builder.access_link("dist5", ports.next("dist5"), "sw-dorm", "Fa0/1", 10)
    builder.address("dist5", ports.last("dist5"), "10.80.10.1/24")
    builder.access_link("dorm-pc1", "eth0", "sw-dorm", "Fa0/2", 10)
    builder.lan_host("dorm-pc1", "eth0", "10.80.10.100/24", "10.80.10.1")
    builder.access_link("dorm-pc2", "eth0", "sw-dorm", "Fa0/3", 10)
    builder.lan_host("dorm-pc2", "eth0", "10.80.10.101/24", "10.80.10.1")


def _configure_routing(builder):
    for router in ROUTERS:
        config = builder.config(router)
        passive = [
            iface.name
            for iface in config.routed_interfaces()
            # LAN-facing subnets are /24s; backbone links are /30s.
            if iface.address.network.prefixlen != 30
        ]
        builder.enable_ospf(
            router, passive=passive, default_originate=(router == "border1")
        )
        if router == "border1":
            # The external feed never enters the IGP: the campus reaches the
            # outside world only through the originated default route.
            config.ospf.networks = [
                statement
                for statement in config.ospf.networks
                if str(statement.prefix) != "198.18.0.0/24"
            ]
        builder.credentials(
            router,
            enable_secret=f"uni-secret-{router}",
            vty_password=f"vty-{router}",
            snmp_community="uni-community",
        )
    # border1 reaches "the internet" through the external feed's far side.
    builder.static_route("border1", "0.0.0.0/0", "198.18.0.100")


def _configure_security(builder):
    # Outside world reaches only the public servers.
    builder.acl(
        "border1",
        "OUTSIDE_IN",
        [
            "permit tcp host 198.18.0.100 host 10.20.30.10 eq www",
            "permit tcp host 198.18.0.100 host 10.20.30.10 eq https",
            "permit tcp host 198.18.0.100 host 10.20.31.10 eq smtp",
            "permit udp host 198.18.0.100 host 10.20.32.10 eq domain",
            "deny ip host 198.18.0.100 any",
            "permit ip any any",
        ],
    )
    builder.apply_acl("border1", _iface_toward(builder, "border1", "ext1"),
                      "OUTSIDE_IN", direction="in")

    # Registrar DB: only library and CS staff subnets, plus ICMP from them.
    builder.acl(
        "dist1",
        "REG_PROTECT",
        [
            "permit tcp 10.70.10.0 0.0.0.255 host 10.30.1.100 eq 5432",
            "permit tcp 10.50.10.0 0.0.0.255 host 10.30.1.100 eq 5432",
            "permit icmp 10.70.10.0 0.0.0.255 10.30.1.0 0.0.0.255",
            "permit icmp 10.50.10.0 0.0.0.255 10.30.1.0 0.0.0.255",
            "deny ip any any",
        ],
    )
    builder.apply_acl("dist1", _iface_toward(builder, "dist1", "db-reg"),
                      "REG_PROTECT", direction="out")

    # Dorms may not reach department, registrar, or HPC address space.
    builder.acl(
        "dist5",
        "DORM_OUT",
        [
            "deny ip 10.80.10.0 0.0.0.255 10.30.0.0 0.0.255.255",
            "deny ip 10.80.10.0 0.0.0.255 10.40.0.0 0.0.255.255",
            "deny ip 10.80.10.0 0.0.0.255 10.50.0.0 0.0.255.255",
            "deny ip 10.80.10.0 0.0.0.255 10.60.0.0 0.0.255.255",
            "permit ip any any",
        ],
    )
    builder.apply_acl("dist5", _dorm_gateway_iface(builder), "DORM_OUT",
                      direction="in")

    # HPC accepts sessions only from CS subnets (and monitoring ICMP).
    builder.acl(
        "dist5",
        "HPC_PROTECT",
        [
            "permit tcp 10.50.0.0 0.0.255.255 10.40.0.0 0.0.255.255 eq ssh",
            "permit icmp 10.50.0.0 0.0.255.255 10.40.0.0 0.0.255.255",
            "deny ip any any",
        ],
    )
    for host in ("hpc1", "hpc2"):
        builder.apply_acl("dist5", _iface_toward(builder, "dist5", host),
                          "HPC_PROTECT", direction="out")


def _iface_toward(builder, device, neighbor):
    """The interface name on ``device`` cabled toward ``neighbor``."""
    for link in builder.topology.links_of(device):
        other = link.other(
            next(
                end for end in link.endpoints() if end.device == device
            )
        )
        if other.device == neighbor:
            return next(
                end for end in link.endpoints() if end.device == device
            ).name
    raise ValueError(f"{device} has no link toward {neighbor}")


def _dorm_gateway_iface(builder):
    """dist5's access port into the dorm switch."""
    for link in builder.topology.links_of("dist5"):
        ends = {end.device: end for end in link.endpoints()}
        if "sw-dorm" in ends:
            return ends["dist5"].name
    raise ValueError("dist5 is not cabled to sw-dorm")


def _describe_interfaces(builder):
    topology = builder.topology
    for link in topology.links():
        for end, other in ((link.a, link.b), (link.b, link.a)):
            config = builder.config(end.device)
            if end.name in config.interfaces:
                iface = config.interfaces[end.name]
                if iface.description is None:
                    iface.description = f"to {other.device} {other.name}"


class _PortAllocator:
    """Sequential Gi0/N interface names per device."""

    def __init__(self):
        self._next = {}
        self._last = {}

    def next(self, device):
        index = self._next.get(device, 0)
        self._next[device] = index + 1
        name = f"Gi0/{index}"
        self._last[device] = name
        return name

    def last(self, device):
        return self._last[device]


class _SubnetAllocator:
    """Sequential /30 subnets under a /16-style prefix like ``10.101``."""

    def __init__(self, base):
        self._base = base
        self._index = 0

    def next(self):
        third = self._index // 64
        fourth = (self._index % 64) * 4
        self._index += 1
        return f"{self._base}.{third}.{fourth}/30"
