"""The RMM baseline: today's MSP access model (paper §2.1, Figure 1).

A central :class:`RmmServer` authenticates technicians and hands out
sessions; per-device :class:`RmmAgent` objects have **root** on their
devices, so an authenticated session gets an unmediated console on every
agent-bearing device — exactly the all-or-nothing access the paper
criticises. This is the "Current" workflow of Figure 7 and the "All"
exposure of Figures 8 and 9.
"""

from dataclasses import dataclass

from repro.emulation.network import EmulatedNetwork
from repro.util.errors import ReproError
from repro.util.ids import IdAllocator


@dataclass
class RmmAgent:
    """A root-privileged agent installed on one device."""

    device: str
    root: bool = True


@dataclass
class Credential:
    """A technician login at the MSP."""

    username: str
    password: str


class RmmSession:
    """An authenticated technician session: full control of every agent."""

    def __init__(self, server, session_id, username):
        self._server = server
        self.session_id = session_id
        self.username = username
        self.commands_run = 0
        self._consoles = {}

    def devices(self):
        """Every agent-bearing device — all of them, that's the point."""
        return sorted(self._server.agents)

    def console(self, device):
        """An unmediated root console on ``device`` (persistent per session)."""
        if device not in self._server.agents:
            raise ReproError(f"no RMM agent on {device!r}")
        if device not in self._consoles:
            self._consoles[device] = self._server.attached.console(device)
        return self._consoles[device]

    def execute(self, device, command):
        """Run a command through the agent."""
        self.commands_run += 1
        return self.console(device).execute(command)


class RmmServer:
    """The MSP's central server, attached to the customer's production network."""

    def __init__(self, production, credentials=(), files=None):
        self.production = production
        if files is None:
            from repro.scenarios.files import default_host_files

            files = default_host_files(production)
        self.attached = EmulatedNetwork.attached(production, files=files)
        self.agents = {
            name: RmmAgent(device=name)
            for name in production.topology.device_names()
        }
        self._credentials = {c.username: c for c in credentials}
        self._ids = IdAllocator()
        self.failed_logins = []

    def add_credential(self, username, password):
        self._credentials[username] = Credential(username, password)

    def authenticate(self, username, password):
        """Password login; phished credentials work — that's the threat model."""
        credential = self._credentials.get(username)
        if credential is None or credential.password != password:
            self.failed_logins.append(username)
            raise ReproError(f"authentication failed for {username!r}")
        return RmmSession(self, self._ids.allocate("RMM"), username)
