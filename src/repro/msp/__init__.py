"""The MSP side: ticketing, the RMM baseline, and the two workflows of Fig. 7."""

from repro.msp.rmm import RmmAgent, RmmServer, RmmSession
from repro.msp.technician import ScriptedTechnician
from repro.msp.ticketing import Ticket, TicketSystem
from repro.msp.workflows import (
    CurrentWorkflow,
    HeimdallWorkflow,
    WorkflowResult,
)

__all__ = [
    "CurrentWorkflow",
    "HeimdallWorkflow",
    "RmmAgent",
    "RmmServer",
    "RmmSession",
    "ScriptedTechnician",
    "Ticket",
    "TicketSystem",
    "WorkflowResult",
]
