"""Ticketing: how work reaches a technician (paper §2.1, workflow step 1).

Timestamps (ticket open time, per-transition history) come from the shared
:class:`~repro.util.clock.SimulatedClock` when one is supplied — the same
clock source the audit trail and the Figure 7 experiments use — never from
the wall clock, so ticket histories are deterministic and directly
comparable with audit timestamps.
"""

import enum
from dataclasses import dataclass, field

from repro.util.errors import ReproError
from repro.util.ids import IdAllocator


class TicketState(enum.Enum):
    OPEN = "open"
    IN_PROGRESS = "in_progress"
    RESOLVED = "resolved"
    CLOSED = "closed"


@dataclass
class Ticket:
    """One unit of outsourced work.

    ``opened_at`` and ``history`` carry simulated-clock seconds (0.0 when
    the owning :class:`TicketSystem` has no clock); ``history`` records one
    ``(state_value, timestamp)`` pair per transition.
    """

    ticket_id: str
    issue: object  # scenarios.Issue
    state: TicketState = TicketState.OPEN
    assignee: str = None
    notes: list = field(default_factory=list)
    opened_at: float = 0.0
    history: list = field(default_factory=list)

    @property
    def description(self):
        return self.issue.description

    def add_note(self, author, text):
        self.notes.append((author, text))


class TicketSystem:
    """Opens, assigns, and closes tickets with a legal state machine."""

    _TRANSITIONS = {
        TicketState.OPEN: (TicketState.IN_PROGRESS, TicketState.CLOSED),
        TicketState.IN_PROGRESS: (TicketState.RESOLVED, TicketState.OPEN),
        TicketState.RESOLVED: (TicketState.CLOSED, TicketState.IN_PROGRESS),
        TicketState.CLOSED: (),
    }

    def __init__(self, clock=None):
        self._ids = IdAllocator()
        self._tickets = {}
        self._clock = clock  # SimulatedClock | None — the shared source

    def _now(self):
        return self._clock.now if self._clock is not None else 0.0

    def open(self, issue):
        """File a ticket for an issue (by the admin or a monitoring system)."""
        ticket = Ticket(
            ticket_id=self._ids.allocate("TICKET"), issue=issue,
            opened_at=self._now(),
        )
        ticket.history.append((ticket.state.value, ticket.opened_at))
        self._tickets[ticket.ticket_id] = ticket
        return ticket

    def assign(self, ticket_id, technician):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.IN_PROGRESS)
        ticket.assignee = technician
        return ticket

    def resolve(self, ticket_id, note=""):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.RESOLVED)
        if note:
            ticket.add_note(ticket.assignee or "unknown", note)
        return ticket

    def close(self, ticket_id):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.CLOSED)
        return ticket

    def reopen(self, ticket_id):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.IN_PROGRESS)
        return ticket

    def get(self, ticket_id):
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise ReproError(f"unknown ticket {ticket_id!r}") from None

    def tickets(self, state=None):
        found = list(self._tickets.values())
        if state is not None:
            found = [t for t in found if t.state == state]
        return found

    def _transition(self, ticket, new_state):
        if new_state not in self._TRANSITIONS[ticket.state]:
            raise ReproError(
                f"ticket {ticket.ticket_id}: illegal transition "
                f"{ticket.state.value} -> {new_state.value}"
            )
        ticket.state = new_state
        ticket.history.append((new_state.value, self._now()))
