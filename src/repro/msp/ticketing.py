"""Ticketing: how work reaches a technician (paper §2.1, workflow step 1)."""

import enum
from dataclasses import dataclass, field

from repro.util.errors import ReproError
from repro.util.ids import IdAllocator


class TicketState(enum.Enum):
    OPEN = "open"
    IN_PROGRESS = "in_progress"
    RESOLVED = "resolved"
    CLOSED = "closed"


@dataclass
class Ticket:
    """One unit of outsourced work."""

    ticket_id: str
    issue: object  # scenarios.Issue
    state: TicketState = TicketState.OPEN
    assignee: str = None
    notes: list = field(default_factory=list)

    @property
    def description(self):
        return self.issue.description

    def add_note(self, author, text):
        self.notes.append((author, text))


class TicketSystem:
    """Opens, assigns, and closes tickets with a legal state machine."""

    _TRANSITIONS = {
        TicketState.OPEN: (TicketState.IN_PROGRESS, TicketState.CLOSED),
        TicketState.IN_PROGRESS: (TicketState.RESOLVED, TicketState.OPEN),
        TicketState.RESOLVED: (TicketState.CLOSED, TicketState.IN_PROGRESS),
        TicketState.CLOSED: (),
    }

    def __init__(self):
        self._ids = IdAllocator()
        self._tickets = {}

    def open(self, issue):
        """File a ticket for an issue (by the admin or a monitoring system)."""
        ticket = Ticket(ticket_id=self._ids.allocate("TICKET"), issue=issue)
        self._tickets[ticket.ticket_id] = ticket
        return ticket

    def assign(self, ticket_id, technician):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.IN_PROGRESS)
        ticket.assignee = technician
        return ticket

    def resolve(self, ticket_id, note=""):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.RESOLVED)
        if note:
            ticket.add_note(ticket.assignee or "unknown", note)
        return ticket

    def close(self, ticket_id):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.CLOSED)
        return ticket

    def reopen(self, ticket_id):
        ticket = self.get(ticket_id)
        self._transition(ticket, TicketState.IN_PROGRESS)
        return ticket

    def get(self, ticket_id):
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise ReproError(f"unknown ticket {ticket_id!r}") from None

    def tickets(self, state=None):
        found = list(self._tickets.values())
        if state is not None:
            found = [t for t in found if t.state == state]
        return found

    def _transition(self, ticket, new_state):
        if new_state not in self._TRANSITIONS[ticket.state]:
            raise ReproError(
                f"ticket {ticket.ticket_id}: illegal transition "
                f"{ticket.state.value} -> {new_state.value}"
            )
        ticket.state = new_state
