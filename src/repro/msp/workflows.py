"""The two Figure 7 workflows, instrumented on the simulated clock.

* **Current** — technician connects to the RMM server and operates directly
  on production: connect → perform operations → save changes.
* **Heimdall** — the same prepared commands run inside a twin, plus the
  three Heimdall steps: generate Privilege_msp, set up the twin network,
  and verify + schedule the changes.

Both workflows replay the *same prepared fix script* (the paper's "level
playing field"), so the difference in total time is exactly Heimdall's
overhead.
"""

from dataclasses import dataclass, field

from repro.core.heimdall import Heimdall
from repro.msp.rmm import RmmServer
from repro.msp.technician import ScriptedTechnician
from repro.obs import trace as obs_trace
from repro.util.clock import CostModel, SimulatedClock


@dataclass
class WorkflowResult:
    """One workflow run on one issue."""

    issue_id: str
    workflow: str
    resolved: bool
    duration_s: float
    breakdown: dict = field(default_factory=dict)
    command_count: int = 0
    denied_commands: int = 0
    detail: object = None  # TicketOutcome for Heimdall runs

    def step_seconds(self, step):
        return self.breakdown.get(step, 0.0)


class _TimedAccess:
    """Charges per-command costs while delegating to an execute backend."""

    def __init__(self, clock, cost_model, run):
        self._clock = clock
        self._cost_model = cost_model
        self._run = run

    def execute(self, device, command):
        result = self._run(device, command)
        head = command.split()[0] if command.split() else ""
        if head in ("write", "copy"):
            self._clock.advance(self._cost_model.save_config_s,
                                step="save changes")
        elif head in ("show", "ping", "traceroute"):
            self._clock.advance(self._cost_model.command_s,
                                step="perform operations")
        else:
            self._clock.advance(self._cost_model.command_config_s,
                                step="perform operations")
        return result


class CurrentWorkflow:
    """Today's MSP model: direct root access through the RMM tool."""

    name = "current"

    def __init__(self, cost_model=None):
        self.cost_model = cost_model or CostModel()

    def resolve(self, production, issue, technician=None):
        """Run the prepared fix directly against production."""
        clock = SimulatedClock()
        technician = technician or ScriptedTechnician()

        with obs_trace.span("workflow.current", issue=issue.issue_id):
            server = RmmServer(production)
            server.add_credential(technician.name, "hunter2")
            session = server.authenticate(technician.name, "hunter2")
            clock.advance(self.cost_model.login_s, step="connect")

            access = _TimedAccess(clock, self.cost_model, session.execute)
            technician.work_on(access, issue.fix_script)

        return WorkflowResult(
            issue_id=issue.issue_id,
            workflow=self.name,
            resolved=issue.is_resolved(production),
            duration_s=clock.now,
            breakdown=clock.breakdown(),
            command_count=technician.command_count,
            denied_commands=technician.denied_count,
        )


class HeimdallWorkflow:
    """The paper's workflow: twin network + policy enforcer."""

    name = "heimdall"

    def __init__(self, policies=None, cost_model=None, scoping="heimdall"):
        self.policies = policies
        self.cost_model = cost_model or CostModel()
        self.scoping = scoping

    def resolve(self, production, issue, technician=None):
        """Run the prepared fix inside a twin, then verify and import."""
        clock = SimulatedClock()
        technician = technician or ScriptedTechnician()

        with obs_trace.span("workflow.heimdall", issue=issue.issue_id):
            heimdall = Heimdall(
                production,
                policies=self.policies,
                scoping_strategy=self.scoping,
                clock=clock,
                cost_model=self.cost_model,
            )
            clock.advance(self.cost_model.login_s, step="connect")
            session = heimdall.open_ticket(issue)

            technician.work_on(
                _SessionAccess(session), issue.fix_script
            )
            outcome = session.submit()

        return WorkflowResult(
            issue_id=issue.issue_id,
            workflow=self.name,
            resolved=outcome.resolved,
            duration_s=clock.now,
            breakdown=clock.breakdown(),
            command_count=technician.command_count,
            denied_commands=technician.denied_count,
            detail=outcome,
        )


class _SessionAccess:
    """Adapter: technician access through a Heimdall ticket session.

    The session already charges per-command costs on Heimdall's clock, so no
    extra timing here.
    """

    def __init__(self, session):
        self._session = session

    def execute(self, device, command):
        return self._session.execute(device, command)
