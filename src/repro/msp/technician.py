"""Scripted technicians: the pilot study's human, made deterministic.

The paper levels the playing field by giving its (author-)technician "a
prepared list of commands to fix each issue"; a
:class:`ScriptedTechnician` replays exactly such a list through whatever
access interface a workflow hands it — an RMM session (current approach) or
a Heimdall ticket session (twin). Adversarial variants live in
:mod:`repro.attack.adversary`.
"""

from dataclasses import dataclass, field


@dataclass
class ScriptedTechnician:
    """Replays prepared fix scripts; records what happened."""

    name: str = "tech-1"
    results: list = field(default_factory=list)

    def work_on(self, access, fix_script):
        """Run every step of ``fix_script`` through ``access``.

        ``access`` needs one method: ``execute(device, command)`` returning a
        :class:`~repro.emulation.console.CommandResult`. Both workflow
        adapters provide it.
        """
        for step in fix_script:
            for command in step.commands:
                self.results.append(access.execute(step.device, command))
        return self.results

    @property
    def denied_count(self):
        return sum(1 for result in self.results if result.denied)

    @property
    def command_count(self):
        return len(self.results)
