"""Interactive technician shell: a human front-end over any access model.

The paper's presentation layer gives technicians "interfaces for them to
perform actions"; this is that interface for a terminal. The shell speaks
the same ``execute(device, command)`` protocol as
:class:`~repro.msp.technician.ScriptedTechnician`, so the identical shell
works over an RMM session (current model) or a Heimdall ticket session
(twin model) — the access object decides what the commands may do.

::

    shell = TechnicianShell(access, devices=session.twin.scope)
    shell.cmdloop()            # interactive
    shell.onecmd("connect r1")  # or scripted, e.g. in tests
"""

import cmd

from repro.util.errors import EmulationError, ReproError


class TechnicianShell(cmd.Cmd):
    """A device-hopping console REPL.

    ``connect <device>`` selects a device; every other line is sent to that
    device's console verbatim. Denied or invalid commands print the error
    the console returned — the shell itself never enforces anything.
    """

    intro = (
        "Technician shell. Commands: connect <device>, devices, history, "
        "quit.\nAnything else goes to the connected device's console."
    )

    def __init__(self, access, devices, stdin=None, stdout=None):
        super().__init__(stdin=stdin, stdout=stdout)
        if stdin is not None:
            self.use_rawinput = False
        self._access = access
        self._devices = sorted(devices)
        self._current = None
        self.history = []  # (device, command, ok)
        self._update_prompt()

    def _update_prompt(self):
        self.prompt = f"{self._current or '(not connected)'}> "

    # -- shell commands -------------------------------------------------------

    def do_connect(self, arg):
        """connect <device> — open the device's console."""
        device = arg.strip()
        if device not in self._devices:
            self.stdout.write(
                f"unknown device {device!r}; try 'devices'\n"
            )
            return
        self._current = device
        self._update_prompt()
        self.stdout.write(f"connected to {device}\n")

    def do_devices(self, arg):
        """devices — list devices this session can reach."""
        for device in self._devices:
            marker = "*" if device == self._current else " "
            self.stdout.write(f" {marker} {device}\n")

    def do_history(self, arg):
        """history — commands issued so far."""
        for device, command, ok in self.history:
            status = "ok" if ok else "DENIED/FAILED"
            self.stdout.write(f"  {device}: {command} [{status}]\n")

    def do_quit(self, arg):
        """quit — leave the shell."""
        return True

    do_exit_shell = do_quit

    def do_EOF(self, arg):
        """End of input leaves the shell."""
        self.stdout.write("\n")
        return True

    def emptyline(self):
        return False

    # -- console forwarding ------------------------------------------------------

    def default(self, line):
        if self._current is None:
            self.stdout.write("not connected; use: connect <device>\n")
            return
        try:
            result = self._access.execute(self._current, line)
        except (EmulationError, ReproError) as exc:
            self.stdout.write(f"error: {exc}\n")
            self.history.append((self._current, line, False))
            return
        self.history.append((self._current, line, result.ok))
        if result.output:
            self.stdout.write(result.output + "\n")
        if not result.ok:
            self.stdout.write((result.error or "failed") + "\n")
