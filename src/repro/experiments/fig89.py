"""Figures 8 and 9 — feasibility / attack-surface sweep."""

from repro.attack.surface import evaluate_approaches
from repro.core.privilege.generator import (
    generate_privilege_spec,
    profile_for_issue,
)
from repro.core.privilege.translator import policy_guard_rules
from repro.core.twin.scoping import scope_all, scope_heimdall, scope_neighbor
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import interface_down_issues
from repro.scenarios.university import build_university_network

# The paper's headline: surface reduction vs the baselines, per network.
PAPER_FIG89 = {"enterprise_reduction_pct": 39.0, "university_reduction_pct": 40.0}

_BUILDERS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}


def heimdall_approaches(policies):
    """The three named approaches of Figures 8/9, as scope functions.

    Each maps (broken_network, issue, dataplane) ->
    (exposed_devices, privilege_spec | None).
    """

    def all_fn(broken, issue, dataplane):
        return scope_all(broken, issue, dataplane), None

    def neighbor_fn(broken, issue, dataplane):
        return scope_neighbor(broken, issue, dataplane), None

    def heimdall_fn(broken, issue, dataplane):
        scope = scope_heimdall(broken, issue, dataplane)
        guards = policy_guard_rules(policies, dataplane)
        spec = generate_privilege_spec(
            scope, profile_for_issue(issue), extra_rules=guards
        )
        return scope, spec

    return {"All": all_fn, "Neighbor": neighbor_fn, "Heimdall": heimdall_fn}


def figure89(network_name, network=None, policies=None, issues=None):
    """The interface-down sweep for one network.

    Returns the list of :class:`~repro.attack.surface.ApproachResult` in
    All / Neighbor / Heimdall order. Pass ``network``/``policies``/``issues``
    to reuse precomputed fixtures (the sweep itself is the expensive part).
    """
    if network is None:
        network = _BUILDERS[network_name]()
    if policies is None:
        policies = mine_policies(network)
    if issues is None:
        issues = interface_down_issues(network)
    return evaluate_approaches(
        network, issues, policies, heimdall_approaches(policies)
    )
