"""Figure 7 — pilot study: time to resolve three real issues."""

from dataclasses import dataclass, field

from repro.msp.workflows import CurrentWorkflow, HeimdallWorkflow
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network

# The per-issue overheads the paper reports for the enterprise network.
PAPER_FIG7 = {"average_overhead_s": 28.0, "isp": 15.0, "vlan": 42.0}

_BUILDERS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}

# Figure 7's stacked steps, shared then Heimdall-only.
FIG7_STEPS = (
    "connect", "perform operations", "save changes",
    "generate privilege", "twin setup", "verify changes", "schedule + commit",
)


@dataclass(frozen=True)
class Figure7Row:
    """Both workflows' timing for one issue."""

    issue_id: str
    complexity: str
    current_s: float
    heimdall_s: float
    current_breakdown: dict
    heimdall_breakdown: dict
    resolved: bool

    @property
    def overhead_s(self):
        return self.heimdall_s - self.current_s


@dataclass
class Figure7Result:
    """The whole figure for one network."""

    network: str
    rows: list = field(default_factory=list)

    @property
    def average_overhead_s(self):
        return sum(r.overhead_s for r in self.rows) / len(self.rows)


def figure7(network_name="enterprise", issue_ids=("vlan", "ospf", "isp"),
            cost_model=None, policies=None):
    """Run both workflows over each issue; returns a :class:`Figure7Result`."""
    builder = _BUILDERS[network_name]
    if policies is None:
        policies = mine_policies(builder())
    issues = standard_issues(network_name)

    result = Figure7Result(network=network_name)
    for issue_id in issue_ids:
        issue = issues[issue_id]

        production = builder()
        issue.inject(production)
        current = CurrentWorkflow(cost_model=cost_model).resolve(
            production, issue
        )

        production = builder()
        issue.inject(production)
        heimdall = HeimdallWorkflow(
            policies=policies, cost_model=cost_model
        ).resolve(production, issue)

        result.rows.append(
            Figure7Row(
                issue_id=issue_id,
                complexity=issue.complexity,
                current_s=current.duration_s,
                heimdall_s=heimdall.duration_s,
                current_breakdown=dict(current.breakdown),
                heimdall_breakdown=dict(heimdall.breakdown),
                resolved=current.resolved and heimdall.resolved,
            )
        )
    return result
