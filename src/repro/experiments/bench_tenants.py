"""Multi-tenant front-door benchmark (``bench --tenants N``).

Measures what org isolation costs. The same workload — N optimistic
maintenance sessions, round-robined over M orgs, every session editing a
**distinct** device of its org's network so each import lands clean (or
semantically rebased) — runs twice:

* **front door** — through :class:`~repro.core.frontdoor.FrontDoor`:
  registry lookup, capability-token validation, token-bucket admission,
  bounded queue, and the org's bulkhead workers (``workers`` per org);
* **direct** — the PR-9 baseline: each org's
  :class:`~repro.core.sessions.SessionManager` driven by a plain thread
  pool of the *same* per-org width, no admission machinery.

``overhead_ratio = frontdoor_elapsed / direct_elapsed`` is the gated
acceptance number (target: ≤ 1.3×, wired into ``bench --check``). The
report also carries a deterministic **flood** phase — a one-slot tenant
whose second admission must shed with a typed
:class:`~repro.util.errors.FrontDoorOverloadError` and a finite
retry-after — plus the isolation invariants (every session imported,
zero ``tenancy.violation`` records, every org's audit chain verifies).

Wall-clock is real ``monotonic_s`` seconds, like the other benchmarks.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.frontdoor import FrontDoor
from repro.core.heimdall import Heimdall
from repro.core.sessions import SessionManager
from repro.core.tenancy import TenantSpec
from repro.experiments.bench_dataplane import NETWORKS, write_report
from repro.scenarios.issues import FixStep, standard_issues
from repro.util import rand
from repro.util.clock import monotonic_s
from repro.util.errors import FrontDoorOverloadError, ReproError

__all__ = ["run_tenants_bench", "tenants_acceptance", "write_report"]

DEFAULT_SESSIONS = 24
DEFAULT_ORGS = 3

#: The gated bound: admission control may cost at most 30% of the direct
#: multi-org throughput at equal load and equal worker width.
OVERHEAD_TARGET = 1.3

#: Per-org bulkhead width used by BOTH phases (front-door workers and the
#: direct baseline's pool), so the ratio isolates admission overhead.
WORKERS_PER_ORG = 2

_SCOPE_ISSUE = "ospf"  # widest twin scope of the standard issues


def _edit_script(production, device, tag):
    """A single-device interface-description edit, unique per ``tag``."""
    iface = sorted(production.config(device).interfaces)[0]
    return (FixStep(device, (
        "configure terminal",
        f"interface {iface}",
        f"description tenants bench edit {tag}",
        "end",
        "write memory",
    )),)


def _session_devices(production, issue, count):
    """``count`` distinct editable devices inside the issue's twin scope."""
    from repro.control.builder import build_dataplane
    from repro.core.twin.scoping import SCOPING_STRATEGIES

    scope = sorted(
        SCOPING_STRATEGIES["heimdall"](
            production, issue, build_dataplane(production)
        )
    )
    devices = [
        device for device in scope
        if production.config(device).interfaces
    ]
    if len(devices) < count:
        raise ReproError(
            f"{count} sessions per org need {count} scoped devices; "
            f"only {len(devices)} available"
        )
    return devices[:count]


def _session_work(issue, script):
    """The callable one admitted session runs on its org's manager."""
    def work(manager):
        session = manager.open_ticket(
            issue, mode="optimistic", profile="interface"
        )
        try:
            session.run_fix_script(script)
        except ReproError:
            session.abandon("bench edit failed")
            raise
        return session.submit()

    return work


def _plan_org(network, sessions_per_org):
    """(production, issue, scripts) for one org's session pack."""
    production = NETWORKS[network]()
    issue = standard_issues(network)[_SCOPE_ISSUE]
    devices = _session_devices(production, issue, sessions_per_org)
    scripts = [
        _edit_script(production, device, f"{index}:{device}")
        for index, device in enumerate(devices)
    ]
    return production, issue, scripts


def _phase_stats(outcomes, errors, elapsed_s):
    imported = sum(
        1 for outcome in outcomes
        if outcome is not None and outcome.status in ("clean", "rebased")
    )
    return {
        "elapsed_s": round(elapsed_s, 3),
        "throughput_per_s": (
            round(len(outcomes) / elapsed_s, 3) if elapsed_s else None
        ),
        "imported": imported,
        "errors": [error for error in errors if error],
    }


def run_tenants_bench(sessions=DEFAULT_SESSIONS, orgs=DEFAULT_ORGS,
                      network="university", seed=7):
    """Run the isolation-overhead benchmark; returns the report dict.

    Args:
        sessions: total maintenance sessions (split round-robin over
            ``orgs``; must divide into at most 23 per university org).
        orgs: tenant count.
        network: scenario network every org runs a copy of.
        seed: :mod:`repro.util.rand` seed.
    """
    if sessions < orgs:
        raise ReproError(
            f"need at least one session per org ({orgs}), got {sessions}"
        )
    if orgs < 1:
        raise ReproError(f"need at least one org, got {orgs}")
    if network not in NETWORKS:
        raise ReproError(
            f"unknown network {network!r}; expected {'/'.join(NETWORKS)}"
        )
    rand.seed(seed)
    org_ids = [f"org-{index}" for index in range(orgs)]
    per_org = [
        sessions // orgs + (1 if index < sessions % orgs else 0)
        for index in range(orgs)
    ]

    # -- phase 1: through the front door -------------------------------------
    plans = {org: _plan_org(network, count)
             for org, count in zip(org_ids, per_org)}
    frontdoor = FrontDoor([
        TenantSpec(
            org_id=org, network=plans[org][0],
            queue_limit=max(count, 1), burst=max(count, 1),
            rate_per_s=1000.0, workers=WORKERS_PER_ORG,
        )
        for org, count in zip(org_ids, per_org)
    ])
    tokens = {
        org: frontdoor.issue_token(org, f"bench-{org}") for org in org_ids
    }
    fd_outcomes, fd_errors = [], []
    started = monotonic_s()
    admissions = []
    for org, count in zip(org_ids, per_org):
        _, issue, scripts = plans[org]
        for index in range(count):
            admissions.append(frontdoor.admit(
                tokens[org], org, _session_work(issue, scripts[index]),
                scope="session.submit", label=f"{org}:{index}",
            ))
    for admission in admissions:
        try:
            fd_outcomes.append(admission.result())
            fd_errors.append(None)
        except ReproError as exc:
            fd_outcomes.append(None)
            fd_errors.append(f"{type(exc).__name__}: {exc}")
    fd_elapsed = monotonic_s() - started
    frontdoor.close()

    violations = 0
    audits_ok = True
    for org in org_ids:
        heimdall = frontdoor.deployment(org).heimdall
        violations += len(
            heimdall.audit.query(action_prefix="tenancy.violation")
        )
        audits_ok = audits_ok and heimdall.audit.verify()

    # -- phase 2: direct managers, same per-org worker width -----------------
    direct_plans = {org: _plan_org(network, count)
                    for org, count in zip(org_ids, per_org)}
    managers = {
        org: SessionManager(Heimdall(direct_plans[org][0]))
        for org in org_ids
    }
    direct_outcomes, direct_errors = [], []
    lock = threading.Lock()

    def run_direct(org, index):
        _, issue, scripts = direct_plans[org]
        try:
            outcome = _session_work(issue, scripts[index])(managers[org])
            with lock:
                direct_outcomes.append(outcome)
                direct_errors.append(None)
        except ReproError as exc:
            with lock:
                direct_outcomes.append(None)
                direct_errors.append(f"{type(exc).__name__}: {exc}")

    pools = {
        org: ThreadPoolExecutor(
            max_workers=WORKERS_PER_ORG,
            thread_name_prefix=f"direct-{org}",
        )
        for org in org_ids
    }
    started = monotonic_s()
    futures = [
        pools[org].submit(run_direct, org, index)
        for org, count in zip(org_ids, per_org)
        for index in range(count)
    ]
    for future in futures:
        future.result()
    direct_elapsed = monotonic_s() - started
    for pool in pools.values():
        pool.shutdown()

    # -- phase 3: deterministic flood — the bound must shed, typed -----------
    flood = _flood_phase(network)

    frontdoor_stats = _phase_stats(fd_outcomes, fd_errors, fd_elapsed)
    direct_stats = _phase_stats(direct_outcomes, direct_errors,
                                direct_elapsed)
    overhead_ratio = (
        round(fd_elapsed / direct_elapsed, 3) if direct_elapsed else None
    )
    invariants = {
        "frontdoor_all_imported": frontdoor_stats["imported"] == sessions
        and not frontdoor_stats["errors"],
        "direct_all_imported": direct_stats["imported"] == sessions
        and not direct_stats["errors"],
        "zero_violations": violations == 0,
        "audit_chains_verify": audits_ok,
        "flood_sheds_typed": flood["shed"],
    }
    acceptance = {
        "overhead_ratio": overhead_ratio,
        "target": OVERHEAD_TARGET,
        "pass": overhead_ratio is not None
        and overhead_ratio <= OVERHEAD_TARGET,
    }
    return {
        "seed": seed,
        "network": network,
        "orgs": orgs,
        "sessions": sessions,
        "workers_per_org": WORKERS_PER_ORG,
        "frontdoor": frontdoor_stats,
        "direct": direct_stats,
        "overhead_ratio": overhead_ratio,
        "flood": flood,
        "violations": violations,
        "invariants": invariants,
        "acceptance": acceptance,
        "ok": all(invariants.values()) and acceptance["pass"],
    }


def _flood_phase(network):
    """One-slot tenant: admission #1 runs, #2 must shed with retry-after."""
    frontdoor = FrontDoor([
        TenantSpec(
            org_id="flood", network=NETWORKS[network](),
            queue_limit=1, burst=1, rate_per_s=0.1, workers=1,
        )
    ])
    token = frontdoor.issue_token("flood", "bench-flood")
    first = frontdoor.admit(
        token, "flood", lambda manager: "ran", label="flood:0"
    ).result()
    shed = False
    retry_after_s = None
    try:
        frontdoor.admit(token, "flood", lambda manager: "never", label="flood:1")
    except FrontDoorOverloadError as exc:
        shed = True
        retry_after_s = exc.retry_after_s
    frontdoor.close()
    return {
        "first_admission": first,
        "shed": shed and retry_after_s is not None,
        "retry_after_s": (
            round(retry_after_s, 3) if retry_after_s is not None else None
        ),
    }


def tenants_acceptance(report):
    """The gated number: ``{"tenants.overhead_ratio": value}``."""
    return {"tenants.overhead_ratio": report["overhead_ratio"]}
