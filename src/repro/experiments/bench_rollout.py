"""Wall-clock benchmarks of the staged (canary) rollout push path.

Measures what the wave machinery costs on top of a monolithic push: the
same multi-device change set is imported monolithically, then as a staged
rollout with incremental mixed-version probe compiles (the default), then
staged again with the probe compiles forced cold. The incremental-vs-cold
ratio is the same compile-reuse story the verifier benchmarks tell, now on
the per-wave health-probe path.

The runner writes ``BENCH_rollout.json``;
``python -m repro.cli bench --rollout`` is the one-command entry point.
"""

import json
import statistics

from repro.control.builder import build_dataplane
from repro.control.cache import clear_dataplane_cache
from repro.core.enforcer.audit import AuditTrail
from repro.core.enforcer.enclave import SimulatedEnclave
from repro.core.enforcer.rollout import RolloutConfig
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.core.enforcer.verifier import ChangeVerifier
from repro.core.heimdall import Heimdall
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import FixStep, standard_issues
from repro.util.clock import monotonic_s
from repro.util.errors import ReproError

DEFAULT_REPEATS = 5

# A benign rider on a device the ospf fix doesn't touch (unused prefix,
# live next hop), so the staged push genuinely spans multiple waves.
_EXTRA_STEPS = {
    "enterprise": (
        FixStep("dist2", (
            "configure terminal",
            "ip route 10.99.0.0 255.255.0.0 10.0.7.1",
            "end",
            "write memory",
        )),
    ),
}


def rollout_workload(name="enterprise"):
    """``(production, changes, policies, invariants)`` for a 2-wave push.

    Production is the network with the ospf issue injected; the change set
    is the twin's fix plus the benign rider, so the default per-device
    wave plan yields two waves. ``invariants`` is the verifier-derived
    invariant policy set a real enforced push would hand the scheduler.
    """
    if name not in _EXTRA_STEPS:
        raise ReproError(
            f"no rollout workload for {name!r}; choose from "
            f"{'/'.join(_EXTRA_STEPS)}"
        )
    network = build_enterprise_network()
    policies = mine_policies(network)
    issue = standard_issues(name)["ospf"]
    issue.inject(network)
    heimdall = Heimdall(network, policies=policies)
    session = heimdall.open_ticket(issue)
    session.run_fix_script(issue.fix_script)
    session.run_fix_script(_EXTRA_STEPS[name])
    changes = session.twin.changes()
    decision = ChangeVerifier(policies).verify(network, changes)
    return network, changes, policies, decision.invariant_policy_ids()


def _timed_pushes(production, changes, policies, invariants, rollout,
                  repeats, warm_cache):
    """Median push milliseconds plus the last report's wave/probe counts."""
    verifier = PolicyVerifier(policies)
    clear_dataplane_cache()
    if warm_cache:
        # Steady state: the enforcer just verified this snapshot, so the
        # production plane (and its traces) are already cached.
        build_dataplane(production)
    samples = []
    report = None
    for _ in range(repeats):
        if not warm_cache:
            clear_dataplane_cache()
        scratch = production.copy()
        scheduler = ChangeScheduler()
        audit = AuditTrail(SimulatedEnclave())
        kwargs = {}
        if rollout is not None:
            kwargs = {
                "rollout": rollout,
                "policy_verifier": verifier,
                "invariant_policy_ids": invariants,
            }
        start = monotonic_s()
        report = scheduler.push(
            scratch, changes, audit=audit, actor="bench", **kwargs
        )
        samples.append((monotonic_s() - start) * 1000.0)
        if report.status != "committed":
            raise ReproError(f"bench push did not commit: {report.status}")
    return statistics.median(samples), report


def bench_rollout_network(name, repeats=DEFAULT_REPEATS):
    """Monolithic vs staged push timings for one scenario network."""
    production, changes, policies, invariants = rollout_workload(name)

    monolithic_ms, _ = _timed_pushes(
        production, changes, policies, invariants,
        rollout=None, repeats=repeats, warm_cache=False,
    )
    incremental_ms, report = _timed_pushes(
        production, changes, policies, invariants,
        rollout=RolloutConfig(), repeats=repeats, warm_cache=True,
    )
    cold_ms, _ = _timed_pushes(
        production, changes, policies, invariants,
        rollout=RolloutConfig(probe_incremental=False),
        repeats=repeats, warm_cache=False,
    )
    clear_dataplane_cache()
    return {
        "devices": len(production.configs),
        "changes": len(changes),
        "invariant_policies": len(invariants),
        "waves": report.waves,
        "probes_per_push": len(report.probes),
        "push": {
            "monolithic_ms": round(monolithic_ms, 3),
            "canary_incremental_ms": round(incremental_ms, 3),
            "canary_cold_ms": round(cold_ms, 3),
            "probe_overhead_x": round(
                incremental_ms / monolithic_ms, 2
            ) if monolithic_ms > 0 else float("inf"),
            "probe_speedup": round(
                cold_ms / incremental_ms, 2
            ) if incremental_ms > 0 else float("inf"),
        },
    }


def run_rollout_benchmarks(networks=None, repeats=DEFAULT_REPEATS):
    """The staged-rollout suite; returns the JSON-ready report dict."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    networks = list(networks) if networks else list(_EXTRA_STEPS)
    report = {
        "benchmark": "staged rollout push path",
        "command": "python -m repro.cli bench --rollout",
        "repeats": repeats,
        "networks": {},
    }
    for name in networks:
        report["networks"][name] = bench_rollout_network(name, repeats)
    return report


def write_report(report, path):
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
