"""A1/A2 — ablations over Heimdall's design choices (DESIGN.md)."""

import ipaddress
from dataclasses import dataclass

from repro.attack.surface import evaluate_approaches
from repro.config.diffing import diff_networks
from repro.config.model import OspfNetwork
from repro.core.enforcer.scheduler import ChangeScheduler
from repro.core.privilege.generator import (
    generate_privilege_spec,
    profile_for_issue,
)
from repro.core.privilege.translator import policy_guard_rules
from repro.core.twin.scoping import SCOPING_STRATEGIES
from repro.policy.mining import mine_policies
from repro.policy.verification import PolicyVerifier
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import interface_down_issues


@dataclass(frozen=True)
class ScopingAblationRow:
    """One scoping strategy's aggregate over the issue sweep."""

    strategy: str
    mean_exposed: float
    total_devices: int
    feasibility_pct: float
    attack_surface_pct: float
    fidelity_pct: float = 100.0


def _mean_fidelity(network, issues, strategy):
    """Mean twin fidelity (paper challenge 2) for one scoping strategy."""
    from repro.core.privilege.ast import PrivilegeSpec
    from repro.core.twin.fidelity import measure_fidelity
    from repro.core.twin.twin import TwinNetwork
    from repro.control.builder import build_dataplane

    total = 0.0
    for issue in issues:
        broken = network.copy()
        issue.inject(broken)
        dataplane = build_dataplane(broken)
        twin = TwinNetwork(
            broken, issue, PrivilegeSpec.allow_all(),
            strategy=strategy, dataplane=dataplane,
        )
        total += measure_fidelity(twin, dataplane).fidelity_pct
    return total / len(issues) if issues else 100.0


def scoping_ablation(network=None, policies=None, issues=None,
                     with_fidelity=True):
    """All four scoping strategies under the identical privilege pipeline."""
    if network is None:
        network = build_enterprise_network()
    if policies is None:
        policies = mine_policies(network)
    if issues is None:
        issues = interface_down_issues(network)

    def approach(strategy):
        def fn(broken, issue, dataplane):
            scope = SCOPING_STRATEGIES[strategy](broken, issue, dataplane)
            guards = policy_guard_rules(policies, dataplane)
            spec = generate_privilege_spec(
                scope, profile_for_issue(issue), extra_rules=guards
            )
            return scope, spec

        return fn

    results = evaluate_approaches(
        network, issues, policies,
        {name: approach(name) for name in SCOPING_STRATEGIES},
    )
    total = len(network.topology.devices())
    return [
        ScopingAblationRow(
            strategy=result.approach,
            mean_exposed=sum(
                len(r.exposed_devices) for r in result.per_issue
            ) / len(result.per_issue),
            total_devices=total,
            feasibility_pct=result.feasibility_pct,
            attack_surface_pct=result.attack_surface_pct,
            fidelity_pct=(
                _mean_fidelity(network, issues, result.approach)
                if with_fidelity
                else 100.0
            ),
        )
        for result in results
    ]


@dataclass(frozen=True)
class GuardAblationRow:
    """Heimdall's metric with/without the policy-derived guard rules."""

    variant: str
    feasibility_pct: float
    attack_surface_pct: float


def guard_rules_ablation(network=None, policies=None, issues=None):
    """A3: what the policy→privilege translator buys.

    Same scoping and task profiles; the only difference is whether
    :func:`policy_guard_rules` prepends its denials. The gap is the part of
    the attack-surface reduction attributable to the translator.
    """
    if network is None:
        network = build_enterprise_network()
    if policies is None:
        policies = mine_policies(network)
    if issues is None:
        issues = interface_down_issues(network)

    def approach(with_guards):
        def fn(broken, issue, dataplane):
            scope = SCOPING_STRATEGIES["heimdall"](broken, issue, dataplane)
            guards = (
                policy_guard_rules(policies, dataplane) if with_guards else ()
            )
            spec = generate_privilege_spec(
                scope, profile_for_issue(issue), extra_rules=guards
            )
            return scope, spec

        return fn

    results = evaluate_approaches(
        network, issues, policies,
        {
            "profile only": approach(False),
            "profile + guards": approach(True),
        },
    )
    return [
        GuardAblationRow(
            variant=result.approach,
            feasibility_pct=result.feasibility_pct,
            attack_surface_pct=result.attack_surface_pct,
        )
        for result in results
    ]


@dataclass(frozen=True)
class SchedulerAblationRow:
    """One push strategy's outcome on the renumbering change set."""

    strategy: str
    batches: int
    checked_states: int
    transient_violations: int


def _renumbering_changes():
    """Renumber the single-homed dist1-dept1 link on the enterprise network."""
    production = build_enterprise_network()
    for device in ("dist1", "dept1"):
        production.config(device).ospf.networks.append(
            OspfNetwork(ipaddress.IPv4Network("10.99.0.0/16"))
        )
    modified = production.copy()
    modified.config("dist1").interface("Gi0/2").address = (
        ipaddress.IPv4Interface("10.99.8.1/30")
    )
    modified.config("dept1").interface("Gi0/0").address = (
        ipaddress.IPv4Interface("10.99.8.2/30")
    )
    return production, diff_networks(production.configs, modified.configs)


def scheduler_ablation(policies=None):
    """Ordered vs naive push on the link-renumbering change set."""
    if policies is None:
        policies = mine_policies(build_enterprise_network())
    verifier = PolicyVerifier(policies)
    scheduler = ChangeScheduler()

    production, changes = _renumbering_changes()
    ordered = scheduler.push(production, changes, policy_verifier=verifier)

    production, changes = _renumbering_changes()
    naive = scheduler.push(
        production, changes,
        policy_verifier=verifier,
        batches=scheduler.naive_order(changes),
    )
    return [
        SchedulerAblationRow(
            "ordered (Heimdall)", len(ordered.batches),
            ordered.checked_states, ordered.transient_violations,
        ),
        SchedulerAblationRow(
            "naive per-device", len(naive.batches),
            naive.checked_states, naive.transient_violations,
        ),
    ]
