"""Scale benchmark: a generated mega-network through the sharded pipeline.

``python -m repro.cli bench --scale N`` generates a seeded topology
(:mod:`repro.scenarios.generate`), compiles it both ways — the monolithic
single-process builder and the sharded pipeline — verifies the generated
invariant policies, and writes ``BENCH_scale.json``. The headline
acceptance number is the **sharded cold-compile speedup**: byte-identical
output (property-tested) at least :data:`SPEEDUP_TARGET` times faster than
``build_dataplane(use_cache=False)`` at N >= 500. ``bench --check`` gates
the committed report's ratio metrics alongside the dataplane and rollout
suites; see docs/SCALING.md for how to read the report.
"""

import json

from repro.control.builder import build_dataplane
from repro.control.shard import (
    DEFAULT_SHARD_SIZE,
    compile_shard_plan,
    effective_workers,
    sharded_compile,
    sharded_verify,
)
from repro.experiments.bench_dataplane import median_ms
from repro.scenarios.generate import SHAPES, generate_scenario
from repro.util.clock import monotonic_s
from repro.util.errors import ReproError

DEFAULT_SIZE = 500
DEFAULT_REPEATS = 5  # odd: the median is a real sample
SPEEDUP_TARGET = 2.0  # sharded cold compile vs single-process, N >= 500


def run_scale_benchmark(size=DEFAULT_SIZE, shape="fat-tree", seed=7,
                        repeats=DEFAULT_REPEATS, workers=None,
                        shard_size=DEFAULT_SHARD_SIZE):
    """Benchmark one generated network; returns the report dict."""
    if shape not in SHAPES:
        raise ReproError(f"unknown shape {shape!r} (choose from {SHAPES})")
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")

    started = monotonic_s()
    scenario = generate_scenario(shape=shape, size=size, seed=seed)
    generate_ms = (monotonic_s() - started) * 1000.0
    network = scenario.network
    plan = compile_shard_plan(network, shard_size=shard_size)

    single_ms = median_ms(
        lambda: build_dataplane(network, use_cache=False), repeats
    )
    sharded_ms = median_ms(
        lambda: sharded_compile(
            network, workers=workers, shard_size=shard_size, use_cache=False
        ),
        repeats,
    )

    # Incremental rebuild of a one-device edit against the cold baseline —
    # the mega-network analogue of the PR-6 ticket workload.
    baseline = build_dataplane(network, use_cache=False)
    issue = next(iter(scenario.issues.values()))
    production = network.copy()
    issue.inject(production)
    incremental_ms = median_ms(
        lambda: build_dataplane(
            production, baseline=baseline,
            changed_devices={issue.root_cause_device}, use_cache=False,
        ),
        repeats,
    )

    plane = sharded_compile(
        network, workers=workers, shard_size=shard_size, use_cache=False
    )
    verify_ms = median_ms(
        lambda: sharded_verify(scenario.policies, plane, workers=workers),
        repeats,
    )
    policies_per_s = (
        len(scenario.policies) / (verify_ms / 1000.0) if verify_ms > 0
        else float("inf")
    )

    sharded_speedup = single_ms / sharded_ms if sharded_ms > 0 else float("inf")
    incremental_speedup = (
        single_ms / incremental_ms if incremental_ms > 0 else float("inf")
    )
    report = {
        "generated": {
            "shape": shape,
            "requested_size": size,
            "seed": seed,
            "devices": scenario.device_count,
            "routers": len(network.routers()),
            "hosts": len(network.hosts()),
            "policies": len(scenario.policies),
            "issues": len(scenario.issues),
            "generate_ms": round(generate_ms, 3),
        },
        "sharding": {
            "shards": len(plan.shards),
            "components": len(set(plan.component_of.values())),
            "shard_size": shard_size,
            # Requested is the caller's knob (None/0 = auto); effective is
            # what the pool actually forks: the cpu-resolved count capped
            # by the shard count, so multi-core runs are interpretable.
            "workers_requested": workers,
            "workers_effective": min(
                effective_workers(workers), max(1, len(plan.shards))
            ),
        },
        "compile": {
            "single_ms": round(single_ms, 3),
            "sharded_ms": round(sharded_ms, 3),
            "incremental_ms": round(incremental_ms, 3),
            "sharded_speedup": round(sharded_speedup, 2),
            "incremental_speedup": round(incremental_speedup, 2),
        },
        "verify": {
            "ms": round(verify_ms, 3),
            "policies_per_s": round(policies_per_s, 1),
        },
        "acceptance": {
            "sharded_cold_speedup": round(sharded_speedup, 2),
            "target": SPEEDUP_TARGET,
            "applies": size >= 500,
            "pass": size < 500 or sharded_speedup >= SPEEDUP_TARGET,
        },
        "repeats": repeats,
    }
    return report


def write_report(report, path):
    """Write the scale benchmark report as stable, diffable JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
