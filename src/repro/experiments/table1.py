"""Table 1 — evaluation network characteristics."""

from dataclasses import dataclass

from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.university import build_university_network

# The paper's reported values, for side-by-side display.
PAPER_TABLE1 = {
    "enterprise": {"routers": 9, "hosts": 9, "links": 22,
                   "policies": 21, "config_lines": 1394},
    "university": {"routers": 13, "hosts": 17, "links": 92,
                   "policies": 175, "config_lines": 2146},
}


@dataclass(frozen=True)
class Table1Row:
    """One network's row, measured and paper-side."""

    network: str
    routers: int
    hosts: int
    links: int
    policies: int
    config_lines: int
    paper: dict

    def cells(self):
        """(label, measured, paper) triples in column order."""
        return [
            ("#routers", self.routers, self.paper["routers"]),
            ("#hosts", self.hosts, self.paper["hosts"]),
            ("#links", self.links, self.paper["links"]),
            ("#policies", self.policies, self.paper["policies"]),
            ("config lines", self.config_lines, self.paper["config_lines"]),
        ]


def table1(networks=None):
    """Measured Table 1 rows for both (or the given) evaluation networks.

    ``networks`` maps name -> Network; defaults to freshly built scenario
    networks.
    """
    if networks is None:
        networks = {
            "enterprise": build_enterprise_network(),
            "university": build_university_network(),
        }
    rows = []
    for name, network in networks.items():
        summary = network.summary()
        policies = mine_policies(network)
        rows.append(
            Table1Row(
                network=name,
                routers=summary["routers"],
                hosts=summary["hosts"],
                links=summary["links"],
                policies=len(policies),
                config_lines=summary["config_lines"],
                paper=PAPER_TABLE1.get(name, {}),
            )
        )
    return rows
