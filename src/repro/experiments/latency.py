"""X1 — verification latency: the §4.3 argument for deferred verification."""

from dataclasses import dataclass

from repro.core.heimdall import Heimdall
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.util.clock import CostModel

# The paper's data point: 25 seconds for 175 constraints.
PAPER_X1 = {"constraints": 175, "latency_s": 25.0}


def verification_latency_curve(counts=(25, 50, 100, 175, 350),
                               cost_model=None):
    """(constraint_count, simulated_latency_s) pairs."""
    cost_model = cost_model or CostModel()
    return [(count, cost_model.verify_s(count)) for count in counts]


@dataclass(frozen=True)
class DeferredComparisonRow:
    """Continuous vs deferred verification cost for one fix session."""

    issue_id: str
    config_actions: int
    continuous_s: float
    deferred_s: float

    @property
    def ratio(self):
        return self.continuous_s / self.deferred_s


def continuous_vs_deferred(network_name="enterprise", policies=None,
                           cost_model=None):
    """Per-issue comparison rows over the standard issues.

    Continuous verification pays one full pass per state-changing action;
    deferred pays exactly one pass per session.
    """
    cost_model = cost_model or CostModel()
    if policies is None:
        policies = mine_policies(build_enterprise_network())
    per_pass = cost_model.verify_s(len(policies))

    rows = []
    for issue_id, issue in standard_issues(network_name).items():
        production = build_enterprise_network()
        issue.inject(production)
        heimdall = Heimdall(production, policies=policies,
                            cost_model=cost_model)
        session = heimdall.open_ticket(issue)
        session.run_fix_script(issue.fix_script)
        config_actions = sum(
            1
            for step in issue.fix_script
            for command in step.commands
            if command.split()[0] not in (
                "show", "ping", "traceroute", "write", "end", "exit",
            )
        )
        session.abandon("latency measurement")
        rows.append(
            DeferredComparisonRow(
                issue_id=issue_id,
                config_actions=config_actions,
                continuous_s=config_actions * per_pass,
                deferred_s=per_pass,
            )
        )
    return rows
