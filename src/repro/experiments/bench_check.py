"""Regression gate: fresh benchmark ratios vs the committed reports.

``python -m repro.cli bench --check`` (wired into ``make check``) re-runs a
small-repeat pass of the data-plane and rollout benchmarks and compares the
**ratio** metrics — verify/compile speedups and the staged-push probe
overhead — against the numbers committed in ``BENCH_dataplane.json`` and
``BENCH_rollout.json``. Ratios, not milliseconds: absolute wall-clock moves
with the machine, but a cold-vs-incremental quotient on the same host in
the same process is stable enough to gate on.

A gated metric regressing by more than :data:`TOLERANCE` (20%) fails the
check; improvements and missing committed reports (first run on a branch
that never produced one) are fine. Metrics with a stated acceptance
target (the university verify gate, the probe-overhead ceiling) take the
*looser* of committed-relative and target-relative bounds: the committed
number embeds one run's noise, and drift inside the acceptance envelope
is not a regression worth failing the build over.
"""

import json
import os

from repro.experiments.bench_scale import SPEEDUP_TARGET
from repro.util.errors import ReproError

TOLERANCE = 0.20  # fraction of the committed value

CHECK_REPEATS = 3  # enough for a stable median without make check crawling

DATAPLANE_REPORT = "BENCH_dataplane.json"
ROLLOUT_REPORT = "BENCH_rollout.json"
SCALE_REPORT = "BENCH_scale.json"
TENANTS_REPORT = "BENCH_tenants.json"

SCALE_CHECK_SIZE = 500  # ceiling for --check re-runs: keep the gate fast

TENANTS_CHECK_SESSIONS = 12  # ceiling for --check re-runs of the tenants gate


def _load(path):
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def _compile_speedup(rows):
    compile_ = rows["compile"]
    incremental = compile_["incremental_ms"]
    return compile_["cold_ms"] / incremental if incremental > 0 else float("inf")


def dataplane_metrics(report):
    """The gated ratio metrics of one dataplane benchmark report.

    Returns ``name -> (value, higher_is_better, acceptance_target)``.
    Aggregates (per-network minima) rather than per-issue rows: the
    per-issue ratios divide small medians and flap run to run, while a
    real fast-path regression drags every issue down together.
    """
    metrics = {}
    for name, rows in report.get("networks", {}).items():
        target = 2.0 if name == "university" else None
        metrics[f"{name}.compile.speedup"] = (
            _compile_speedup(rows), True, target,
        )
        verify = rows.get("verify", {})
        if verify:
            metrics[f"{name}.verify.min_speedup"] = (
                min(row["speedup"] for row in verify.values()), True, None,
            )
    acceptance = report.get("acceptance")
    if acceptance:
        metrics["university.verify.min_speedup"] = (
            acceptance["university_single_device_verify_speedup"], True,
            acceptance.get("target", 3.0),
        )
    return metrics


def rollout_metrics(report):
    """The gated ratio metrics of one rollout benchmark report."""
    metrics = {}
    for name, rows in report.get("networks", {}).items():
        push = rows["push"]
        metrics[f"{name}.push.probe_overhead_x"] = (
            push["probe_overhead_x"], False, 3.0,
        )
        metrics[f"{name}.push.probe_speedup"] = (
            push["probe_speedup"], True, None,
        )
    return metrics


def scale_metrics(report):
    """The gated ratio metrics of one scale benchmark report.

    Only ratios are gated (machine-portable); the sharded cold-compile
    speedup additionally carries the ISSUE 7 acceptance target so drift
    inside the 2x envelope never fails the build.
    """
    metrics = {}
    compile_ = report.get("compile", {})
    if "sharded_speedup" in compile_:
        target = (
            SPEEDUP_TARGET
            if report.get("acceptance", {}).get("applies") else None
        )
        metrics["scale.compile.sharded_speedup"] = (
            compile_["sharded_speedup"], True, target,
        )
    if "incremental_speedup" in compile_:
        metrics["scale.compile.incremental_speedup"] = (
            compile_["incremental_speedup"], True, None,
        )
    return metrics


def tenants_metrics(report):
    """The gated ratio metric of one tenants benchmark report.

    The isolation-overhead ratio is front-door elapsed over direct
    elapsed for the identical workload in the same process — a quotient,
    so machine-portable — and lower is better, bounded by the committed
    acceptance target.
    """
    metrics = {}
    ratio = report.get("overhead_ratio")
    if ratio is not None:
        target = report.get("acceptance", {}).get("target")
        metrics["tenants.overhead_ratio"] = (ratio, False, target)
    return metrics


def compare(committed, fresh, tolerance=TOLERANCE):
    """Regressions of ``fresh`` vs ``committed`` beyond ``tolerance``.

    Both are ``name -> (value, higher_is_better, target)`` maps; only
    metrics present in both are gated. A metric with an acceptance
    ``target`` is allowed the looser of the committed-relative and
    target-relative bounds. Returns a list of human-readable failures.
    """
    failures = []
    for name in sorted(set(committed) & set(fresh)):
        base, higher_better, target = committed[name]
        value = fresh[name][0]
        if base <= 0:
            continue
        if higher_better:
            bound = base if target is None else min(base, target)
            floor = bound * (1.0 - tolerance)
            if value < floor:
                failures.append(
                    f"{name}: {value:.2f} < {floor:.2f} "
                    f"(committed {base:.2f}, tolerance {tolerance:.0%})"
                )
        else:
            bound = base if target is None else max(base, target)
            ceiling = bound * (1.0 + tolerance)
            if value > ceiling:
                failures.append(
                    f"{name}: {value:.2f} > {ceiling:.2f} "
                    f"(committed {base:.2f}, tolerance {tolerance:.0%})"
                )
    return failures


def run_check(repeats=CHECK_REPEATS, out=None, root="."):
    """Run the regression gate; returns the process exit code.

    Missing committed reports skip their half of the gate (nothing to
    regress against) — the check only ever compares like with like.
    """
    from repro.experiments.bench_dataplane import run_benchmarks
    from repro.experiments.bench_rollout import run_rollout_benchmarks
    from repro.experiments.bench_scale import run_scale_benchmark

    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    failures = []
    checked = 0

    committed = _load(os.path.join(root, DATAPLANE_REPORT))
    if committed is not None:
        fresh = run_benchmarks(repeats=repeats)
        gated = compare(dataplane_metrics(committed), dataplane_metrics(fresh))
        checked += len(
            set(dataplane_metrics(committed)) & set(dataplane_metrics(fresh))
        )
        failures.extend(gated)
    elif out is not None:
        out.write(f"{DATAPLANE_REPORT} not found; dataplane gate skipped\n")

    committed = _load(os.path.join(root, ROLLOUT_REPORT))
    if committed is not None:
        fresh = run_rollout_benchmarks(repeats=repeats)
        gated = compare(rollout_metrics(committed), rollout_metrics(fresh))
        checked += len(
            set(rollout_metrics(committed)) & set(rollout_metrics(fresh))
        )
        failures.extend(gated)
    elif out is not None:
        out.write(f"{ROLLOUT_REPORT} not found; rollout gate skipped\n")

    committed = _load(os.path.join(root, TENANTS_REPORT))
    if committed is not None:
        from repro.experiments.bench_tenants import run_tenants_bench

        fresh = run_tenants_bench(
            sessions=min(
                committed.get("sessions", TENANTS_CHECK_SESSIONS),
                TENANTS_CHECK_SESSIONS,
            ),
            orgs=committed.get("orgs", 3),
            network=committed.get("network", "university"),
            seed=committed.get("seed", 7),
        )
        gated = compare(tenants_metrics(committed), tenants_metrics(fresh))
        checked += len(
            set(tenants_metrics(committed)) & set(tenants_metrics(fresh))
        )
        failures.extend(gated)
    elif out is not None:
        out.write(f"{TENANTS_REPORT} not found; tenants gate skipped\n")

    committed = _load(os.path.join(root, SCALE_REPORT))
    if committed is not None:
        generated = committed.get("generated", {})
        fresh = run_scale_benchmark(
            size=min(generated.get("requested_size", 500), SCALE_CHECK_SIZE),
            shape=generated.get("shape", "fat-tree"),
            seed=generated.get("seed", 7),
            repeats=repeats,
        )
        gated = compare(scale_metrics(committed), scale_metrics(fresh))
        checked += len(set(scale_metrics(committed)) & set(scale_metrics(fresh)))
        failures.extend(gated)
    elif out is not None:
        out.write(f"{SCALE_REPORT} not found; scale gate skipped\n")

    if out is not None:
        for failure in failures:
            out.write(f"REGRESSION {failure}\n")
        status = "FAIL" if failures else "ok"
        out.write(
            f"bench --check: {checked} gated metrics, "
            f"{len(failures)} regressions ({status})\n"
        )
    return 1 if failures else 0
