"""Experiment drivers: one function per paper artifact.

Everything the benchmark harness and the report generator need, as plain
library calls returning structured results — so the same code regenerates
Table 1, Figures 7-9, the §4.3 latency claim, and the two ablations whether
you run ``pytest benchmarks/`` or ``examples/paper_report.py``.
"""

from repro.experiments.fig7 import figure7
from repro.experiments.fig89 import figure89, heimdall_approaches
from repro.experiments.latency import (
    continuous_vs_deferred,
    verification_latency_curve,
)
from repro.experiments.table1 import table1
from repro.experiments.ablations import (
    guard_rules_ablation,
    scheduler_ablation,
    scoping_ablation,
)

__all__ = [
    "continuous_vs_deferred",
    "figure7",
    "figure89",
    "guard_rules_ablation",
    "heimdall_approaches",
    "scheduler_ablation",
    "scoping_ablation",
    "table1",
    "verification_latency_curve",
]
