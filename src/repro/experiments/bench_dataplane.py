"""Wall-clock benchmarks of the data-plane compile/verify fast paths.

Unlike the paper-figure experiments (which report *simulated* seconds from
the calibrated cost model), this module measures real wall-clock time of
the substrate itself: cold compiles vs cache hits vs incremental rebuilds,
and the enforcer's full :meth:`ChangeVerifier.verify` in the cold
(from-scratch, seed-equivalent) and incremental (cached production +
baseline-reuse candidate) configurations for every standard issue.

The runner writes ``BENCH_dataplane.json`` so successive PRs can track the
trajectory; ``python -m repro.cli bench`` is the one-command entry point.
"""

import json
import statistics

from repro.config.diffing import diff_networks
from repro.control.builder import build_dataplane
from repro.control.cache import (
    clear_dataplane_cache,
    dataplane_cache,
    snapshot_fingerprint,
)
from repro.core.enforcer.verifier import ChangeVerifier
from repro.policy.mining import mine_policies
from repro.scenarios.enterprise import build_enterprise_network
from repro.scenarios.issues import standard_issues
from repro.scenarios.university import build_university_network
from repro.util.clock import monotonic_s
from repro.util.errors import ReproError

NETWORKS = {
    "enterprise": build_enterprise_network,
    "university": build_university_network,
}

DEFAULT_REPEATS = 7  # odd: the median is a real sample; enough to shed noise


def ticket_workload(network, issue):
    """``(production, changes)`` for one ticket: the paper's verify workload.

    Production is the network with the issue injected; the change set is the
    semantic diff that repairs it (the shape the twin emits), confined to
    the issue's root-cause device.
    """
    production = network.copy()
    issue.inject(production)
    changes = diff_networks(production.configs, network.configs)
    return production, changes


def median_ms(fn, repeats=DEFAULT_REPEATS):
    """Median wall-clock milliseconds of ``fn()`` over ``repeats`` runs."""
    samples = []
    for _ in range(repeats):
        start = monotonic_s()
        fn()
        samples.append((monotonic_s() - start) * 1000.0)
    return statistics.median(samples)


def bench_compile(network, issue, repeats=DEFAULT_REPEATS):
    """Compile timings: cold, cache-hit, and single-device incremental."""
    clear_dataplane_cache()
    cold = median_ms(
        lambda: build_dataplane(network, use_cache=False), repeats
    )

    clear_dataplane_cache()
    baseline = build_dataplane(network)
    cached = median_ms(lambda: build_dataplane(network), repeats)

    broken = network.copy()
    issue.inject(broken)
    broken_fp = snapshot_fingerprint(broken)[0]

    def incremental():
        # Discard the candidate's cache entry so every repeat measures the
        # incremental compile itself, not a cache hit. ``broken`` was
        # derived here by injecting the issue into a copy, so the
        # same_except assertion (re-hash only the root-cause device) holds.
        dataplane_cache().discard(broken_fp)
        build_dataplane(
            broken, baseline=baseline,
            same_except={issue.root_cause_device},
        )

    incremental_ms = median_ms(incremental, repeats)
    return {
        "cold_ms": round(cold, 3),
        "cached_ms": round(cached, 3),
        "incremental_ms": round(incremental_ms, 3),
    }


def bench_verify(network, policies, issue, repeats=DEFAULT_REPEATS):
    """Cold vs incremental ``ChangeVerifier.verify`` for one issue's fix."""
    production, changes = ticket_workload(network, issue)

    cold_verifier = ChangeVerifier(policies, incremental=False)
    cold = median_ms(
        lambda: cold_verifier.verify(production, changes), repeats
    )

    clear_dataplane_cache()
    verifier = ChangeVerifier(policies)
    candidate = verifier.simulate(production, changes)
    candidate_fp = snapshot_fingerprint(candidate)[0]
    verifier.verify(production, changes)  # warm production entry + traces

    def incremental():
        # Steady state: production cached and trace-warm (the enforcer has
        # been verifying tickets against it); each new ticket's candidate
        # snapshot is novel, so drop its entry between repeats.
        dataplane_cache().discard(candidate_fp)
        verifier.verify(production, changes)

    incremental_ms = median_ms(incremental, repeats)
    speedup = cold / incremental_ms if incremental_ms > 0 else float("inf")
    return {
        "changes": len(changes),
        "cold_ms": round(cold, 3),
        "incremental_ms": round(incremental_ms, 3),
        "speedup": round(speedup, 2),
    }


def bench_network(name, repeats=DEFAULT_REPEATS):
    """All compile + verify benchmarks for one scenario network."""
    network = NETWORKS[name]()
    policies = mine_policies(network)
    issues = standard_issues(name)

    result = {
        "devices": len(network.configs),
        "hosts": len(network.hosts()),
        "policies": len(policies),
        "repeats": repeats,
        "compile": bench_compile(network, issues["ospf"], repeats),
        "verify": {},
    }
    for issue_id, issue in issues.items():
        result["verify"][issue_id] = bench_verify(
            network, policies, issue, repeats
        )
    clear_dataplane_cache()
    return result


def run_benchmarks(networks=None, repeats=DEFAULT_REPEATS):
    """The full suite; returns the JSON-ready report dict."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    networks = list(networks) if networks else list(NETWORKS)
    report = {
        "benchmark": "dataplane compile + verify fast paths",
        "command": "python -m repro.cli bench",
        "repeats": repeats,
        "networks": {},
    }
    for name in networks:
        report["networks"][name] = bench_network(name, repeats)
    university = report["networks"].get("university")
    if university:
        report["acceptance"] = {
            "university_single_device_verify_speedup": min(
                row["speedup"] for row in university["verify"].values()
            ),
            "target": 3.0,
        }
    return report


def write_report(report, path):
    """Write the report as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
