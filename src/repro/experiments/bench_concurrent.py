"""Concurrent-session stress benchmark (``bench --concurrent N``).

Drives N threaded :class:`~repro.core.sessions.ManagedSession` instances
end-to-end against one production network carrying the standard issues:
every thread opens an optimistic session for its issue, replays the fix on
its own twin, and submits. The report is the acceptance evidence for the
concurrency model: **every** session ends fully imported or
deterministically rejected/rebased — no torn state, journal invariants
intact, exactly one importer per issue, audit chain verified.

Wall-clock throughput is measured like the other benchmarks (real
``monotonic_s`` seconds, not the simulated clock); the outcome *counts*
are deterministic only in aggregate — which thread of an issue's pack wins
the import race depends on scheduling, but the invariants below hold for
every interleaving, which is the point.
"""

import threading

from repro.core.heimdall import Heimdall
from repro.core.sessions import SessionManager
from repro.experiments.bench_dataplane import NETWORKS, write_report
from repro.policy.mining import mine_policies
from repro.scenarios.issues import standard_issues
from repro.util import rand
from repro.util.clock import monotonic_s
from repro.util.errors import ReproError

__all__ = ["run_concurrent_bench", "write_report"]

DEFAULT_SESSIONS = 8


def run_concurrent_bench(sessions=DEFAULT_SESSIONS, network="enterprise",
                         seed=7):
    """Run the stress benchmark; returns the JSON-ready report dict.

    Args:
        sessions: number of concurrent technician threads (round-robined
            over the scenario's standard issues).
        network: scenario name (``enterprise``/``university``).
        seed: :mod:`repro.util.rand` seed (retry jitter, fault rules).
    """
    if sessions < 1:
        raise ReproError(f"need at least one session, got {sessions}")
    if network not in NETWORKS:
        raise ReproError(
            f"unknown network {network!r}; expected {'/'.join(NETWORKS)}"
        )
    rand.seed(seed)
    healthy = NETWORKS[network]()
    policies = mine_policies(healthy)
    production = NETWORKS[network]()

    issue_list = list(standard_issues(network).values())
    assigned = issue_list[:min(sessions, len(issue_list))]
    for issue in assigned:
        issue.inject(production)

    heimdall = Heimdall(production, policies=policies)
    manager = SessionManager(heimdall)

    results = [None] * sessions
    errors = [None] * sessions
    start = threading.Barrier(sessions)
    # Every session branches from the *broken* base before any import lands
    # — that is what makes the outcome counts deterministic: per issue,
    # exactly one session imports (clean or rebased) and every other one is
    # a conflict, whatever the submit interleaving.
    opened = threading.Barrier(sessions)

    def work(index):
        issue = assigned[index % len(assigned)]
        session = None
        try:
            start.wait()
            session = manager.open_ticket(issue, mode="optimistic")
            session.run_fix_script(issue.fix_script)
        except ReproError as exc:
            errors[index] = f"{type(exc).__name__}: {exc}"
        finally:
            try:
                opened.wait(timeout=120)
            except threading.BrokenBarrierError:
                pass
        if session is None:
            return
        try:
            results[index] = session.submit()
        except ReproError as exc:
            errors[index] = f"{type(exc).__name__}: {exc}"

    threads = [
        threading.Thread(target=work, args=(i,), name=f"bench-session-{i}")
        for i in range(sessions)
    ]
    started = monotonic_s()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = monotonic_s() - started

    outcomes = {}
    per_issue = {issue.issue_id: {"sessions": 0, "imported": 0}
                 for issue in assigned}
    journals = {"terminal": 0, "total": 0}
    for outcome in results:
        if outcome is None:
            continue
        outcomes[outcome.status] = outcomes.get(outcome.status, 0) + 1
        row = per_issue[outcome.issue_id]
        row["sessions"] += 1
        if outcome.imported:
            row["imported"] += 1
        ticket = outcome.ticket_outcome
        push = getattr(
            getattr(ticket, "decision", None), "push_report", None
        ) if ticket is not None else None
        if push is not None and push.journal is not None:
            journals["total"] += 1
            journals["terminal"] += 1 if push.journal.terminal else 0

    invariants = {
        "all_sessions_finished": all(
            result is not None for result in results
        ) and not any(errors),
        "one_importer_per_issue": all(
            row["imported"] == 1 for row in per_issue.values()
        ),
        "all_issues_resolved": all(
            issue.is_resolved(production) for issue in assigned
        ),
        "journals_terminal": journals["terminal"] == journals["total"],
        "audit_chain_intact": heimdall.audit.verify(),
        "no_live_sessions": not manager.live_sessions(),
    }
    report = {
        "network": network,
        "seed": seed,
        "sessions": sessions,
        "elapsed_s": round(elapsed_s, 3),
        "throughput_per_s": round(sessions / elapsed_s, 3) if elapsed_s else None,
        "outcomes": outcomes,
        "per_issue": per_issue,
        "journals": journals,
        "errors": [error for error in errors if error],
        "invariants": invariants,
        "ok": all(invariants.values()),
    }
    return report
