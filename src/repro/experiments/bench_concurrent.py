"""Concurrent-session stress benchmark (``bench --concurrent N``).

Drives N threaded :class:`~repro.core.sessions.ManagedSession` instances
end-to-end against one production network carrying the standard issues.
Sessions round-robin over the issues and take one of three roles per
issue pack:

* **fix** — the first session for an issue replays its real fix script;
* **maintenance** — the second runs a *disjoint-section* edit on the same
  root-cause device (an interface description, under the ``interface``
  profile). Under device-fingerprint drift classification these were
  spurious conflicts; with section-aware classification they land as
  clean imports or semantic rebases;
* **duplicate-fix** — every further session replays the fix script again
  and must lose the import race: same device, same sections, a genuine
  conflict.

The report is the acceptance evidence for the concurrency model:
**every** session ends fully imported or deterministically
rejected/rebased — no torn state, journal invariants intact, exactly one
fix importer per issue, every maintenance edit landed, conflicts drawn
only by duplicate fixes, audit chain verified.

Wall-clock throughput is measured like the other benchmarks (real
``monotonic_s`` seconds, not the simulated clock); the clean/rebased
*split* depends on submit interleaving, but the conflict count and the
import counts are deterministic for every interleaving, which is the
point.
"""

import threading

from repro.core.heimdall import Heimdall
from repro.core.sessions import SessionManager
from repro.experiments.bench_dataplane import NETWORKS, write_report
from repro.policy.mining import mine_policies
from repro.scenarios.issues import FixStep, standard_issues
from repro.util import rand
from repro.util.clock import monotonic_s
from repro.util.errors import ReproError

__all__ = ["run_concurrent_bench", "write_report"]

DEFAULT_SESSIONS = 8

#: Session roles, by position within an issue's round-robin pack.
ROLES = ("fix", "maintenance", "duplicate-fix")


def _role(position):
    return ROLES[min(position, 2)]


def _maintenance_script(production, issue, index):
    """A disjoint-section edit on the issue's root-cause device.

    Every standard fix touches the ospf/static/vlan sections, so an
    interface description is disjoint on all of them; the text is unique
    per session so the change set is never empty.
    """
    device = issue.root_cause_device
    iface = sorted(production.config(device).interfaces)[0]
    return (FixStep(device, (
        "configure terminal",
        f"interface {iface}",
        f"description routine audit by session {index}",
        "end",
        "write memory",
    )),)


def run_concurrent_bench(sessions=DEFAULT_SESSIONS, network="enterprise",
                         seed=7):
    """Run the stress benchmark; returns the JSON-ready report dict.

    Args:
        sessions: number of concurrent technician threads (round-robined
            over the scenario's standard issues).
        network: scenario name (``enterprise``/``university``).
        seed: :mod:`repro.util.rand` seed (retry jitter, fault rules).
    """
    if sessions < 1:
        raise ReproError(f"need at least one session, got {sessions}")
    if network not in NETWORKS:
        raise ReproError(
            f"unknown network {network!r}; expected {'/'.join(NETWORKS)}"
        )
    rand.seed(seed)
    healthy = NETWORKS[network]()
    policies = mine_policies(healthy)
    production = NETWORKS[network]()

    issue_list = list(standard_issues(network).values())
    assigned = issue_list[:min(sessions, len(issue_list))]
    for issue in assigned:
        issue.inject(production)

    heimdall = Heimdall(production, policies=policies)
    manager = SessionManager(heimdall)

    # Per-session work orders, fixed before any thread starts so the
    # maintenance scripts read production configs race-free.
    roles = [_role(index // len(assigned)) for index in range(sessions)]
    scripts = [
        _maintenance_script(
            production, assigned[index % len(assigned)], index
        ) if roles[index] == "maintenance"
        else assigned[index % len(assigned)].fix_script
        for index in range(sessions)
    ]

    results = [None] * sessions
    errors = [None] * sessions
    start = threading.Barrier(sessions)
    # Every session branches from the *broken* base before any import lands
    # — that is what makes the aggregate outcome counts deterministic: per
    # issue, exactly one fix-script session imports (clean or rebased) and
    # every other one conflicts, while every maintenance session lands
    # (clean before the fix imports, semantically rebased after), whatever
    # the submit interleaving.
    opened = threading.Barrier(sessions)

    def work(index):
        issue = assigned[index % len(assigned)]
        session = None
        try:
            start.wait()
            profile = (
                "interface" if roles[index] == "maintenance" else None
            )
            session = manager.open_ticket(
                issue, mode="optimistic", profile=profile
            )
            session.run_fix_script(scripts[index])
        except ReproError as exc:
            errors[index] = f"{type(exc).__name__}: {exc}"
        finally:
            try:
                opened.wait(timeout=120)
            except threading.BrokenBarrierError:
                pass
        if session is None:
            return
        try:
            results[index] = session.submit()
        except ReproError as exc:
            errors[index] = f"{type(exc).__name__}: {exc}"

    threads = [
        threading.Thread(target=work, args=(i,), name=f"bench-session-{i}")
        for i in range(sessions)
    ]
    started = monotonic_s()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = monotonic_s() - started

    outcomes = {}
    role_counts = {}
    per_issue = {issue.issue_id: {
        "sessions": 0, "imported": 0,
        "maintenance": 0, "maintenance_imported": 0,
    } for issue in assigned}
    journals = {"terminal": 0, "total": 0}
    for index, outcome in enumerate(results):
        role_counts[roles[index]] = role_counts.get(roles[index], 0) + 1
        if outcome is None:
            continue
        outcomes[outcome.status] = outcomes.get(outcome.status, 0) + 1
        row = per_issue[outcome.issue_id]
        row["sessions"] += 1
        if roles[index] == "maintenance":
            row["maintenance"] += 1
            if outcome.imported:
                row["maintenance_imported"] += 1
        elif outcome.imported:
            row["imported"] += 1
        ticket = outcome.ticket_outcome
        push = getattr(
            getattr(ticket, "decision", None), "push_report", None
        ) if ticket is not None else None
        if push is not None and push.journal is not None:
            journals["total"] += 1
            journals["terminal"] += 1 if push.journal.terminal else 0

    invariants = {
        "all_sessions_finished": all(
            result is not None for result in results
        ) and not any(errors),
        "one_importer_per_issue": all(
            row["imported"] == 1 for row in per_issue.values()
        ),
        "maintenance_edits_land": all(
            row["maintenance_imported"] == row["maintenance"]
            for row in per_issue.values()
        ),
        "conflicts_only_from_duplicate_fixes": (
            outcomes.get("conflict", 0)
            == role_counts.get("duplicate-fix", 0)
        ),
        "all_issues_resolved": all(
            issue.is_resolved(production) for issue in assigned
        ),
        "journals_terminal": journals["terminal"] == journals["total"],
        "audit_chain_intact": heimdall.audit.verify(),
        "no_live_sessions": not manager.live_sessions(),
    }
    report = {
        "network": network,
        "seed": seed,
        "sessions": sessions,
        "roles": role_counts,
        "elapsed_s": round(elapsed_s, 3),
        "throughput_per_s": round(sessions / elapsed_s, 3) if elapsed_s else None,
        "outcomes": outcomes,
        "per_issue": per_issue,
        "journals": journals,
        "errors": [error for error in errors if error],
        "invariants": invariants,
        "ok": all(invariants.values()),
    }
    return report
