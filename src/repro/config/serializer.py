""":class:`~repro.config.model.DeviceConfig` -> canonical IOS-style text.

The serializer emits a canonical section order so that configs are diffable
as text and the parse/serialize round-trip is exact (property-tested in
``tests/config/test_roundtrip.py``).
"""

from repro.net.addressing import prefixlen_to_netmask, prefixlen_to_wildcard


def serialize_config(config):
    """Render a device configuration as IOS-style text."""
    sections = []
    sections.append([f"hostname {config.hostname}"])

    for vlan_id in sorted(config.vlans):
        vlan = config.vlans[vlan_id]
        lines = [f"vlan {vlan.vlan_id}"]
        if vlan.name:
            lines.append(f" name {vlan.name}")
        sections.append(lines)

    for iface in config.interfaces.values():
        sections.append(_interface_lines(iface))

    if config.ospf is not None:
        sections.append(_ospf_lines(config.ospf))

    if config.bgp is not None:
        sections.append(_bgp_lines(config.bgp))

    if config.static_routes:
        sections.append([_static_route_line(route) for route in config.static_routes])

    for name in config.acls:
        sections.append(_acl_lines(config.acls[name]))

    tail = []
    if config.default_gateway is not None:
        tail.append(f"ip default-gateway {config.default_gateway}")
    if config.enable_secret is not None:
        tail.append(f"enable secret 5 {config.enable_secret}")
    if config.snmp_community is not None:
        tail.append(f"snmp-server community {config.snmp_community} RO")
    if tail:
        sections.append(tail)

    if config.vty_password is not None:
        sections.append(
            ["line vty 0 4", f" password {config.vty_password}", " login"]
        )

    lines = []
    for section in sections:
        lines.extend(section)
        lines.append("!")
    return "\n".join(lines) + "\n"


def config_line_count(config):
    """Number of non-separator config lines (Table 1's "lines of configs")."""
    return sum(
        1
        for line in serialize_config(config).splitlines()
        if line.strip() and line.strip() != "!"
    )


def _interface_lines(iface):
    lines = [f"interface {iface.name}"]
    if iface.description:
        lines.append(f" description {iface.description}")
    if iface.switchport_mode is not None:
        lines.append(f" switchport mode {iface.switchport_mode}")
    if iface.access_vlan is not None:
        lines.append(f" switchport access vlan {iface.access_vlan}")
    if iface.trunk_vlans is not None:
        allowed = ",".join(str(v) for v in iface.trunk_vlans)
        lines.append(f" switchport trunk allowed vlan {allowed}")
    if iface.address is not None:
        mask = prefixlen_to_netmask(iface.address.network.prefixlen)
        lines.append(f" ip address {iface.address.ip} {mask}")
    if iface.ospf_cost is not None:
        lines.append(f" ip ospf cost {iface.ospf_cost}")
    if iface.access_group_in is not None:
        lines.append(f" ip access-group {iface.access_group_in} in")
    if iface.access_group_out is not None:
        lines.append(f" ip access-group {iface.access_group_out} out")
    lines.append(" shutdown" if iface.shutdown else " no shutdown")
    return lines


def _ospf_lines(ospf):
    lines = [f"router ospf {ospf.process_id}"]
    if ospf.reference_bandwidth_mbps != 100:
        lines.append(
            f" auto-cost reference-bandwidth {ospf.reference_bandwidth_mbps}"
        )
    for network in ospf.networks:
        wildcard = prefixlen_to_wildcard(network.prefix.prefixlen)
        lines.append(
            f" network {network.prefix.network_address} {wildcard}"
            f" area {network.area}"
        )
    for iface_name in sorted(ospf.passive_interfaces):
        lines.append(f" passive-interface {iface_name}")
    if ospf.default_information_originate:
        lines.append(" default-information originate")
    return lines


def _bgp_lines(bgp):
    lines = [f"router bgp {bgp.asn}"]
    for neighbor in bgp.neighbors:
        lines.append(f" neighbor {neighbor.address} remote-as {neighbor.remote_as}")
    for prefix in bgp.networks:
        mask = prefixlen_to_netmask(prefix.prefixlen)
        lines.append(f" network {prefix.network_address} mask {mask}")
    return lines


def _static_route_line(route):
    mask = prefixlen_to_netmask(route.prefix.prefixlen)
    line = f"ip route {route.prefix.network_address} {mask} {route.next_hop}"
    if route.distance != 1:
        line += f" {route.distance}"
    return line


def _acl_lines(acl):
    if acl.name.isdigit():
        return [
            f"access-list {acl.name} {entry.to_text(acl.kind)}"
            for entry in acl.entries
        ]
    lines = [f"ip access-list {acl.kind} {acl.name}"]
    lines.extend(f" {entry.to_text(acl.kind)}" for entry in acl.entries)
    return lines
