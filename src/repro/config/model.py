"""Structured device configuration model.

One :class:`DeviceConfig` per device, holding exactly the sections the
scenario networks and the console need: interfaces, OSPF, static routes,
ACLs, VLANs, credentials, and host networking (default gateway). The model is
vendor-neutral internally; :mod:`repro.config.parser` and
:mod:`repro.config.serializer` map it to/from IOS-style text.
"""

import copy
import ipaddress
from dataclasses import dataclass, field

from repro.util.errors import ConfigError


@dataclass
class InterfaceConfig:
    """Per-interface configuration."""

    name: str
    description: str = None
    address: ipaddress.IPv4Interface = None
    shutdown: bool = False
    ospf_cost: int = None
    access_group_in: str = None
    access_group_out: str = None
    switchport_mode: str = None  # None | "access" | "trunk"
    access_vlan: int = None
    trunk_vlans: tuple = None  # tuple of allowed VLAN ids on a trunk

    def __post_init__(self):
        if self.switchport_mode not in (None, "access", "trunk"):
            raise ConfigError(
                f"unknown switchport mode {self.switchport_mode!r}"
            )

    @property
    def is_routed(self):
        """Whether this interface has an IP address (L3 port)."""
        return self.address is not None

    @property
    def is_switchport(self):
        """Whether this interface is an L2 switch port."""
        return self.switchport_mode is not None

    def carries_vlan(self, vlan_id):
        """Whether this switchport carries ``vlan_id`` frames."""
        if self.switchport_mode == "access":
            return self.access_vlan == vlan_id
        if self.switchport_mode == "trunk":
            return self.trunk_vlans is None or vlan_id in self.trunk_vlans
        return False


@dataclass(frozen=True)
class OspfNetwork:
    """A ``network <addr> <wildcard> area <n>`` statement."""

    prefix: ipaddress.IPv4Network
    area: int = 0

    def covers(self, address):
        """Whether an interface address activates OSPF under this statement."""
        return address.ip in self.prefix


@dataclass
class OspfConfig:
    """A ``router ospf <pid>`` process."""

    process_id: int = 1
    networks: list = field(default_factory=list)
    passive_interfaces: set = field(default_factory=set)
    default_information_originate: bool = False
    reference_bandwidth_mbps: int = 100

    def activates(self, iface_cfg):
        """Whether OSPF runs on ``iface_cfg`` given the network statements."""
        if not iface_cfg.is_routed or iface_cfg.shutdown:
            return False
        return any(net.covers(iface_cfg.address) for net in self.networks)

    def is_passive(self, iface_name):
        """Passive interfaces advertise their prefix but form no adjacency."""
        return iface_name in self.passive_interfaces


@dataclass(frozen=True)
class BgpNeighbor:
    """A ``neighbor <ip> remote-as <asn>`` statement."""

    address: ipaddress.IPv4Address
    remote_as: int


@dataclass
class BgpConfig:
    """A ``router bgp <asn>`` process (eBGP only; see repro.control.bgp)."""

    asn: int
    neighbors: list = field(default_factory=list)
    networks: list = field(default_factory=list)  # IPv4Network to originate

    def neighbor_for(self, address):
        """The neighbor statement for ``address``, or ``None``."""
        target = ipaddress.IPv4Address(str(address))
        for neighbor in self.neighbors:
            if neighbor.address == target:
                return neighbor
        return None


@dataclass(frozen=True)
class StaticRoute:
    """An ``ip route <prefix> <mask> <next-hop>`` statement."""

    prefix: ipaddress.IPv4Network
    next_hop: ipaddress.IPv4Address
    distance: int = 1


@dataclass
class VlanConfig:
    """A VLAN declaration with an optional name."""

    vlan_id: int
    name: str = None


@dataclass
class DeviceConfig:
    """Complete configuration of one device.

    The same model serves routers, switches, and hosts; irrelevant sections
    are simply empty (a host has one addressed interface and a default
    gateway; a switch has switchports and VLANs).
    """

    hostname: str
    interfaces: dict = field(default_factory=dict)
    ospf: OspfConfig = None
    bgp: BgpConfig = None
    static_routes: list = field(default_factory=list)
    acls: dict = field(default_factory=dict)
    vlans: dict = field(default_factory=dict)
    default_gateway: ipaddress.IPv4Address = None
    enable_secret: str = None
    snmp_community: str = None
    vty_password: str = None

    # -- interfaces --------------------------------------------------------

    def interface(self, name, create=False):
        """Fetch an interface config, optionally creating it."""
        if name not in self.interfaces:
            if not create:
                raise ConfigError(
                    f"{self.hostname}: no interface {name!r} configured"
                )
            self.interfaces[name] = InterfaceConfig(name=name)
        return self.interfaces[name]

    def routed_interfaces(self):
        """All interfaces with an IP address, in declaration order."""
        return [i for i in self.interfaces.values() if i.is_routed]

    def active_interfaces(self):
        """All non-shutdown interfaces."""
        return [i for i in self.interfaces.values() if not i.shutdown]

    # -- ACLs ---------------------------------------------------------------

    def acl(self, name):
        """Fetch an ACL by name/number, raising on unknown names."""
        try:
            return self.acls[str(name)]
        except KeyError:
            raise ConfigError(
                f"{self.hostname}: no access-list {name!r}"
            ) from None

    def add_acl(self, acl):
        """Register an ACL under its name."""
        self.acls[str(acl.name)] = acl
        return acl

    # -- addresses ----------------------------------------------------------

    def owned_addresses(self):
        """All interface addresses configured on this device."""
        return [i.address for i in self.interfaces.values() if i.is_routed]

    def owns_address(self, address):
        """Whether any interface carries exactly this IP."""
        target = ipaddress.IPv4Address(str(address))
        return any(i.address.ip == target for i in self.routed_interfaces())

    def interface_for_address(self, address):
        """The interface whose subnet contains ``address``, or ``None``."""
        target = ipaddress.IPv4Address(str(address))
        for iface in self.routed_interfaces():
            if target in iface.address.network:
                return iface
        return None

    @property
    def primary_address(self):
        """First configured interface address (hosts have exactly one)."""
        addresses = self.owned_addresses()
        return addresses[0] if addresses else None

    # -- copying ------------------------------------------------------------

    def copy(self):
        """Deep copy, used for snapshots and twin-network cloning."""
        return copy.deepcopy(self)
