"""Structured diffs between device configurations.

The policy enforcer never sees technician keystrokes — it sees the *semantic
difference* between the production configs and the twin configs. A
:class:`ConfigChange` is one atomic semantic change (an interface address
changed, an ACL entry added, a static route removed, ...), tagged with a
category the change scheduler uses for safe ordering and a dotted ``action``
name the privilege evaluator authorises.
"""

from dataclasses import dataclass

# kind -> (scheduling category, privilege action). The action vocabulary is
# shared with the console's command classification
# (:mod:`repro.emulation.console`) so one Privilege_msp governs both live
# commands and imported change sets.
_KIND_TABLE = {
    "hostname": ("mgmt", "config.hostname"),
    "vlan.added": ("vlan", "config.vlan"),
    "vlan.removed": ("vlan", "config.vlan"),
    "vlan.renamed": ("vlan", "config.vlan"),
    "interface.added": ("interface", "config.interface.admin"),
    "interface.removed": ("interface", "config.interface.admin"),
    "interface.address": ("interface", "config.interface.address"),
    "interface.shutdown": ("interface", "config.interface.admin"),
    "interface.description": ("interface", "config.interface.description"),
    "interface.ospf_cost": ("routing", "config.ospf.cost"),
    "interface.access_group_in": ("acl", "config.interface.acl_binding"),
    "interface.access_group_out": ("acl", "config.interface.acl_binding"),
    "interface.switchport_mode": ("l2", "config.interface.switchport"),
    "interface.access_vlan": ("l2", "config.interface.switchport"),
    "interface.trunk_vlans": ("l2", "config.interface.switchport"),
    "ospf.process": ("routing", "config.ospf.process"),
    "ospf.network": ("routing", "config.ospf.network"),
    "ospf.networks_reordered": ("routing", "config.ospf.network"),
    "bgp.process": ("routing", "config.bgp.process"),
    "bgp.neighbor": ("routing", "config.bgp.neighbor"),
    "bgp.neighbors_reordered": ("routing", "config.bgp.neighbor"),
    "bgp.network": ("routing", "config.bgp.network"),
    "bgp.networks_reordered": ("routing", "config.bgp.network"),
    "ospf.passive_interface": ("routing", "config.ospf.passive"),
    "ospf.default_information": ("routing", "config.ospf.default_information"),
    "ospf.reference_bandwidth": ("routing", "config.ospf.cost"),
    "static_route": ("routing", "config.static_route"),
    "static_routes_reordered": ("routing", "config.static_route"),
    "acl.added": ("acl", "config.acl.entry"),
    "acl.removed": ("acl", "config.acl.entry"),
    "acl.entry_added": ("acl", "config.acl.entry"),
    "acl.entry_removed": ("acl", "config.acl.entry"),
    "acl.reordered": ("acl", "config.acl.entry"),
    "default_gateway": ("routing", "config.default_gateway"),
    "enable_secret": ("credential", "config.credential"),
    "snmp_community": ("credential", "config.credential"),
    "vty_password": ("credential", "config.credential"),
}
_CATEGORY_BY_KIND = {kind: pair[0] for kind, pair in _KIND_TABLE.items()}


@dataclass(frozen=True)
class ConfigChange:
    """One atomic semantic difference on one device.

    ``path`` identifies the object within the device (interface name, ACL
    name, route prefix, ...); ``old``/``new`` are ``None`` for pure
    additions/removals.
    """

    device: str
    kind: str
    path: str = ""
    old: object = None
    new: object = None

    def __post_init__(self):
        if self.kind not in _CATEGORY_BY_KIND:
            raise ValueError(f"unknown change kind {self.kind!r}")

    @property
    def category(self):
        """Scheduling category: vlan, l2, interface, routing, acl, mgmt, credential."""
        return _CATEGORY_BY_KIND[self.kind]

    @property
    def action(self):
        """Dotted action name checked against the privilege specification."""
        return _KIND_TABLE[self.kind][1]

    def summary(self):
        """Human-readable one-liner for audit records."""
        location = f"{self.device}" + (f":{self.path}" if self.path else "")
        if self.old is None and self.new is not None:
            return f"{location} {self.kind} += {self.new}"
        if self.new is None and self.old is not None:
            return f"{location} {self.kind} -= {self.old}"
        return f"{location} {self.kind}: {self.old} -> {self.new}"


def diff_configs(old, new):
    """All semantic changes turning device config ``old`` into ``new``."""
    changes = []
    device = new.hostname

    if old.hostname != new.hostname:
        changes.append(
            ConfigChange(device, "hostname", old=old.hostname, new=new.hostname)
        )

    _diff_vlans(changes, device, old, new)
    _diff_interfaces(changes, device, old, new)
    _diff_ospf(changes, device, old.ospf, new.ospf)
    _diff_bgp(changes, device, old.bgp, new.bgp)
    _diff_static_routes(changes, device, old, new)
    _diff_acls(changes, device, old, new)
    _diff_scalars(changes, device, old, new)
    return changes


def diff_networks(old_configs, new_configs):
    """Changes across a whole network (dict of hostname -> DeviceConfig)."""
    changes = []
    for name in new_configs:
        if name in old_configs:
            changes.extend(diff_configs(old_configs[name], new_configs[name]))
    return changes


# -- section differs ----------------------------------------------------------


def _diff_vlans(changes, device, old, new):
    for vlan_id in sorted(set(old.vlans) | set(new.vlans)):
        before, after = old.vlans.get(vlan_id), new.vlans.get(vlan_id)
        if before is None:
            changes.append(
                ConfigChange(device, "vlan.added", str(vlan_id), new=after.name)
            )
        elif after is None:
            changes.append(
                ConfigChange(device, "vlan.removed", str(vlan_id), old=before.name)
            )
        elif before.name != after.name:
            changes.append(
                ConfigChange(
                    device, "vlan.renamed", str(vlan_id),
                    old=before.name, new=after.name,
                )
            )


_INTERFACE_FIELDS = (
    "address",
    "shutdown",
    "description",
    "ospf_cost",
    "access_group_in",
    "access_group_out",
    "switchport_mode",
    "access_vlan",
    "trunk_vlans",
)


def _diff_interfaces(changes, device, old, new):
    for name in list(old.interfaces) + [
        n for n in new.interfaces if n not in old.interfaces
    ]:
        before = old.interfaces.get(name)
        after = new.interfaces.get(name)
        if before is None:
            changes.append(ConfigChange(device, "interface.added", name, new=after))
            continue
        if after is None:
            changes.append(
                ConfigChange(device, "interface.removed", name, old=before)
            )
            continue
        for field_name in _INTERFACE_FIELDS:
            old_value = getattr(before, field_name)
            new_value = getattr(after, field_name)
            if old_value != new_value:
                changes.append(
                    ConfigChange(
                        device, f"interface.{field_name}", name,
                        old=old_value, new=new_value,
                    )
                )


def _diff_ospf(changes, device, old_ospf, new_ospf):
    if old_ospf is None and new_ospf is None:
        return
    if (
        old_ospf is None
        or new_ospf is None
        or old_ospf.process_id != new_ospf.process_id
    ):
        # Process created, removed, or renumbered: replace it wholesale.
        if old_ospf != new_ospf:
            changes.append(
                ConfigChange(device, "ospf.process", old=old_ospf, new=new_ospf)
            )
        return
    # Statement order is semantically significant (the first covering
    # statement decides an interface's area), so diff like ACL entries:
    # multiset add/remove plus an authoritative reorder when replay order
    # would differ.
    removed, added = _multiset_diff(old_ospf.networks, new_ospf.networks)
    for net in removed:
        changes.append(ConfigChange(device, "ospf.network", str(net.prefix), old=net))
    for net in added:
        changes.append(ConfigChange(device, "ospf.network", str(net.prefix), new=net))
    replayed = _without(old_ospf.networks, removed) + added
    if replayed != new_ospf.networks:
        changes.append(
            ConfigChange(
                device, "ospf.networks_reordered",
                old=tuple(old_ospf.networks), new=tuple(new_ospf.networks),
            )
        )
    for iface in sorted(old_ospf.passive_interfaces - new_ospf.passive_interfaces):
        changes.append(
            ConfigChange(device, "ospf.passive_interface", iface, old=True, new=False)
        )
    for iface in sorted(new_ospf.passive_interfaces - old_ospf.passive_interfaces):
        changes.append(
            ConfigChange(device, "ospf.passive_interface", iface, old=False, new=True)
        )
    if (
        old_ospf.default_information_originate
        != new_ospf.default_information_originate
    ):
        changes.append(
            ConfigChange(
                device, "ospf.default_information",
                old=old_ospf.default_information_originate,
                new=new_ospf.default_information_originate,
            )
        )
    if old_ospf.reference_bandwidth_mbps != new_ospf.reference_bandwidth_mbps:
        changes.append(
            ConfigChange(
                device, "ospf.reference_bandwidth",
                old=old_ospf.reference_bandwidth_mbps,
                new=new_ospf.reference_bandwidth_mbps,
            )
        )


def _diff_bgp(changes, device, old_bgp, new_bgp):
    if old_bgp is None and new_bgp is None:
        return
    if old_bgp is None or new_bgp is None or old_bgp.asn != new_bgp.asn:
        if old_bgp != new_bgp:
            changes.append(
                ConfigChange(device, "bgp.process", old=old_bgp, new=new_bgp)
            )
        return
    # Neighbor/network order matters for faithful replay (and duplicates must
    # keep their multiplicity), so diff like ACL entries: multiset add/remove
    # plus an authoritative reorder when replay order would differ.
    removed, added = _multiset_diff(old_bgp.neighbors, new_bgp.neighbors)
    for neighbor in removed:
        changes.append(
            ConfigChange(device, "bgp.neighbor", str(neighbor.address),
                         old=neighbor)
        )
    for neighbor in added:
        changes.append(
            ConfigChange(device, "bgp.neighbor", str(neighbor.address),
                         new=neighbor)
        )
    replayed = _without(old_bgp.neighbors, removed) + added
    if replayed != new_bgp.neighbors:
        changes.append(
            ConfigChange(
                device, "bgp.neighbors_reordered",
                old=tuple(old_bgp.neighbors), new=tuple(new_bgp.neighbors),
            )
        )
    removed, added = _multiset_diff(old_bgp.networks, new_bgp.networks)
    for prefix in removed:
        changes.append(ConfigChange(device, "bgp.network", str(prefix), old=prefix))
    for prefix in added:
        changes.append(ConfigChange(device, "bgp.network", str(prefix), new=prefix))
    replayed = _without(old_bgp.networks, removed) + added
    if replayed != new_bgp.networks:
        changes.append(
            ConfigChange(
                device, "bgp.networks_reordered",
                old=tuple(old_bgp.networks), new=tuple(new_bgp.networks),
            )
        )


def _diff_static_routes(changes, device, old, new):
    removed, added = _multiset_diff(old.static_routes, new.static_routes)
    for route in removed:
        changes.append(
            ConfigChange(device, "static_route", str(route.prefix), old=route)
        )
    for route in added:
        changes.append(
            ConfigChange(device, "static_route", str(route.prefix), new=route)
        )
    replayed = _without(old.static_routes, removed) + added
    if replayed != new.static_routes:
        changes.append(
            ConfigChange(
                device, "static_routes_reordered",
                old=tuple(old.static_routes), new=tuple(new.static_routes),
            )
        )


def _diff_acls(changes, device, old, new):
    for name in sorted(set(old.acls) | set(new.acls)):
        before, after = old.acls.get(name), new.acls.get(name)
        if before is None:
            changes.append(ConfigChange(device, "acl.added", name, new=after))
            continue
        if after is None:
            changes.append(ConfigChange(device, "acl.removed", name, old=before))
            continue
        if before.kind != after.kind:
            # Changing an ACL's family is a wholesale replacement.
            changes.append(ConfigChange(device, "acl.removed", name, old=before))
            changes.append(ConfigChange(device, "acl.added", name, new=after))
            continue
        if before.entries == after.entries:
            continue
        old_entries, new_entries = list(before.entries), list(after.entries)
        removed, added = _multiset_diff(old_entries, new_entries)
        for entry in removed:
            changes.append(
                ConfigChange(device, "acl.entry_removed", name, old=entry)
            )
        for entry in added:
            changes.append(ConfigChange(device, "acl.entry_added", name, new=entry))
        # Replaying remove-then-append yields this order; if the target
        # differs, ACL order is semantically significant, so emit an
        # authoritative reorder as the final change.
        replayed = _without(old_entries, removed) + added
        if replayed != new_entries:
            changes.append(
                ConfigChange(
                    device, "acl.reordered", name,
                    old=tuple(old_entries), new=tuple(new_entries),
                )
            )


def _multiset_diff(old_entries, new_entries):
    """(removed, added) with correct multiplicity for duplicate entries."""
    remaining = list(new_entries)
    removed = []
    for entry in old_entries:
        if entry in remaining:
            remaining.remove(entry)
        else:
            removed.append(entry)
    return removed, remaining


def _without(entries, removed):
    """``entries`` minus one occurrence of each item in ``removed``."""
    result = list(entries)
    for entry in removed:
        result.remove(entry)
    return result


_SCALAR_FIELDS = ("default_gateway", "enable_secret", "snmp_community", "vty_password")


def _diff_scalars(changes, device, old, new):
    for field_name in _SCALAR_FIELDS:
        old_value = getattr(old, field_name)
        new_value = getattr(new, field_name)
        if old_value != new_value:
            changes.append(
                ConfigChange(device, field_name, old=old_value, new=new_value)
            )
