"""IOS-style configuration text -> :class:`~repro.config.model.DeviceConfig`.

The parser is line-oriented with section context, like IOS itself: a section
header (``interface ...``, ``router ospf ...``, ``ip access-list ...``,
``line vty ...``, ``vlan ...``) opens a context for the indented lines that
follow; ``!`` or the next top-level command closes it. Unknown commands raise
:class:`~repro.util.errors.ConfigError` with the offending line number rather
than being silently dropped — a mis-parsed security config is worse than a
loud failure.
"""

import ipaddress

from repro.config.acl import Acl, AclEntry
from repro.config.model import (
    BgpConfig,
    BgpNeighbor,
    DeviceConfig,
    InterfaceConfig,
    OspfConfig,
    OspfNetwork,
    StaticRoute,
    VlanConfig,
)
from repro.net.addressing import (
    interface_address,
    network_from_netmask,
    network_from_wildcard,
    parse_ip,
)
from repro.util.errors import ConfigError

_SECTION_HEADERS = ("interface", "router", "ip access-list", "line", "vlan")


def parse_config(text, hostname=None):
    """Parse configuration text into a :class:`DeviceConfig`.

    ``hostname`` overrides any ``hostname`` line (useful when loading files
    whose name, not content, identifies the device).
    """
    parser = _Parser(hostname)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        parser.feed(raw, line_no)
    return parser.finish()


class _Parser:
    """Stateful line parser; one instance per config text."""

    def __init__(self, hostname=None):
        self.config = DeviceConfig(hostname=hostname or "unnamed")
        self._hostname_forced = hostname is not None
        self._section = None  # ("interface", obj) etc.

    # -- driver -------------------------------------------------------------

    def feed(self, raw, line_no):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith("!"):
            self._section = None
            return
        indented = line[0] in (" ", "\t")
        try:
            if indented and self._section is not None:
                self._feed_section(stripped)
            else:
                self._section = None
                self._feed_top(stripped)
        except ConfigError as exc:
            if exc.line is None:
                raise ConfigError(str(exc), line=line_no) from None
            raise

    def finish(self):
        return self.config

    # -- top-level commands ---------------------------------------------------

    def _feed_top(self, line):
        tokens = line.split()
        head = tokens[0]
        if head == "hostname":
            if not self._hostname_forced:
                self.config.hostname = _require(tokens, 1, "hostname")
        elif head == "interface":
            name = _require(tokens, 1, "interface name")
            self._section = ("interface", self.config.interface(name, create=True))
        elif line.startswith("router ospf"):
            pid = int(_require(tokens, 2, "OSPF process id"))
            if self.config.ospf is None:
                self.config.ospf = OspfConfig(process_id=pid)
            self._section = ("ospf", self.config.ospf)
        elif line.startswith("router bgp"):
            asn = int(_require(tokens, 2, "BGP AS number"))
            if self.config.bgp is None:
                self.config.bgp = BgpConfig(asn=asn)
            self._section = ("bgp", self.config.bgp)
        elif line.startswith("ip access-list"):
            kind = _require(tokens, 2, "ACL kind")
            if kind not in ("standard", "extended"):
                raise ConfigError(f"unknown ACL kind {kind!r}")
            name = _require(tokens, 3, "ACL name")
            acl = self.config.acls.get(name)
            if acl is None:
                acl = self.config.add_acl(Acl(name=name, kind=kind))
            self._section = ("acl", acl)
        elif head == "access-list":
            self._feed_numbered_acl(tokens)
        elif line.startswith("ip route"):
            self._feed_static_route(tokens)
        elif line.startswith("ip default-gateway"):
            self.config.default_gateway = parse_ip(
                _require(tokens, 2, "gateway address")
            )
        elif head == "vlan":
            vlan_id = int(_require(tokens, 1, "vlan id"))
            vlan = self.config.vlans.setdefault(vlan_id, VlanConfig(vlan_id))
            self._section = ("vlan", vlan)
        elif line.startswith("enable secret"):
            # Optional encryption-type digit between "secret" and the secret.
            secret_tokens = tokens[2:]
            if len(secret_tokens) == 2 and secret_tokens[0].isdigit():
                secret_tokens = secret_tokens[1:]
            self.config.enable_secret = " ".join(secret_tokens) or None
        elif line.startswith("snmp-server community"):
            self.config.snmp_community = _require(tokens, 2, "community string")
        elif line.startswith("line vty"):
            self._section = ("line", None)
        else:
            raise ConfigError(f"unknown command {line!r}")

    def _feed_numbered_acl(self, tokens):
        number = _require(tokens, 1, "ACL number")
        try:
            value = int(number)
        except ValueError:
            raise ConfigError(f"bad ACL number {number!r}") from None
        kind = "standard" if 1 <= value <= 99 else "extended"
        acl = self.config.acls.get(number)
        if acl is None:
            acl = self.config.add_acl(Acl(name=number, kind=kind))
        entry_text = " ".join(tokens[2:])
        acl.entries.append(AclEntry.parse(entry_text, kind=kind))

    def _feed_static_route(self, tokens):
        prefix = network_from_netmask(
            _require(tokens, 2, "route prefix"), _require(tokens, 3, "route mask")
        )
        next_hop = parse_ip(_require(tokens, 4, "next hop"))
        distance = 1
        if len(tokens) > 5:
            distance = int(tokens[5])
        self.config.static_routes.append(
            StaticRoute(prefix=prefix, next_hop=next_hop, distance=distance)
        )

    # -- section bodies --------------------------------------------------------

    def _feed_section(self, line):
        section_kind, obj = self._section
        handler = {
            "interface": self._feed_interface,
            "ospf": self._feed_ospf,
            "bgp": self._feed_bgp,
            "acl": self._feed_acl,
            "vlan": self._feed_vlan,
            "line": self._feed_line,
        }[section_kind]
        handler(obj, line)

    def _feed_interface(self, iface, line):
        tokens = line.split()
        if line.startswith("description"):
            iface.description = line[len("description"):].strip()
        elif line.startswith("ip address"):
            iface.address = interface_address(
                _require(tokens, 2, "address"), _require(tokens, 3, "netmask")
            )
        elif line == "no ip address":
            iface.address = None
        elif line == "shutdown":
            iface.shutdown = True
        elif line == "no shutdown":
            iface.shutdown = False
        elif line.startswith("ip ospf cost"):
            iface.ospf_cost = int(_require(tokens, 3, "cost"))
        elif line.startswith("ip access-group"):
            name = _require(tokens, 2, "ACL name")
            direction = _require(tokens, 3, "direction")
            if direction == "in":
                iface.access_group_in = name
            elif direction == "out":
                iface.access_group_out = name
            else:
                raise ConfigError(f"unknown access-group direction {direction!r}")
        elif line.startswith("no ip access-group"):
            direction = tokens[-1]
            if direction == "in":
                iface.access_group_in = None
            elif direction == "out":
                iface.access_group_out = None
            else:
                raise ConfigError(f"unknown access-group direction {direction!r}")
        elif line.startswith("switchport mode"):
            iface.switchport_mode = _require(tokens, 2, "switchport mode")
            if iface.switchport_mode not in ("access", "trunk"):
                raise ConfigError(
                    f"unknown switchport mode {iface.switchport_mode!r}"
                )
        elif line.startswith("switchport access vlan"):
            iface.access_vlan = int(_require(tokens, 3, "vlan id"))
            if iface.switchport_mode is None:
                iface.switchport_mode = "access"
        elif line.startswith("switchport trunk allowed vlan"):
            ids = _require(tokens, 4, "vlan list")
            iface.trunk_vlans = tuple(int(v) for v in ids.split(","))
            if iface.switchport_mode is None:
                iface.switchport_mode = "trunk"
        else:
            raise ConfigError(f"unknown interface command {line!r}")

    def _feed_ospf(self, ospf, line):
        tokens = line.split()
        if line.startswith("network"):
            if len(tokens) != 5 or tokens[3] != "area":
                raise ConfigError(f"bad OSPF network statement {line!r}")
            prefix = network_from_wildcard(tokens[1], tokens[2])
            statement = OspfNetwork(prefix=prefix, area=int(tokens[4]))
            if statement not in ospf.networks:
                # IOS config lines are idempotent: repeating a network
                # statement does not duplicate it.
                ospf.networks.append(statement)
        elif line.startswith("passive-interface"):
            ospf.passive_interfaces.add(_require(tokens, 1, "interface"))
        elif line == "default-information originate":
            ospf.default_information_originate = True
        elif line.startswith("auto-cost reference-bandwidth"):
            ospf.reference_bandwidth_mbps = int(_require(tokens, 2, "bandwidth"))
        else:
            raise ConfigError(f"unknown OSPF command {line!r}")

    def _feed_bgp(self, bgp, line):
        tokens = line.split()
        if line.startswith("neighbor"):
            if len(tokens) != 4 or tokens[2] != "remote-as":
                raise ConfigError(f"bad BGP neighbor statement {line!r}")
            statement = BgpNeighbor(
                address=parse_ip(tokens[1]), remote_as=int(tokens[3])
            )
            if statement not in bgp.neighbors:
                bgp.neighbors.append(statement)
        elif line.startswith("network"):
            if len(tokens) != 4 or tokens[2] != "mask":
                raise ConfigError(f"bad BGP network statement {line!r}")
            prefix = network_from_netmask(tokens[1], tokens[3])
            if prefix not in bgp.networks:
                bgp.networks.append(prefix)
        else:
            raise ConfigError(f"unknown BGP command {line!r}")

    def _feed_acl(self, acl, line):
        acl.entries.append(AclEntry.parse(line, kind=acl.kind))

    def _feed_vlan(self, vlan, line):
        tokens = line.split()
        if line.startswith("name"):
            vlan.name = _require(tokens, 1, "vlan name")
        else:
            raise ConfigError(f"unknown vlan command {line!r}")

    def _feed_line(self, _obj, line):
        tokens = line.split()
        if line.startswith("password"):
            self.config.vty_password = _require(tokens, 1, "password")
        elif line in ("login", "transport input ssh", "transport input telnet"):
            pass  # accepted, no model state needed
        else:
            raise ConfigError(f"unknown line command {line!r}")


def _require(tokens, index, what):
    """Fetch ``tokens[index]`` or raise a descriptive error."""
    if index >= len(tokens):
        raise ConfigError(f"missing {what} in {' '.join(tokens)!r}")
    return tokens[index]
