"""Apply :class:`~repro.config.diffing.ConfigChange` objects to configurations.

The policy enforcer's scheduler pushes verified changes to the production
network one at a time, in a safe order. This module is the inverse of
:mod:`repro.config.diffing`: applying ``diff_configs(old, new)`` to ``old``
yields ``new`` (property-tested).
"""

import copy

from repro.util.errors import ConfigError, FatalApplyError


def apply_change(config, change):
    """Apply one change to ``config`` in place.

    Raises :class:`~repro.util.errors.FatalApplyError` (never a bare
    ``ValueError``) for unknown kinds so the transactional scheduler can
    discriminate fatal from transient failures.
    """
    handler = _HANDLERS.get(change.kind)
    if handler is None:
        raise FatalApplyError(
            f"cannot apply change kind {change.kind!r}", change=change
        )
    handler(config, change)


def apply_changes(configs, changes):
    """Apply many changes to a dict of hostname -> DeviceConfig, in order."""
    for change in changes:
        if change.device not in configs:
            raise FatalApplyError(
                f"change targets unknown device {change.device!r}",
                device=change.device, change=change,
            )
        apply_change(configs[change.device], change)


# -- handlers -------------------------------------------------------------


def _hostname(config, change):
    config.hostname = change.new


def _vlan_added(config, change):
    from repro.config.model import VlanConfig

    vlan_id = int(change.path)
    config.vlans[vlan_id] = VlanConfig(vlan_id, name=change.new)


def _vlan_removed(config, change):
    config.vlans.pop(int(change.path), None)


def _vlan_renamed(config, change):
    config.vlans[int(change.path)].name = change.new


def _interface_added(config, change):
    config.interfaces[change.path] = copy.deepcopy(change.new)


def _interface_removed(config, change):
    config.interfaces.pop(change.path, None)


def _interface_field(field_name):
    def handler(config, change):
        setattr(config.interface(change.path, create=True), field_name, change.new)

    return handler


def _ospf_process(config, change):
    config.ospf = copy.deepcopy(change.new)


def _ospf_network(config, change):
    if config.ospf is None:
        raise ConfigError("no OSPF process to change")
    if change.new is None:
        if change.old in config.ospf.networks:
            config.ospf.networks.remove(change.old)
    elif change.new not in config.ospf.networks:
        config.ospf.networks.append(change.new)


def _ospf_networks_reordered(config, change):
    if config.ospf is None:
        raise ConfigError("no OSPF process to change")
    config.ospf.networks = list(change.new)


def _ospf_passive(config, change):
    if config.ospf is None:
        raise ConfigError("no OSPF process to change")
    if change.new:
        config.ospf.passive_interfaces.add(change.path)
    else:
        config.ospf.passive_interfaces.discard(change.path)


def _ospf_default_information(config, change):
    config.ospf.default_information_originate = change.new


def _ospf_reference_bandwidth(config, change):
    config.ospf.reference_bandwidth_mbps = change.new


def _bgp_process(config, change):
    config.bgp = copy.deepcopy(change.new)


def _bgp_neighbor(config, change):
    if config.bgp is None:
        raise ConfigError("no BGP process to change")
    if change.new is None:
        if change.old in config.bgp.neighbors:
            config.bgp.neighbors.remove(change.old)
    else:
        # Unconditional append: the differ emits multiset-accurate changes,
        # so duplicates in the target must keep their multiplicity.
        config.bgp.neighbors.append(change.new)


def _bgp_neighbors_reordered(config, change):
    if config.bgp is None:
        raise ConfigError("no BGP process to change")
    config.bgp.neighbors = list(change.new)


def _bgp_network(config, change):
    if config.bgp is None:
        raise ConfigError("no BGP process to change")
    if change.new is None:
        if change.old in config.bgp.networks:
            config.bgp.networks.remove(change.old)
    else:
        config.bgp.networks.append(change.new)


def _bgp_networks_reordered(config, change):
    if config.bgp is None:
        raise ConfigError("no BGP process to change")
    config.bgp.networks = list(change.new)


def _static_route(config, change):
    if change.new is None:
        if change.old in config.static_routes:
            config.static_routes.remove(change.old)
    else:
        config.static_routes.append(change.new)


def _static_routes_reordered(config, change):
    config.static_routes = list(change.new)


def _acl_added(config, change):
    config.acls[change.path] = change.new.copy()


def _acl_removed(config, change):
    config.acls.pop(change.path, None)


def _acl_entry_added(config, change):
    config.acl(change.path).entries.append(change.new)


def _acl_entry_removed(config, change):
    entries = config.acl(change.path).entries
    if change.old in entries:
        entries.remove(change.old)


def _acl_reordered(config, change):
    config.acl(change.path).entries = list(change.new)


def _scalar(field_name):
    def handler(config, change):
        setattr(config, field_name, change.new)

    return handler


_HANDLERS = {
    "hostname": _hostname,
    "vlan.added": _vlan_added,
    "vlan.removed": _vlan_removed,
    "vlan.renamed": _vlan_renamed,
    "interface.added": _interface_added,
    "interface.removed": _interface_removed,
    "interface.address": _interface_field("address"),
    "interface.shutdown": _interface_field("shutdown"),
    "interface.description": _interface_field("description"),
    "interface.ospf_cost": _interface_field("ospf_cost"),
    "interface.access_group_in": _interface_field("access_group_in"),
    "interface.access_group_out": _interface_field("access_group_out"),
    "interface.switchport_mode": _interface_field("switchport_mode"),
    "interface.access_vlan": _interface_field("access_vlan"),
    "interface.trunk_vlans": _interface_field("trunk_vlans"),
    "ospf.process": _ospf_process,
    "ospf.network": _ospf_network,
    "ospf.networks_reordered": _ospf_networks_reordered,
    "ospf.passive_interface": _ospf_passive,
    "ospf.default_information": _ospf_default_information,
    "ospf.reference_bandwidth": _ospf_reference_bandwidth,
    "bgp.process": _bgp_process,
    "bgp.neighbor": _bgp_neighbor,
    "bgp.neighbors_reordered": _bgp_neighbors_reordered,
    "bgp.network": _bgp_network,
    "bgp.networks_reordered": _bgp_networks_reordered,
    "static_route": _static_route,
    "static_routes_reordered": _static_routes_reordered,
    "acl.added": _acl_added,
    "acl.removed": _acl_removed,
    "acl.entry_added": _acl_entry_added,
    "acl.entry_removed": _acl_entry_removed,
    "acl.reordered": _acl_reordered,
    "default_gateway": _scalar("default_gateway"),
    "enable_secret": _scalar("enable_secret"),
    "snmp_community": _scalar("snmp_community"),
    "vty_password": _scalar("vty_password"),
}
