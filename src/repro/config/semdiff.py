"""Section-aware semantic drift classification.

Device fingerprints answer *whether* a config changed; this module answers
*where*. Every :class:`~repro.config.diffing.ConfigChange` kind is mapped to
one of a small set of config **sections** — the granularity at which two
concurrent edits can safely interleave. Two tickets that touch the same
device but disjoint sections (say, a VLAN rename and an OSPF cost tweak) do
not conflict: replaying either set over the other yields the same device
config, because the differ emits per-section changes and the scheduler
applies them per-section.

The section vocabulary is deliberately coarser than change kinds and finer
than devices:

========== ==================================================================
section    covers
========== ==================================================================
vlan       VLAN database plus L2 switchport assignments (access/trunk/mode)
interface  interface existence, addressing, admin state, descriptions
ospf       the OSPF process, network statements, per-interface costs
bgp        the BGP process, neighbors, advertised networks
static     static routes and the default gateway
acl        ACL definitions/entries and interface ACL bindings
scalar     device-global scalars: hostname, credentials, SNMP
========== ==================================================================

Switchport changes sit in ``vlan`` (not ``interface``) because they decide
VLAN membership — the thing a concurrent VLAN ticket reasons about.
Interface ACL bindings sit in ``acl`` because binding an ACL is an ACL
policy decision. Per-interface OSPF costs sit in ``ospf`` because they
reshape SPF, not the interface itself.

Consumers:

- :mod:`repro.core.sessions` classifies base drift per device: drift whose
  sections are disjoint from the session's edited sections rebases cleanly
  instead of conflicting.
- :mod:`repro.core.enforcer.risk` weights change sets by section instead of
  re-deriving its own proximity classes.
"""

from repro.config.diffing import _KIND_TABLE, diff_configs
from repro.obs import metrics as obs_metrics

#: The closed section vocabulary, in rough dataplane-proximity order.
SECTIONS = ("vlan", "interface", "ospf", "bgp", "static", "acl", "scalar")

# kind -> section. Keyed off the differ's kind table so a new change kind
# without a section assignment fails loudly at import (see the lint test in
# tests/config/test_semdiff.py).
_SECTION_BY_KIND = {
    "hostname": "scalar",
    "vlan.added": "vlan",
    "vlan.removed": "vlan",
    "vlan.renamed": "vlan",
    "interface.added": "interface",
    "interface.removed": "interface",
    "interface.address": "interface",
    "interface.shutdown": "interface",
    "interface.description": "interface",
    "interface.ospf_cost": "ospf",
    "interface.access_group_in": "acl",
    "interface.access_group_out": "acl",
    "interface.switchport_mode": "vlan",
    "interface.access_vlan": "vlan",
    "interface.trunk_vlans": "vlan",
    "ospf.process": "ospf",
    "ospf.network": "ospf",
    "ospf.networks_reordered": "ospf",
    "ospf.passive_interface": "ospf",
    "ospf.default_information": "ospf",
    "ospf.reference_bandwidth": "ospf",
    "bgp.process": "bgp",
    "bgp.neighbor": "bgp",
    "bgp.neighbors_reordered": "bgp",
    "bgp.network": "bgp",
    "bgp.networks_reordered": "bgp",
    "static_route": "static",
    "static_routes_reordered": "static",
    "default_gateway": "static",
    "acl.added": "acl",
    "acl.removed": "acl",
    "acl.entry_added": "acl",
    "acl.entry_removed": "acl",
    "acl.reordered": "acl",
    "enable_secret": "scalar",
    "snmp_community": "scalar",
    "vty_password": "scalar",
}

_missing = set(_KIND_TABLE) - set(_SECTION_BY_KIND)
_extra = set(_SECTION_BY_KIND) - set(_KIND_TABLE)
if _missing or _extra:  # pragma: no cover - import-time schema guard
    raise RuntimeError(
        f"semdiff section table out of sync with diffing kind table: "
        f"missing={sorted(_missing)} extra={sorted(_extra)}"
    )

#: Drift verdict for a device the differ cannot see (added/removed device,
#: unparseable base): assume every section moved.
ALL_SECTIONS = frozenset(SECTIONS)

_CLASSIFIED = obs_metrics.counter(
    "semdiff.devices.classified", unit="devices",
    help="drifted devices mapped to changed config sections",
)
_UNCHANGED = obs_metrics.counter(
    "semdiff.devices.unchanged", unit="devices",
    help="fingerprint-drifted devices with zero semantic changes "
         "(serialization-stable rewrites, not real drift)",
)
_SECTIONS_PER_DEVICE = obs_metrics.histogram(
    "semdiff.sections.per_device", unit="sections",
    help="changed-section count per classified device",
    buckets=(1, 2, 3, 4, 5, 6, 7),
)


def section_of_kind(kind):
    """The config section a change kind belongs to (raises on unknown)."""
    try:
        return _SECTION_BY_KIND[kind]
    except KeyError:
        raise ValueError(f"unknown change kind {kind!r}") from None


def section_of(change):
    """The config section a :class:`ConfigChange` belongs to."""
    return section_of_kind(change.kind)


def changed_sections(old_config, new_config):
    """The set of sections that differ between two device configs.

    An empty set means the two configs are semantically identical even if
    their serializations differ byte-for-byte — fingerprint drift without
    real drift.
    """
    sections = frozenset(
        section_of(change) for change in diff_configs(old_config, new_config)
    )
    if sections:
        _CLASSIFIED.inc()
        _SECTIONS_PER_DEVICE.observe(len(sections))
    else:
        _UNCHANGED.inc()
    return sections


def sections_by_device(changes):
    """Map each device in a change set to its set of touched sections."""
    result = {}
    for change in changes:
        result.setdefault(change.device, set()).add(section_of(change))
    return {device: frozenset(sections) for device, sections in result.items()}
