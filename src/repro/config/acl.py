"""Access control lists: model, matching semantics, and entry text forms.

Supports the two IOS ACL families the scenario networks use:

* **standard** ACLs match on source address only
  (``permit 10.0.1.0 0.0.0.255``);
* **extended** ACLs match the full 5-tuple
  (``deny tcp 10.1.0.0 0.0.255.255 host 10.2.0.5 eq 80``).

Matching follows IOS semantics: first matching entry wins, with an implicit
``deny ip any any`` at the end.
"""

import ipaddress
from dataclasses import dataclass, field

from repro.net.addressing import network_from_wildcard, prefixlen_to_wildcard
from repro.util.errors import ConfigError

ANY_NETWORK = ipaddress.IPv4Network("0.0.0.0/0")

_WELL_KNOWN_PORTS = {
    "ftp": 21,
    "ssh": 22,
    "telnet": 23,
    "smtp": 25,
    "domain": 53,
    "www": 80,
    "snmp": 161,
    "bgp": 179,
    "https": 443,
}
_PORT_NAMES = {number: name for name, number in _WELL_KNOWN_PORTS.items()}


def _parse_port(token):
    """Parse a port token that may be a number or a well-known service name."""
    if token in _WELL_KNOWN_PORTS:
        return _WELL_KNOWN_PORTS[token]
    try:
        port = int(token)
    except ValueError:
        raise ConfigError(f"unknown port {token!r}") from None
    if not 0 <= port <= 65535:
        raise ConfigError(f"port {port} out of range")
    return port


def _format_port(port):
    """Render a port number, preferring its well-known service name."""
    return _PORT_NAMES.get(port, str(port))


@dataclass(frozen=True)
class PortMatch:
    """A port qualifier: ``eq``, ``gt``, ``lt``, or ``range``."""

    op: str
    low: int
    high: int = None

    _OPS = ("eq", "gt", "lt", "range")

    def __post_init__(self):
        if self.op not in self._OPS:
            raise ConfigError(f"unknown port operator {self.op!r}")
        if self.op == "range" and self.high is None:
            raise ConfigError("range requires two ports")

    def matches(self, port):
        """Whether a concrete port (possibly ``None``) satisfies the match."""
        if port is None:
            return False
        if self.op == "eq":
            return port == self.low
        if self.op == "gt":
            return port > self.low
        if self.op == "lt":
            return port < self.low
        return self.low <= port <= self.high

    def to_tokens(self):
        """Serialize back to IOS tokens."""
        if self.op == "range":
            return ["range", _format_port(self.low), _format_port(self.high)]
        return [self.op, _format_port(self.low)]


def _parse_address_spec(tokens, index):
    """Parse ``any`` | ``host A`` | ``A wildcard`` starting at ``index``.

    Returns ``(network, next_index)``.
    """
    if index >= len(tokens):
        raise ConfigError("truncated ACL address specification")
    token = tokens[index]
    if token == "any":
        return ANY_NETWORK, index + 1
    if token == "host":
        if index + 1 >= len(tokens):
            raise ConfigError("'host' requires an address")
        return ipaddress.IPv4Network(f"{tokens[index + 1]}/32"), index + 2
    if index + 1 >= len(tokens):
        raise ConfigError(f"address {token!r} requires a wildcard mask")
    return network_from_wildcard(token, tokens[index + 1]), index + 2


def _parse_port_spec(tokens, index):
    """Parse an optional port qualifier; returns ``(PortMatch | None, next)``."""
    if index >= len(tokens):
        return None, index
    op = tokens[index]
    if op not in PortMatch._OPS:
        return None, index
    if op == "range":
        if index + 2 >= len(tokens):
            raise ConfigError("'range' requires two ports")
        match = PortMatch(
            "range", _parse_port(tokens[index + 1]), _parse_port(tokens[index + 2])
        )
        return match, index + 3
    if index + 1 >= len(tokens):
        raise ConfigError(f"{op!r} requires a port")
    return PortMatch(op, _parse_port(tokens[index + 1])), index + 2


def _format_address_spec(network):
    """Serialize a network back to IOS address-spec tokens."""
    if network == ANY_NETWORK:
        return ["any"]
    if network.prefixlen == 32:
        return ["host", str(network.network_address)]
    return [
        str(network.network_address),
        prefixlen_to_wildcard(network.prefixlen),
    ]


@dataclass(frozen=True)
class AclEntry:
    """One permit/deny line of an ACL."""

    action: str  # "permit" | "deny"
    protocol: str = "ip"
    src: ipaddress.IPv4Network = ANY_NETWORK
    src_port: PortMatch = None
    dst: ipaddress.IPv4Network = ANY_NETWORK
    dst_port: PortMatch = None

    def __post_init__(self):
        if self.action not in ("permit", "deny"):
            raise ConfigError(f"unknown ACL action {self.action!r}")
        if self.protocol not in ("ip", "icmp", "tcp", "udp"):
            raise ConfigError(f"unknown ACL protocol {self.protocol!r}")
        if self.protocol in ("ip", "icmp") and (self.src_port or self.dst_port):
            raise ConfigError(f"{self.protocol!r} entries cannot match ports")

    def matches(self, flow):
        """IOS match semantics against a :class:`~repro.net.flow.Flow`."""
        if self.protocol != "ip" and flow.protocol != self.protocol:
            return False
        if flow.src_ip not in self.src or flow.dst_ip not in self.dst:
            return False
        if self.src_port is not None and not self.src_port.matches(flow.src_port):
            return False
        if self.dst_port is not None and not self.dst_port.matches(flow.dst_port):
            return False
        return True

    def to_text(self, kind="extended"):
        """Serialize to the IOS entry text (without the ``access-list N``)."""
        if kind == "standard":
            return " ".join([self.action] + _format_address_spec(self.src))
        tokens = [self.action, self.protocol]
        tokens += _format_address_spec(self.src)
        if self.src_port is not None:
            tokens += self.src_port.to_tokens()
        tokens += _format_address_spec(self.dst)
        if self.dst_port is not None:
            tokens += self.dst_port.to_tokens()
        return " ".join(tokens)

    @classmethod
    def parse(cls, text, kind="extended"):
        """Parse an entry from its text form (tokens after the ACL name)."""
        tokens = text.split()
        if not tokens:
            raise ConfigError("empty ACL entry")
        action = tokens[0]
        if kind == "standard":
            src, index = _parse_address_spec(tokens, 1)
            if index != len(tokens):
                raise ConfigError(f"trailing tokens in standard ACL entry: {text!r}")
            return cls(action=action, protocol="ip", src=src)
        if len(tokens) < 2:
            raise ConfigError(f"truncated ACL entry: {text!r}")
        protocol = tokens[1]
        src, index = _parse_address_spec(tokens, 2)
        src_port, index = _parse_port_spec(tokens, index)
        dst, index = _parse_address_spec(tokens, index)
        dst_port, index = _parse_port_spec(tokens, index)
        if index != len(tokens):
            raise ConfigError(f"trailing tokens in ACL entry: {text!r}")
        return cls(
            action=action,
            protocol=protocol,
            src=src,
            src_port=src_port,
            dst=dst,
            dst_port=dst_port,
        )


@dataclass
class Acl:
    """A named or numbered ACL: ordered entries with implicit final deny."""

    name: str
    kind: str = "extended"  # "standard" | "extended"
    entries: list = field(default_factory=list)

    def __post_init__(self):
        if self.kind not in ("standard", "extended"):
            raise ConfigError(f"unknown ACL kind {self.kind!r}")

    def permits(self, flow):
        """First-match evaluation; implicit deny when nothing matches."""
        for entry in self.entries:
            if entry.matches(flow):
                return entry.action == "permit"
        return False

    def matching_entry(self, flow):
        """The entry that decides ``flow``, or ``None`` for the implicit deny."""
        for entry in self.entries:
            if entry.matches(flow):
                return entry
        return None

    def copy(self):
        """Deep copy (entries are immutable, the list is not)."""
        return Acl(name=self.name, kind=self.kind, entries=list(self.entries))
