"""IOS-style device configuration: structured model, parser, serializer.

This package is the reproduction's stand-in for the vendor-configuration
front-end of Batfish [37]: configuration text is parsed into a structured
:class:`~repro.config.model.DeviceConfig`, which the control plane
(:mod:`repro.control`) consumes and the serializer can emit back as canonical
text (parse/serialize round-trips are property-tested).
"""

from repro.config.acl import Acl, AclEntry, PortMatch
from repro.config.apply import apply_change, apply_changes
from repro.config.diffing import ConfigChange, diff_configs, diff_networks
from repro.config.model import (
    DeviceConfig,
    InterfaceConfig,
    OspfConfig,
    OspfNetwork,
    StaticRoute,
    VlanConfig,
)
from repro.config.parser import parse_config
from repro.config.serializer import serialize_config

__all__ = [
    "Acl",
    "AclEntry",
    "ConfigChange",
    "DeviceConfig",
    "InterfaceConfig",
    "OspfConfig",
    "OspfNetwork",
    "PortMatch",
    "StaticRoute",
    "VlanConfig",
    "apply_change",
    "apply_changes",
    "diff_configs",
    "diff_networks",
    "parse_config",
    "serialize_config",
]
