"""Mine network policies from the current data plane (config2spec stand-in).

config2spec [32] extracts the specification a configuration *implies*; the
paper uses it to produce the policy sets of Table 1. Our miner does the
moral equivalent on the simulated data plane, at LAN granularity:

* **reachability** — for every ordered pair of host LANs, if the
  representative flow is delivered, the configuration implies a
  reachability policy;
* **isolation** — if the flow is dropped *by an ACL* (an explicit security
  decision, unlike a routing gap), the configuration implies an isolation
  policy;
* **service reachability** — for every applied ACL entry that permits a
  specific TCP/UDP destination port to a concrete host, if a matching flow
  is delivered, the configuration implies a service policy.

Mining granularity differs from config2spec's (documented in
EXPERIMENTS.md), so policy *counts* are comparable in magnitude, not equal.
"""

import ipaddress

from repro.control.builder import build_dataplane
from repro.dataplane.forwarding import Disposition
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.net.flow import Flow
from repro.policy.model import IsolationPolicy, ReachabilityPolicy

_ACL_DISPOSITIONS = (Disposition.DENIED_IN, Disposition.DENIED_OUT)


def mine_policies(network, dataplane=None, include_services=True,
                  include_waypoints=False, max_failures=0,
                  failure_scope="backbone"):
    """The policy set implied by ``network``'s current configuration.

    With ``max_failures=1`` only policies that also hold under every single
    link failure survive — config2spec's *k-failure robustness* mining.
    ``failure_scope`` selects the failure universe: ``"backbone"`` fails
    only links between network devices (routers/switches), the scenarios
    config2spec's evaluation sweeps; ``"all"`` also fails host access links
    (under which no single-homed host keeps any reachability policy —
    correct, but rarely the question being asked).
    """
    if dataplane is None:
        dataplane = build_dataplane(network)
    analyzer = ReachabilityAnalyzer(dataplane)
    policies = []
    policies.extend(_mine_lan_policies(network, analyzer))
    if include_services:
        policies.extend(_mine_service_policies(network, analyzer))
    if include_waypoints:
        policies.extend(_mine_waypoint_policies(network, analyzer, policies))
    if max_failures >= 1:
        policies = _robust_subset(network, policies, failure_scope)
    return policies


_INTERNAL_SPACE = (
    ipaddress.IPv4Network("10.0.0.0/8"),
    ipaddress.IPv4Network("192.168.0.0/16"),
    ipaddress.IPv4Network("172.16.0.0/12"),
)


def _is_internal(address):
    return any(address in space for space in _INTERNAL_SPACE)


def _mine_waypoint_policies(network, analyzer, mined_policies):
    """Waypoint policies: externally-sourced traffic rides a filtering device.

    For every delivered reachability/service policy whose source is outside
    the internal address space, the first transit device carrying an applied
    ACL is the de-facto security waypoint the configuration implies — emit
    the corresponding :class:`WaypointPolicy`.
    """
    from repro.policy.model import WaypointPolicy

    policies = []
    seen = set()
    for policy in mined_policies:
        if policy.kind != "reachability" or _is_internal(policy.flow.src_ip):
            continue
        trace = analyzer.trace(policy.flow)
        if not trace.success:
            continue
        endpoints = {trace.path()[0], trace.path()[-1]}
        waypoint = next(
            (
                hop.device
                for hop in trace.hops
                if hop.device not in endpoints
                and _has_applied_acl(network.config(hop.device))
            ),
            None,
        )
        if waypoint is None:
            continue
        key = (policy.flow, waypoint)
        if key in seen:
            continue
        seen.add(key)
        policies.append(
            WaypointPolicy(
                policy_id=f"waypoint:{policy.policy_id}@{waypoint}",
                flow=policy.flow,
                waypoint=waypoint,
                comment=f"external traffic is filtered at {waypoint}",
            )
        )
    return policies


def _has_applied_acl(config):
    return any(
        name in config.acls
        for iface in config.interfaces.values()
        for name in (iface.access_group_in, iface.access_group_out)
        if name is not None
    )


def _failure_links(network, failure_scope):
    hosts = set(network.hosts())
    for link in network.topology.links():
        if failure_scope == "backbone" and (
            link.a.device in hosts or link.b.device in hosts
        ):
            continue
        yield link


def _robust_subset(network, policies, failure_scope):
    """Policies that hold in the base network AND under every 1-link failure."""
    from repro.policy.verification import PolicyVerifier

    surviving = list(policies)
    for link in _failure_links(network, failure_scope):
        if not surviving:
            break
        broken = network.copy()
        for endpoint in link.endpoints():
            broken.config(endpoint.device).interface(
                endpoint.name
            ).shutdown = True
        report = PolicyVerifier(surviving).verify_network(broken)
        violated = {result.policy.policy_id for result in report.violations}
        surviving = [p for p in surviving if p.policy_id not in violated]
    return surviving


def _lan_representatives(network):
    """One representative host per LAN (subnet), deterministic order."""
    representatives = {}
    for host in network.hosts():
        address = network.config(host).primary_address
        if address is None:
            continue
        representatives.setdefault(address.network, (host, address.ip))
    return representatives


def _mine_lan_policies(network, analyzer):
    policies = []
    representatives = _lan_representatives(network)
    lans = sorted(representatives, key=str)
    for src_lan in lans:
        src_host, src_ip = representatives[src_lan]
        for dst_lan in lans:
            if src_lan == dst_lan:
                continue
            dst_host, dst_ip = representatives[dst_lan]
            flow = Flow(src_ip=src_ip, dst_ip=dst_ip, protocol="icmp")
            trace = analyzer.trace(flow)
            pair = f"{src_lan}->{dst_lan}"
            if trace.success:
                policies.append(
                    ReachabilityPolicy(
                        policy_id=f"reach:{pair}",
                        flow=flow,
                        comment=f"{src_host} LAN reaches {dst_host} LAN",
                    )
                )
            elif trace.disposition in _ACL_DISPOSITIONS:
                policies.append(
                    IsolationPolicy(
                        policy_id=f"isolate:{pair}",
                        flow=flow,
                        comment=(
                            f"{src_host} LAN blocked from {dst_host} LAN "
                            f"at {trace.last_device}"
                        ),
                    )
                )
    return policies


def _mine_service_policies(network, analyzer):
    """Service policies from applied ACL permits with concrete ports."""
    policies = []
    seen = set()
    representatives = _lan_representatives(network)
    for device in network.routers():
        config = network.config(device)
        applied = set()
        for iface in config.interfaces.values():
            for name in (iface.access_group_in, iface.access_group_out):
                if name is not None and name in config.acls:
                    applied.add(name)
        for name in sorted(applied):
            for entry in config.acls[name].entries:
                policy = _service_policy_for(
                    entry, representatives, analyzer, seen
                )
                if policy is not None:
                    policies.append(policy)
    return policies


def _service_policy_for(entry, representatives, analyzer, seen):
    if entry.action != "permit" or entry.protocol not in ("tcp", "udp"):
        return None
    if entry.dst_port is None or entry.dst_port.op != "eq":
        return None
    if entry.dst.prefixlen != 32:
        return None
    dst_ip = entry.dst.network_address
    port = entry.dst_port.low
    # Prefer external sources: a permit reachable from outside the internal
    # address space is the security-notable service the config implies.
    candidates = sorted(
        representatives,
        key=lambda lan: (_is_internal(lan.network_address), str(lan)),
    )
    for src_lan in candidates:
        src_host, src_ip = representatives[src_lan]
        if src_ip not in entry.src or src_ip == dst_ip:
            continue
        key = (src_lan, dst_ip, entry.protocol, port)
        if key in seen:
            continue
        flow = Flow(
            src_ip=src_ip,
            dst_ip=dst_ip,
            protocol=entry.protocol,
            src_port=40000,
            dst_port=port,
        )
        if analyzer.trace(flow).success:
            seen.add(key)
            return ReachabilityPolicy(
                policy_id=f"service:{src_lan}->{dst_ip}:{entry.protocol}/{port}",
                flow=flow,
                comment=f"{src_host} LAN reaches service {dst_ip}:{port}",
            )
    return None
