"""Policy classes: reachability, isolation, waypoint.

Each policy owns a concrete representative :class:`~repro.net.flow.Flow` and
is checked by tracing that flow through a data plane. Policies serialise
to/from plain dicts — the JSON front-end the paper describes ("the admin can
specify both privileges and network policies using the same interface").
"""

from dataclasses import dataclass

from repro.net.flow import Flow
from repro.util.errors import ReproError


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of checking one policy."""

    policy: object
    holds: bool
    detail: str = ""

    def __str__(self):
        state = "HOLDS" if self.holds else "VIOLATED"
        return f"[{state}] {self.policy.policy_id}: {self.detail}"


@dataclass(frozen=True)
class Policy:
    """Base policy: a named predicate over one representative flow."""

    policy_id: str
    flow: Flow
    comment: str = ""

    kind = "abstract"

    def check(self, analyzer):
        """Evaluate against a :class:`ReachabilityAnalyzer`; returns PolicyResult."""
        raise NotImplementedError

    def to_dict(self):
        """Plain-dict form for the JSON front-end."""
        return {
            "kind": self.kind,
            "id": self.policy_id,
            "src_ip": str(self.flow.src_ip),
            "dst_ip": str(self.flow.dst_ip),
            "protocol": self.flow.protocol,
            "src_port": self.flow.src_port,
            "dst_port": self.flow.dst_port,
            "comment": self.comment,
        }


@dataclass(frozen=True)
class ReachabilityPolicy(Policy):
    """The flow must be delivered."""

    kind = "reachability"

    def check(self, analyzer):
        trace = analyzer.trace(self.flow)
        if trace.success:
            return PolicyResult(self, True, "delivered")
        return PolicyResult(
            self, False,
            f"{trace.disposition.value} at {trace.last_device}",
        )


@dataclass(frozen=True)
class IsolationPolicy(Policy):
    """The flow must NOT be delivered."""

    kind = "isolation"

    def check(self, analyzer):
        trace = analyzer.trace(self.flow)
        if not trace.success:
            return PolicyResult(self, True, trace.disposition.value)
        return PolicyResult(
            self, False, f"delivered via {' -> '.join(trace.path())}"
        )


@dataclass(frozen=True)
class WaypointPolicy(Policy):
    """If delivered, the flow must traverse ``waypoint``."""

    waypoint: str = None

    kind = "waypoint"

    def __post_init__(self):
        if self.waypoint is None:
            raise ReproError("waypoint policy requires a waypoint device")

    def check(self, analyzer):
        trace = analyzer.trace(self.flow)
        if not trace.success:
            return PolicyResult(self, True, "not delivered (vacuously holds)")
        if self.waypoint in trace.path():
            return PolicyResult(self, True, f"traverses {self.waypoint}")
        return PolicyResult(
            self, False,
            f"bypasses {self.waypoint}: {' -> '.join(trace.path())}",
        )

    def to_dict(self):
        data = super().to_dict()
        data["waypoint"] = self.waypoint
        return data


_KINDS = {
    "reachability": ReachabilityPolicy,
    "isolation": IsolationPolicy,
    "waypoint": WaypointPolicy,
}


def policy_from_dict(data):
    """Inverse of :meth:`Policy.to_dict`."""
    try:
        cls = _KINDS[data["kind"]]
    except KeyError:
        raise ReproError(f"unknown policy kind {data.get('kind')!r}") from None
    flow = Flow.make(
        data["src_ip"],
        data["dst_ip"],
        data.get("protocol", "ip"),
        src_port=data.get("src_port"),
        dst_port=data.get("dst_port"),
    )
    extra = {}
    if cls is WaypointPolicy:
        extra["waypoint"] = data["waypoint"]
    return cls(
        policy_id=data["id"],
        flow=flow,
        comment=data.get("comment", ""),
        **extra,
    )
