"""Policy verification over a data plane (the Batfish-check stand-in)."""

from dataclasses import dataclass, field

from repro.control.builder import build_dataplane
from repro.dataplane.reachability import ReachabilityAnalyzer


@dataclass
class VerificationReport:
    """Results of verifying one policy set against one data plane."""

    results: list = field(default_factory=list)

    @property
    def violations(self):
        """Results for policies that do not hold."""
        return [r for r in self.results if not r.holds]

    @property
    def holds(self):
        """Whether every policy holds."""
        return not self.violations

    @property
    def checked_count(self):
        return len(self.results)

    @property
    def violation_count(self):
        return len(self.violations)

    def violated_policies(self):
        """The policy objects that were violated."""
        return [r.policy for r in self.violations]

    def summary(self):
        return (
            f"{self.checked_count - self.violation_count}/{self.checked_count}"
            f" policies hold"
        )


class PolicyVerifier:
    """Checks a policy set against network states.

    One verifier instance is reusable across network states; each
    :meth:`verify` call compiles (or receives) a data plane and traces every
    policy's representative flow.
    """

    def __init__(self, policies):
        self.policies = list(policies)

    def verify_dataplane(self, dataplane):
        """Check all policies against an already-compiled data plane."""
        analyzer = ReachabilityAnalyzer(dataplane)
        report = VerificationReport()
        for policy in self.policies:
            report.results.append(policy.check(analyzer))
        return report

    def verify_network(self, network):
        """Compile ``network`` and check all policies."""
        return self.verify_dataplane(build_dataplane(network))

    def __len__(self):
        return len(self.policies)
