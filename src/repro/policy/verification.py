"""Policy verification over a data plane (the Batfish-check stand-in)."""

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.control.builder import build_dataplane
from repro.dataplane.reachability import ReachabilityAnalyzer


@dataclass
class VerificationReport:
    """Results of verifying one policy set against one data plane."""

    results: list = field(default_factory=list)

    @property
    def violations(self):
        """Results for policies that do not hold."""
        return [r for r in self.results if not r.holds]

    @property
    def holds(self):
        """Whether every policy holds."""
        return not self.violations

    @property
    def checked_count(self):
        return len(self.results)

    @property
    def violation_count(self):
        return len(self.violations)

    def violated_policies(self):
        """The policy objects that were violated."""
        return [r.policy for r in self.violations]

    def summary(self):
        return (
            f"{self.checked_count - self.violation_count}/{self.checked_count}"
            f" policies hold"
        )


class PolicyVerifier:
    """Checks a policy set against network states.

    One verifier instance is reusable across network states; each
    :meth:`verify` call compiles (or receives) a data plane and traces every
    policy's representative flow.

    ``max_workers`` controls policy-level parallelism: policies are
    independent of each other, and the analyzer's trace cache is
    thread-safe, so a pool of worker threads can check them concurrently.
    The default (``None``) stays serial — tracing is pure Python, so under
    the GIL threads only pay off when checks overlap on cached traces or a
    future backend releases the GIL; pass ``max_workers=N`` (or ``0`` for
    ``os.cpu_count()``) to opt in. Report order always matches policy
    order, parallel or not.
    """

    def __init__(self, policies, max_workers=None):
        self.policies = list(policies)
        self.max_workers = max_workers

    def _worker_count(self):
        if self.max_workers is None:
            return 1
        if self.max_workers == 0:
            return os.cpu_count() or 1
        return max(1, self.max_workers)

    def verify_dataplane(self, dataplane, analyzer=None):
        """Check all policies against an already-compiled data plane.

        Pass an ``analyzer`` to share one trace cache with other consumers
        of the same plane (the enforcer shares it with its differential
        impact analysis); by default one is created over the plane, which
        itself shares the plane's cache-attached trace store when present.
        """
        if analyzer is None:
            analyzer = ReachabilityAnalyzer(dataplane)
        report = VerificationReport()
        workers = self._worker_count()
        if workers > 1 and len(self.policies) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                report.results = list(
                    pool.map(lambda policy: policy.check(analyzer), self.policies)
                )
        else:
            for policy in self.policies:
                report.results.append(policy.check(analyzer))
        return report

    def verify_network(self, network):
        """Compile ``network`` and check all policies."""
        return self.verify_dataplane(build_dataplane(network))

    def __len__(self):
        return len(self.policies)
