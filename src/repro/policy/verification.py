"""Policy verification over a data plane (the Batfish-check stand-in)."""

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import faults
from repro.control.builder import build_dataplane
from repro.dataplane.reachability import ReachabilityAnalyzer
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.state import STATE as _OBS
from repro.util.clock import monotonic_s
from repro.util.errors import VerifierWorkerError

_POLICY_CHECKS = obs_metrics.counter(
    "policy.checks", unit="checks",
    help="individual policy evaluations (serial and parallel)",
)
_PARALLEL_CHECKS = obs_metrics.counter(
    "policy.checks.parallel", unit="checks",
    help="policy evaluations dispatched to a worker pool",
)
_VERIFY_MS = obs_metrics.histogram(
    "policy.verify.ms", unit="ms",
    help="wall-clock milliseconds per full verification pass",
)
_WORKERS = obs_metrics.gauge(
    "policy.verify.workers", unit="threads",
    help="worker threads used by the most recent verification pass",
)
_DEGRADED = obs_metrics.counter(
    "verify.degraded", unit="passes",
    help="verification passes that fell back to sequential checking "
         "after parallel worker deaths",
)

_WORKER_FAULT = faults.fault_point(
    "verify.worker", error=VerifierWorkerError,
    help="a parallel verification worker dies mid-check; the pass "
         "re-runs the lost policies sequentially (graceful degradation)",
)

# Sentinel a dying worker leaves in the result slot; the degraded path
# re-checks exactly those slots serially.
_WORKER_DIED = object()


@dataclass
class VerificationReport:
    """Results of verifying one policy set against one data plane."""

    results: list = field(default_factory=list)

    @property
    def violations(self):
        """Results for policies that do not hold."""
        return [r for r in self.results if not r.holds]

    @property
    def holds(self):
        """Whether every policy holds."""
        return not self.violations

    @property
    def checked_count(self):
        return len(self.results)

    @property
    def violation_count(self):
        return len(self.violations)

    def violated_policies(self):
        """The policy objects that were violated."""
        return [r.policy for r in self.violations]

    def summary(self):
        return (
            f"{self.checked_count - self.violation_count}/{self.checked_count}"
            f" policies hold"
        )


class PolicyVerifier:
    """Checks a policy set against network states.

    One verifier instance is reusable across network states; each
    :meth:`verify` call compiles (or receives) a data plane and traces every
    policy's representative flow.

    ``max_workers`` controls policy-level parallelism: policies are
    independent of each other, and the analyzer's trace cache is
    thread-safe, so a pool of worker threads can check them concurrently.
    The default (``None``) stays serial — tracing is pure Python, so under
    the GIL threads only pay off when checks overlap on cached traces or a
    future backend releases the GIL; pass ``max_workers=N`` (or ``0`` for
    ``os.cpu_count()``) to opt in. Report order always matches policy
    order, parallel or not.
    """

    def __init__(self, policies, max_workers=None):
        self.policies = list(policies)
        self.max_workers = max_workers

    def _worker_count(self):
        if self.max_workers is None:
            return 1
        if self.max_workers == 0:
            return os.cpu_count() or 1
        return max(1, self.max_workers)

    def verify_dataplane(self, dataplane, analyzer=None):
        """Check all policies against an already-compiled data plane.

        Pass an ``analyzer`` to share one trace cache with other consumers
        of the same plane (the enforcer shares it with its differential
        impact analysis); by default one is created over the plane, which
        itself shares the plane's cache-attached trace store when present.
        """
        if analyzer is None:
            analyzer = ReachabilityAnalyzer(dataplane)
        report = VerificationReport()
        workers = self._worker_count()
        started = monotonic_s() if _OBS.enabled else 0.0
        with obs_trace.span(
            "verify.policies", policies=len(self.policies), workers=workers
        ) as vspan:
            if workers > 1 and len(self.policies) > 1:
                _WORKERS.set(workers)
                _PARALLEL_CHECKS.inc(len(self.policies))

                # Worker threads have no span stack of their own, so the
                # pass's span is handed to them as the explicit parent.
                # A dying worker (the verify.worker fault point) leaves a
                # sentinel instead of poisoning the whole pass.
                def check(policy):
                    try:
                        _WORKER_FAULT.fire(policy=policy.policy_id)
                        with obs_trace.span(
                            "verify.policy", parent=vspan,
                            policy=policy.policy_id,
                        ):
                            return policy.check(analyzer)
                    except VerifierWorkerError:
                        return _WORKER_DIED

                with ThreadPoolExecutor(max_workers=workers) as pool:
                    report.results = list(pool.map(check, self.policies))

                # Graceful degradation: re-run the policies whose workers
                # died sequentially, preserving report order.
                lost = [
                    index for index, result in enumerate(report.results)
                    if result is _WORKER_DIED
                ]
                if lost:
                    _DEGRADED.inc()
                    vspan.set(degraded=True, lost_workers=len(lost))
                    for index in lost:
                        policy = self.policies[index]
                        with obs_trace.span(
                            "verify.policy.degraded", parent=vspan,
                            policy=policy.policy_id,
                        ):
                            report.results[index] = policy.check(analyzer)
            else:
                _WORKERS.set(1)
                for policy in self.policies:
                    with obs_trace.span(
                        "verify.policy", policy=policy.policy_id
                    ):
                        report.results.append(policy.check(analyzer))
            _POLICY_CHECKS.inc(len(self.policies))
            vspan.set(violations=report.violation_count)
        if _OBS.enabled:
            _VERIFY_MS.observe((monotonic_s() - started) * 1000.0)
        return report

    def verify_network(self, network):
        """Compile ``network`` and check all policies."""
        return self.verify_dataplane(build_dataplane(network))

    def __len__(self):
        return len(self.policies)
