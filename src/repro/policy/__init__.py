"""Network policies: model, verification, and mining from the data plane.

The reproduction's stand-in for the paper's Batfish-based policy checks and
config2spec [32] policy mining: policies are reachability / isolation /
waypoint predicates over concrete representative flows, verified by tracing
them through a compiled data plane.
"""

from repro.policy.mining import mine_policies
from repro.policy.model import (
    IsolationPolicy,
    Policy,
    PolicyResult,
    ReachabilityPolicy,
    WaypointPolicy,
    policy_from_dict,
)
from repro.policy.verification import PolicyVerifier, VerificationReport

__all__ = [
    "IsolationPolicy",
    "Policy",
    "PolicyResult",
    "PolicyVerifier",
    "ReachabilityPolicy",
    "VerificationReport",
    "WaypointPolicy",
    "mine_policies",
    "policy_from_dict",
]
