"""An emulated device: configuration + image + run state.

Mirrors the paper's decomposition of an emulated node (Figure 5a): the GUI
and console are presentation components (the console lives in
:mod:`repro.emulation.console`; the GUI equivalent is the twin network's
presentation layer), while the configuration and image here are the
emulation components.
"""

from dataclasses import dataclass, field

from repro.emulation.image import default_image
from repro.util.errors import EmulationError


@dataclass
class EmulatedNode:
    """One running device in an emulated network.

    ``files`` is the node's filesystem (hosts only, in practice): path ->
    content. Like images and raw configs it is an *emulation component* —
    production agents (RMM) can read it, twins are booted without it.
    """

    name: str
    kind: object  # DeviceKind
    config: object  # DeviceConfig (shared with the EmulatedNetwork's Network)
    image: object = None
    running: bool = True
    boot_count: int = field(default=1)
    files: dict = field(default_factory=dict)
    startup_config: object = None  # what survives a reload (IOS NVRAM)

    def __post_init__(self):
        if self.image is None:
            self.image = default_image(self.kind)
        if self.startup_config is None:
            self.startup_config = self.config.copy()

    def save_config(self):
        """``write memory``: persist the running config to startup."""
        self.startup_config = self.config.copy()

    def unsaved_changes(self):
        """Whether the running config differs from the saved one."""
        return self.config != self.startup_config

    def require_running(self):
        """Raise unless the node is up."""
        if not self.running:
            raise EmulationError(f"node {self.name!r} is not running")

    def stop(self):
        """Power the node off (consoles become unusable)."""
        self.running = False

    def start(self):
        """Power the node on."""
        if not self.running:
            self.running = True
            self.boot_count += 1
