"""Device software images.

In a real emulator the image is the vendor OS binary; here it is metadata
(vendor/platform/version) plus a deterministic content digest. The digest is
what the twin network's emulation layer keeps *hidden* from the technician —
images, like raw configs, are emulation components, not presentation
components (paper Figure 5d).
"""

import hashlib
from dataclasses import dataclass

from repro.net.topology import DeviceKind


@dataclass(frozen=True)
class ImageInfo:
    """Identity of the software a node runs."""

    vendor: str
    platform: str
    version: str

    @property
    def digest(self):
        """Deterministic content digest standing in for the image file hash."""
        blob = f"{self.vendor}/{self.platform}/{self.version}".encode()
        return hashlib.sha256(blob).hexdigest()

    def __str__(self):
        return f"{self.vendor} {self.platform} {self.version}"


_DEFAULTS = {
    DeviceKind.ROUTER: ImageInfo("cisco", "ios-xe", "17.3.4a"),
    DeviceKind.SWITCH: ImageInfo("cisco", "ios", "15.2(7)E"),
    DeviceKind.HOST: ImageInfo("linux", "debian", "11.3"),
}


def default_image(kind):
    """The stock image for a device kind."""
    return _DEFAULTS[kind]
