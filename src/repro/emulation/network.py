"""The emulated network: nodes, consoles, lazy data plane, snapshots."""

from repro.control.builder import build_dataplane
from repro.emulation.console import Console
from repro.emulation.node import EmulatedNode
from repro.util.errors import EmulationError


class EmulatedNetwork:
    """A running emulation of a :class:`~repro.net.network.Network`.

    The wrapped network is deep-copied at boot: emulation never mutates the
    caller's network. Configuration commands (issued through consoles) mark
    the data plane dirty; ``ping``/``traceroute``/verification recompile it
    on next use.
    """

    def __init__(self, network, files=None, _attached=False):
        self.network = network if _attached else network.copy()
        files = files or {}
        self.nodes = {
            device.name: EmulatedNode(
                name=device.name,
                kind=device.kind,
                config=self.network.config(device.name),
                files=dict(files.get(device.name, {})),
            )
            for device in self.network.topology.devices()
        }
        self._dataplane = None
        self._baseline_plane = None
        self._snapshots = {}

    @classmethod
    def attached(cls, network, files=None):
        """Run consoles *directly over* ``network`` (no copy).

        This is how the production side is driven: the RMM baseline's
        root-capable agents and Heimdall's emergency mode mutate the real
        network state. Twins never use this — they always boot a copy.
        ``files`` attaches per-device filesystems (path -> content).
        """
        return cls(network, files=files, _attached=True)

    # -- nodes & consoles ----------------------------------------------------

    def node(self, name):
        """The emulated node for ``name``."""
        try:
            return self.nodes[name]
        except KeyError:
            raise EmulationError(f"no emulated node {name!r}") from None

    def console(self, name):
        """An interactive console attached to node ``name``."""
        return Console(self, self.node(name))

    def node_count(self):
        """How many nodes this emulation runs (twin-boot cost driver)."""
        return len(self.nodes)

    def reload_node(self, name):
        """Reboot one node: the running config reverts to its startup config."""
        node = self.node(name)
        restored = node.startup_config.copy()
        self.network.configs[name] = restored
        node.config = restored
        node.boot_count += 1
        self.mark_dirty()
        return node

    # -- data plane -------------------------------------------------------------

    def dataplane(self):
        """The current compiled data plane (recompiled after config changes).

        Recompiles are incremental against the last compiled plane: console
        edits typically touch one device, so the invalidation cone keeps
        every other device's artifacts shared. The baseline is always bound
        to a *frozen copy* of the network — consoles mutate configs in
        place, and an incremental diff against the same live objects would
        see no change.
        """
        if self._dataplane is None:
            plane = build_dataplane(self.network, baseline=self._baseline_plane)
            frozen = self.network.copy()
            self._baseline_plane = build_dataplane(
                frozen, baseline=plane, same_except=set()
            )
            self._dataplane = plane
        return self._dataplane

    def mark_dirty(self):
        """Invalidate the cached data plane after a configuration change."""
        self._dataplane = None

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self, label="default"):
        """Save all configs under ``label`` (overwrites a previous label)."""
        self._snapshots[label] = {
            name: config.copy() for name, config in self.network.configs.items()
        }
        return label

    def restore(self, label="default"):
        """Restore configs saved under ``label``."""
        try:
            saved = self._snapshots[label]
        except KeyError:
            raise EmulationError(f"no snapshot {label!r}") from None
        for name, config in saved.items():
            restored = config.copy()
            self.network.configs[name] = restored
            self.nodes[name].config = restored
        self.mark_dirty()

    def snapshots(self):
        """Labels of saved snapshots."""
        return sorted(self._snapshots)

    # -- export ----------------------------------------------------------------------

    def current_configs(self):
        """A deep copy of the current configs (what the enforcer diffs)."""
        return {name: config.copy() for name, config in self.network.configs.items()}
