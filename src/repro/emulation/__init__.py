"""Network emulation substrate (the CrystalNet/GNS3 stand-in, paper §4.2).

An :class:`EmulatedNetwork` runs a deep-copied
:class:`~repro.net.network.Network`: every device gets an
:class:`EmulatedNode` (configuration + software image — the paper's
*emulation components*) and an IOS-like interactive :class:`Console` (a
*presentation component*). Configuration commands mutate the structured
configs; the data plane is recompiled lazily so ``ping``/``traceroute``
observe every change.
"""

from repro.emulation.console import CommandResult, Console
from repro.emulation.image import ImageInfo, default_image
from repro.emulation.network import EmulatedNetwork
from repro.emulation.node import EmulatedNode

__all__ = [
    "CommandResult",
    "Console",
    "EmulatedNetwork",
    "EmulatedNode",
    "ImageInfo",
    "default_image",
]
